/**
 * @file
 * Ablation studies for the design choices this reproduction makes on
 * top of the paper (see DESIGN.md Section 6):
 *
 *  1. ridge strength of the response regression (paper: plain OLS);
 *  2. log-domain vs raw-domain ANN targets;
 *  3. hidden-layer width of the program-specific ANNs (paper: 10);
 *  4. regression features: ANN outputs (used at prediction time) vs
 *     the stored simulations of the training programs (the paper's
 *     description of the weight-fitting inputs);
 *  5. the first-order analytic model (Karkhanis/Smith style) as an
 *     alternative to learned prediction.
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"
#include "ml/linear_regression.hh"
#include "sim/first_order.hh"
#include "trace/trace_generator.hh"

using namespace acdse;

namespace
{

/** Leave-one-out sweep over SPEC for one option set; cycles metric. */
PredictionQuality
looAverage(Campaign &campaign, const ArchCentricOptions &options,
           const std::vector<std::size_t> &spec)
{
    Evaluator evaluator(campaign, options);
    const std::size_t t = bench::clampT(campaign);
    stats::RunningStats err, corr;
    for (std::size_t p : spec) {
        std::vector<std::size_t> training;
        for (std::size_t q : spec) {
            if (q != p)
                training.push_back(q);
        }
        const auto q = evaluator.evaluateArchCentric(
            p, Metric::Cycles, training, t, bench::kPaperR,
            bench::repeatSeed(0));
        err.add(q.rmaePercent);
        corr.add(q.correlation);
    }
    PredictionQuality quality;
    quality.rmaePercent = err.mean();
    quality.correlation = corr.mean();
    return quality;
}

void
ridgeSweep(Campaign &campaign, const std::vector<std::size_t> &spec)
{
    std::printf("--- Ablation 1: ridge strength of the response "
                "regression (cycles) ---\n");
    Table table({"ridge", "rmae (%)", "correlation"});
    for (double ridge : {0.0, 1e-4, 1e-3, 1e-2, 2e-2, 1e-1}) {
        ArchCentricOptions options;
        options.ridge = ridge;
        const auto q = looAverage(campaign, options, spec);
        table.addRow({Table::num(ridge, 4), Table::num(q.rmaePercent, 1),
                      Table::num(q.correlation, 3)});
    }
    table.print(std::cout);
    std::printf("(ridge = 0 is the paper's exact equation (5))\n\n");
}

void
logTargetSweep(Campaign &campaign, const std::vector<std::size_t> &spec)
{
    std::printf("--- Ablation 2: ANN target domain (cycles) ---\n");
    Table table({"target", "rmae (%)", "correlation"});
    for (bool log_target : {true, false}) {
        ArchCentricOptions options;
        options.programModel.logTarget = log_target;
        const auto q = looAverage(campaign, options, spec);
        table.addRow({log_target ? "log(metric)" : "raw metric",
                      Table::num(q.rmaePercent, 1),
                      Table::num(q.correlation, 3)});
    }
    table.print(std::cout);
    std::printf("\n");
}

void
hiddenSweep(Campaign &campaign, const std::vector<std::size_t> &spec)
{
    std::printf("--- Ablation 3: hidden-layer width (cycles; paper "
                "uses 10) ---\n");
    Table table({"hidden neurons", "rmae (%)", "correlation"});
    for (int hidden : {4, 10, 20}) {
        ArchCentricOptions options;
        options.programModel.mlp.hiddenNeurons = hidden;
        const auto q = looAverage(campaign, options, spec);
        table.addRow({Table::num(static_cast<long long>(hidden)),
                      Table::num(q.rmaePercent, 1),
                      Table::num(q.correlation, 3)});
    }
    table.print(std::cout);
    std::printf("\n");
}

void
featureSweep(Campaign &campaign, const std::vector<std::size_t> &spec)
{
    std::printf("--- Ablation 4: regression features -- ANN outputs vs "
                "stored simulations (cycles) ---\n");
    // The "stored simulations" variant can only predict points that
    // were simulated for the training programs, so it is evaluated
    // within the sampled campaign (which is exactly how the paper
    // validates, Section 6.1).
    const std::size_t total = campaign.configs().size();
    const auto response_idx = sampleIndices(
        total, bench::kPaperR, bench::repeatSeed(0) ^ 0x5eed'0002ULL);
    Evaluator evaluator(campaign);
    const std::size_t t = bench::clampT(campaign);

    stats::RunningStats ann_err, ann_corr, sim_err, sim_corr;
    for (std::size_t p : spec) {
        std::vector<std::size_t> training;
        for (std::size_t q : spec) {
            if (q != p)
                training.push_back(q);
        }
        // ANN-feature variant (the library default).
        const auto ann = evaluator.evaluateArchCentric(
            p, Metric::Cycles, training, t, bench::kPaperR,
            bench::repeatSeed(0));
        ann_err.add(ann.rmaePercent);
        ann_corr.add(ann.correlation);

        // Stored-simulation features.
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (std::size_t c : response_idx) {
            std::vector<double> row;
            for (std::size_t j : training)
                row.push_back(campaign.result(j, c).cycles);
            xs.push_back(std::move(row));
            ys.push_back(campaign.result(p, c).cycles);
        }
        LinearRegression regressor;
        regressor.fit(xs, ys, 2e-2);

        std::vector<double> predicted, actual;
        for (std::size_t c = 0; c < total; ++c) {
            std::vector<double> row;
            for (std::size_t j : training)
                row.push_back(campaign.result(j, c).cycles);
            predicted.push_back(regressor.predict(row));
            actual.push_back(campaign.result(p, c).cycles);
        }
        sim_err.add(stats::rmae(predicted, actual));
        sim_corr.add(stats::correlation(predicted, actual));
    }
    Table table({"features", "rmae (%)", "correlation"});
    table.addRow({"ANN outputs", Table::num(ann_err.mean(), 1),
                  Table::num(ann_corr.mean(), 3)});
    table.addRow({"stored simulations", Table::num(sim_err.mean(), 1),
                  Table::num(sim_corr.mean(), 3)});
    table.print(std::cout);
    std::printf("(the stored-simulation variant is an oracle for "
                "sampled points but\ncannot generalise to the other "
                "~47 billion configurations)\n\n");
}

void
analyticComparison(Campaign &campaign)
{
    std::printf("--- Ablation 5: first-order analytic model vs the "
                "cycle-level simulator ---\n");
    Table table({"program", "analytic-vs-sim corr", "analytic rmae (%)"});
    for (const char *name : {"gzip", "crafty", "swim", "mcf", "applu"}) {
        const std::size_t p = campaign.programIndex(name);
        const Trace &trace = campaign.trace(p);
        std::vector<double> analytic, simulated;
        for (std::size_t c = 0; c < campaign.configs().size();
             c += 8) { // subsample: the analytic pass is per-config
            analytic.push_back(
                firstOrderEstimate(campaign.configs()[c], trace).cycles);
            simulated.push_back(campaign.result(p, c).cycles);
        }
        table.addRow({name,
                      Table::num(
                          stats::correlation(analytic, simulated), 3),
                      Table::num(stats::rmae(analytic, simulated), 1)});
    }
    table.print(std::cout);
    std::printf("(hand-built analytic models track the trend but are "
                "noticeably less\nfaithful than either learned "
                "predictor -- the paper's Section 9.3 argument)\n");
}

} // namespace

int
main()
{
    bench::banner("Ablations", "design-choice sensitivity studies");
    Campaign &campaign = bench::standardCampaign();
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    ridgeSweep(campaign, spec);
    logTargetSweep(campaign, spec);
    hiddenSweep(campaign, spec);
    featureSweep(campaign, spec);
    analyticComparison(campaign);
    return 0;
}
