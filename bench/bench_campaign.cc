/**
 * @file
 * Campaign-fill benchmark: simulated design points per second through
 * the scalar per-cell simulate() path (the seed campaign shape: fresh
 * core, caches, predictor and energy model per cell) vs the
 * lane-batched replay (ISSUE 9: one DecodedTrace shared read-only,
 * kSimLanes configurations per simulateBatch call, all per-simulation
 * state hoisted into a reused SimScratch), at one thread and at full
 * hardware parallelism.
 *
 * The batched path must be bit-identical to the scalar one
 * (tests/test_batch_sim.cc); this bench shows why it exists, and
 * additionally proves the SimScratch hoisting claim: a steady-state
 * batched pass (same configs, same scratch) must perform ZERO heap
 * allocations, counted by the operator new/delete overrides below.
 *
 * Acceptance floor (ISSUE 9): the batched path delivers >= 3x the
 * scalar single-thread points/s on an 8-core host (>= 5x target). The
 * floor is enforced here when the host has >= 8 hardware threads and
 * tracked by tools/ci/check_bench_regression.py against
 * bench/baseline.json (campaign_points_per_s).
 *
 * Environment: ACDSE_CAMPAIGN_BENCH_CONFIGS (default 64) sets the
 * number of design points; ACDSE_CAMPAIGN_BENCH_TRACE (default 6000)
 * the trace length; ACDSE_BENCH_JSON overrides the BENCH_campaign.json
 * output path (schema acdse-bench-v1).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "arch/design_space.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "base/thread_pool.hh"
#include "obs/stats_export.hh"
#include "sim/batch.hh"
#include "sim/cacti.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace
{

/**
 * Global allocation counter for the steady-state zero-allocation
 * check. Replacing the usual (non-aligned) operator new/delete family
 * is enough: nothing on the simulateBatch path heap-allocates
 * over-aligned types (the lane SoA arrays live on the stack).
 */
std::atomic<std::uint64_t> g_allocations{0};

void *
countedAlloc(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

/** Time @p passes runs of @p sweep over @p points and return points/s. */
template <typename Sweep>
double
measure(std::size_t points, std::size_t passes, Sweep &&sweep)
{
    sweep(); // warm-up: scratch growth, cacti memo, pool wake, icache
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < passes; ++p)
        sweep();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return static_cast<double>(points * passes) / seconds;
}

/**
 * Scalar path: one simulate() call per cell, constructing the full
 * component stack each time -- exactly the pre-batch campaign fill.
 */
double
measureScalar(const std::vector<MicroarchConfig> &configs,
              const Trace &trace, const SimulationOptions &options,
              std::size_t threads, std::size_t passes)
{
    const std::size_t n = configs.size();
    std::vector<SimulationResult> out(n);
    ThreadPool pool(threads);
    return measure(n, passes, [&] {
        pool.parallelFor(0, n, [&](std::size_t i) {
            out[i] = simulate(configs[i], trace, options);
        });
    });
}

/**
 * Batched path: lane groups of kSimLanes configurations replayed per
 * simulateBatch call against one shared DecodedTrace, with each worker
 * thread reusing its own SimScratch -- the campaign.cc fill shape.
 */
double
measureBatched(const std::vector<MicroarchConfig> &configs,
               const DecodedTrace &decoded,
               const SimulationOptions &options, std::size_t threads,
               std::size_t passes)
{
    const std::size_t n = configs.size();
    const std::size_t groups = (n + kSimLanes - 1) / kSimLanes;
    std::vector<SimulationResult> out(n);
    ThreadPool pool(threads);
    return measure(n, passes, [&] {
        pool.parallelFor(0, groups, [&](std::size_t g) {
            thread_local SimScratch scratch; // NOLINT(acdse-local-static)
            const std::size_t first = g * kSimLanes;
            const std::size_t count = std::min(kSimLanes, n - first);
            simulateBatch(std::span<const MicroarchConfig>(
                              configs.data() + first, count),
                          decoded, options,
                          std::span<SimulationResult>(out.data() + first,
                                                      count),
                          scratch);
        });
    });
}

/**
 * One full batched pass over every config through a caller-owned
 * scratch, no pool: the unit the zero-allocation check measures.
 */
void
batchedPass(const std::vector<MicroarchConfig> &configs,
            const DecodedTrace &decoded,
            const SimulationOptions &options,
            std::vector<SimulationResult> &out, SimScratch &scratch)
{
    const std::size_t n = configs.size();
    for (std::size_t first = 0; first < n; first += kSimLanes) {
        const std::size_t count = std::min(kSimLanes, n - first);
        simulateBatch(std::span<const MicroarchConfig>(
                          configs.data() + first, count),
                      decoded, options,
                      std::span<SimulationResult>(out.data() + first,
                                                  count),
                      scratch);
    }
}

} // namespace

int
main()
{
    const std::size_t num_configs =
        envSize("ACDSE_CAMPAIGN_BENCH_CONFIGS", 64);
    const std::size_t trace_length =
        envSize("ACDSE_CAMPAIGN_BENCH_TRACE", 6000);
    const std::size_t hw = std::thread::hardware_concurrency();
    const obs::Snapshot obs_before =
        obs::Registry::global().snapshot();

    SimulationOptions options;
    options.warmupInstructions = 1000;

    std::printf("generating %zu-instruction trace, sampling %zu "
                "configurations...\n",
                trace_length + options.warmupInstructions, num_configs);
    const Trace trace =
        TraceGenerator(profileByName("gcc"))
            .generate(trace_length + options.warmupInstructions);
    const DecodedTrace decoded(trace);
    const auto configs =
        DesignSpace::sampleValidConfigs(num_configs, 42);

    const std::size_t passes = 3;
    std::printf("\ncampaign fill, %zu design points x %zu passes per "
                "cell (points/s, lanes=%zu)\n\n",
                num_configs, passes, kSimLanes);

    const double scalar_t1 =
        measureScalar(configs, trace, options, 1, passes);
    const double batch_t1 =
        measureBatched(configs, decoded, options, 1, passes);
    const double scalar_tmax =
        measureScalar(configs, trace, options, hw, passes);
    const double batch_tmax =
        measureBatched(configs, decoded, options, hw, passes);
    const double speedup_t1 = batch_t1 / scalar_t1;
    const double speedup_tmax = batch_tmax / scalar_tmax;

    std::printf("%-18s  %12s  %12s  %8s\n", "threads", "scalar pts/s",
                "batch pts/s", "speedup");
    std::printf("%-18zu  %12.0f  %12.0f  %7.2fx\n", std::size_t{1},
                scalar_t1, batch_t1, speedup_t1);
    std::printf("%-18zu  %12.0f  %12.0f  %7.2fx\n", hw, scalar_tmax,
                batch_tmax, speedup_tmax);

    // Steady-state allocation check: after one warm pass has grown the
    // scratch and filled the cacti memo, a repeat pass over the same
    // configs must not touch the heap at all -- that is the whole point
    // of hoisting per-simulation state into SimScratch.
    std::vector<SimulationResult> out(configs.size());
    SimScratch scratch;
    batchedPass(configs, decoded, options, out, scratch); // warm
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    batchedPass(configs, decoded, options, out, scratch);
    const std::uint64_t steady_allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    std::printf("\nsteady-state batched pass: %llu heap allocations "
                "(%zu sims)\n",
                static_cast<unsigned long long>(steady_allocs),
                configs.size());

    const CactiMemoStats memo = cactiMemoStats();
    const double memo_total =
        static_cast<double>(memo.hits + memo.misses);
    std::printf("cacti memo: %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(memo.hits),
                static_cast<unsigned long long>(memo.misses),
                memo_total > 0.0
                    ? 100.0 * static_cast<double>(memo.hits) / memo_total
                    : 0.0);

    const std::string json_out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_campaign.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("campaign")
        .key("hardware_concurrency").value(
            static_cast<std::uint64_t>(hw))
        .key("num_configs").value(
            static_cast<std::uint64_t>(num_configs))
        .key("trace_length").value(
            static_cast<std::uint64_t>(trace_length))
        .key("steady_state_allocations").value(steady_allocs)
        .key("metrics").beginObject()
        .key("campaign_scalar_pps_t1").value(scalar_t1)
        .key("campaign_points_per_s").value(batch_t1)
        .key("campaign_batch_speedup_t1").value(speedup_t1)
        .key("campaign_batch_pps_tmax").value(batch_tmax)
        .endObject();
    // Additive per-stage breakdown (sim/batch span, sim/ and pool/
    // counters); the regression checker only reads "metrics".
    json.key("stages");
    obs::writeStagesJson(
        json,
        obs::diff(obs_before, obs::Registry::global().snapshot()));
    json.endObject();
    writeTextAtomic(json_out, json.str());
    std::printf("\nwrote %s\n", json_out.c_str());

    std::printf("\nsingle-thread batch speedup: %.2fx "
                "(target: >= 3x on >= 8 hardware threads)\n",
                speedup_t1);
    bool failed = false;
#if !defined(ACDSE_NO_SIM_BATCH)
    // With ACDSE_SIM_BATCH=OFF the entry points fall back to scalar
    // simulate(), which constructs its components per call; the
    // zero-allocation contract only binds the real batched engine.
    if (steady_allocs != 0) {
        std::printf("FAIL: steady-state batched pass allocated\n");
        failed = true;
    }
#endif
    if (hw >= 8 && speedup_t1 < 3.0) {
        std::printf("FAIL: below the batched-replay speedup floor\n");
        failed = true;
    }
    if (failed)
        return 1;
    std::printf(hw >= 8 ? "PASS\n"
                        : "PASS (speedup floor not enforced: fewer "
                          "than 8 hardware threads)\n");
    return 0;
}
