/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries: the
 * standard campaign (disk-cached), repeat counts, and uniform headers.
 *
 * Each binary regenerates one table or figure of the paper; see
 * DESIGN.md Section 4 for the full experiment index and EXPERIMENTS.md
 * for recorded paper-vs-measured values.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/parse.hh"
#include "core/campaign.hh"
#include "trace/suites.hh"

namespace acdse
{
namespace bench
{

/** The paper's canonical model parameters (Section 6.2). */
constexpr std::size_t kPaperT = 512; //!< training sims per program
constexpr std::size_t kPaperR = 32;  //!< responses from a new program

/**
 * Number of repeats with fresh random selections (paper: 20). Reduced
 * by default so the full bench suite completes in minutes on one core;
 * override with ACDSE_REPEATS.
 */
inline std::size_t
repeats()
{
    if (const char *value = std::getenv("ACDSE_REPEATS");
        value && *value) {
        return static_cast<std::size_t>(
            parseU64OrDie("ACDSE_REPEATS", value));
    }
    return 3;
}

/** Training-simulation count, clamped to the campaign sample. */
inline std::size_t
clampT(const Campaign &campaign, std::size_t t = kPaperT)
{
    return std::min(t, campaign.configs().size() / 2 +
                           campaign.configs().size() / 4);
}

/** The all-suites campaign, computed or loaded from the disk cache. */
inline Campaign &
standardCampaign()
{
    static Campaign campaign = Campaign::standard();
    campaign.ensureComputed();
    return campaign;
}

/** Print the uniform experiment banner. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s -- %s\n", experiment, description);
    std::printf("(T=%zu, R=%zu, repeats=%zu, configs come from the "
                "shared campaign cache)\n",
                kPaperT, kPaperR, repeats());
    std::printf("================================================="
                "=============\n\n");
}

/** Seed for repeat @p r (fixed base so every run is reproducible). */
inline std::uint64_t
repeatSeed(std::size_t r)
{
    return 0xbe9c'0000ULL + 7919ULL * r;
}

/** Program indices of one suite within the standard campaign. */
inline std::vector<std::size_t>
suiteIndices(const Campaign &campaign, Suite suite)
{
    std::vector<std::size_t> idx;
    for (std::size_t p = 0; p < campaign.programs().size(); ++p) {
        if (profileByName(campaign.programs()[p]).suite == suite)
            idx.push_back(p);
    }
    return idx;
}

} // namespace bench
} // namespace acdse

