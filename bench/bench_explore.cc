/**
 * @file
 * Exploration-engine benchmark: valid design points swept (generated,
 * predicted and reduced) per second through src/explore at one thread
 * and at full hardware parallelism, in both generator modes.
 *
 * Two synthetic fitted ensembles (a cycles-like and an energy-like
 * analytic objective, conflicting so the Pareto frontier is
 * non-trivial) are built without any simulation, as in
 * bench_predict_batch; the numbers therefore measure the engine
 * itself: tile generation with fused validity filtering, the shared
 * per-block transpose, batched multi-metric inference and the
 * streaming frontier/top-k reducers.
 *
 * Acceptance floor (ISSUE 6): >= 1M valid points swept+predicted+
 * reduced per second single-thread. Enforced here when the host has
 * >= 8 hardware threads and tracked unconditionally by
 * tools/ci/check_bench_regression.py against bench/baseline.json
 * (explore_points_per_s). The bench also asserts that the single- and
 * max-thread runs reduce to bit-identical results.
 *
 * Environment: ACDSE_EXPLORE_BENCH_MODELS (default 4) sets the
 * ensemble size per metric; ACDSE_BENCH_JSON overrides the
 * BENCH_explore.json output path (schema acdse-bench-v1).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "arch/design_space.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "base/thread_pool.hh"
#include "explore/explorer.hh"
#include "obs/stats_export.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

/** A cycles-like objective: wide, large machines run faster. */
double
syntheticCycles(const MicroarchConfig &config, double skew)
{
    return 1000.0 + skew * 4000.0 / config.width() +
           60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           20000.0 / std::sqrt(static_cast<double>(config.robSize()));
}

/** An energy-like objective: the same resources cost power. */
double
syntheticEnergy(const MicroarchConfig &config, double skew)
{
    return 500.0 + skew * 900.0 * config.width() +
           40.0 * std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           12.0 * static_cast<double>(config.robSize());
}

/** Build one fitted ensemble on an analytic objective, no simulation. */
template <typename Objective>
ArchitectureCentricPredictor
syntheticPredictor(std::size_t num_models, const Objective &objective)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 1);
    const auto responses = DesignSpace::sampleValidConfigs(32, 2);

    std::vector<ProgramTrainingSet> sets(num_models);
    for (std::size_t j = 0; j < num_models; ++j) {
        const double skew = 0.7 + 0.2 * static_cast<double>(j);
        // snprintf, not string concatenation: `"p" + std::to_string(j)`
        // trips a GCC 12 -O3 -Wrestrict false positive (GCC PR105651).
        char name[32];
        std::snprintf(name, sizeof(name), "p%zu", j);
        sets[j].name = name;
        sets[j].configs = train;
        for (const auto &config : train)
            sets[j].values.push_back(objective(config, skew));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);

    std::vector<double> response_values;
    for (const auto &config : responses)
        response_values.push_back(objective(config, 1.0));
    predictor.fitResponses(responses, response_values);
    return predictor;
}

struct Measurement
{
    explore::ExploreResult result;
    double validPerSecond = 0.0; //!< predicted+reduced points/s
    double rawPerSecond = 0.0;   //!< generated (pre-filter) points/s
};

/** Run explore() once warm and @p passes timed; points/s over passes. */
Measurement
measureExplore(std::span<const explore::MetricEnsemble> ensembles,
               const explore::ExploreOptions &options, std::size_t passes)
{
    Measurement m;
    m.result = explore::explore(ensembles, options); // warm-up
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < passes; ++p)
        m.result = explore::explore(ensembles, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    m.validPerSecond = static_cast<double>(m.result.stats.predicted) *
                       static_cast<double>(passes) / seconds;
    m.rawPerSecond = static_cast<double>(m.result.stats.generated) *
                     static_cast<double>(passes) / seconds;
    return m;
}

/** Bit-identity of two explore results (frontier and every top-k). */
bool
identical(const explore::ExploreResult &a,
          const explore::ExploreResult &b)
{
    if (a.frontier.size() != b.frontier.size())
        return false;
    for (std::size_t i = 0; i < a.frontier.size(); ++i) {
        if (a.frontier[i].config != b.frontier[i].config ||
            a.frontier[i].x != b.frontier[i].x ||
            a.frontier[i].y != b.frontier[i].y)
            return false;
    }
    if (a.topk.size() != b.topk.size())
        return false;
    for (std::size_t k = 0; k < a.topk.size(); ++k) {
        if (a.topk[k].size() != b.topk[k].size())
            return false;
        for (std::size_t i = 0; i < a.topk[k].size(); ++i) {
            if (a.topk[k][i].config != b.topk[k][i].config ||
                a.topk[k][i].predicted != b.topk[k][i].predicted)
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    const std::size_t num_models =
        envSize("ACDSE_EXPLORE_BENCH_MODELS", 4);
    const std::size_t hw = std::thread::hardware_concurrency();
    const obs::Snapshot obs_before = obs::Registry::global().snapshot();

    std::printf("building two synthetic %zu-ANN ensembles...\n",
                num_models);
    const ArchitectureCentricPredictor cycles_model =
        syntheticPredictor(num_models, syntheticCycles);
    const ArchitectureCentricPredictor energy_model =
        syntheticPredictor(num_models, syntheticEnergy);
    const std::vector<explore::MetricEnsemble> ensembles{
        {Metric::Cycles, &cycles_model}, {Metric::Energy, &energy_model}};

    // Sample mode over the full ~18B-point valid space: the production
    // configuration, and the gated number.
    explore::ExploreOptions sample_options;
    sample_options.mode = explore::Mode::Sample;
    sample_options.samples = 1u << 19;
    const std::size_t passes = 2;

    ThreadPool pool_t1(1);
    sample_options.pool = &pool_t1;
    const Measurement sample_t1 =
        measureExplore(ensembles, sample_options, passes);
    ThreadPool pool_tmax(hw);
    sample_options.pool = &pool_tmax;
    const Measurement sample_tmax =
        measureExplore(ensembles, sample_options, passes);

    // Enumerate mode over a coarsened grid: measures the fused
    // validity filter as well (raw column > valid column).
    explore::ExploreOptions enum_options;
    enum_options.mode = explore::Mode::Enumerate;
    enum_options.space = explore::SubSpace::strided(3);
    enum_options.pool = &pool_t1;
    const Measurement enum_t1 =
        measureExplore(ensembles, enum_options, passes);

    std::printf("\nexplore throughput, 2 metrics x %zu-ANN ensembles "
                "(points/s, %zu passes)\n\n",
                num_models, passes);
    std::printf("%-22s  %8s  %12s  %12s\n", "mode", "threads",
                "valid pts/s", "raw pts/s");
    std::printf("%-22s  %8zu  %12.0f  %12.0f\n", "sample (full space)",
                std::size_t{1}, sample_t1.validPerSecond,
                sample_t1.rawPerSecond);
    std::printf("%-22s  %8zu  %12.0f  %12.0f\n", "sample (full space)",
                hw, sample_tmax.validPerSecond,
                sample_tmax.rawPerSecond);
    std::printf("%-22s  %8zu  %12.0f  %12.0f\n", "enumerate (stride 3)",
                std::size_t{1}, enum_t1.validPerSecond,
                enum_t1.rawPerSecond);
    std::printf("\nfrontier %zu points, top-%zu per metric\n",
                sample_t1.result.frontier.size(),
                sample_options.topK);

    if (!identical(sample_t1.result, sample_tmax.result)) {
        std::printf("FAIL: explore results differ between 1 and %zu "
                    "threads\n",
                    hw);
        return 1;
    }
    std::printf("determinism: 1-thread and %zu-thread results "
                "bit-identical\n",
                hw);

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_explore.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("explore")
        .key("hardware_concurrency").value(
            static_cast<std::uint64_t>(hw))
        .key("num_models").value(
            static_cast<std::uint64_t>(num_models))
        .key("metrics").beginObject()
        .key("explore_points_per_s").value(sample_t1.validPerSecond)
        .key("explore_points_per_s_tmax").value(
            sample_tmax.validPerSecond)
        .key("explore_enum_points_per_s").value(enum_t1.validPerSecond)
        .key("explore_enum_raw_points_per_s").value(
            enum_t1.rawPerSecond)
        .endObject();
    // Additive per-stage breakdown (explore/ and pool/ counters); the
    // regression checker only reads "metrics".
    json.key("stages");
    obs::writeStagesJson(
        json,
        obs::diff(obs_before, obs::Registry::global().snapshot()));
    json.endObject();
    writeTextAtomic(out, json.str());
    std::printf("\nwrote %s\n", out.c_str());

    std::printf("\nsingle-thread sweep rate: %.0f valid points/s "
                "(target: >= 1M on >= 8 hardware threads)\n",
                sample_t1.validPerSecond);
    if (hw >= 8 && sample_t1.validPerSecond < 1e6) {
        std::printf("FAIL: below the exploration throughput floor\n");
        return 1;
    }
    std::printf(hw >= 8 ? "PASS\n"
                        : "PASS (floor not enforced: fewer than 8 "
                          "hardware threads)\n");
    return 0;
}
