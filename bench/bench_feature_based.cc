/**
 * @file
 * Extension bench (paper Section 9.5): the feature-based
 * trans-program predictor (Hoste et al. style, zero simulations of
 * the new program) against the paper's response-based
 * architecture-centric model (32 simulations) and the
 * program-specific baseline (32 simulations), leave-one-out over
 * SPEC CPU 2000 for cycles.
 *
 * The paper deliberately avoids program features ("they can be
 * difficult to identify and might vary depending on the architecture");
 * this bench quantifies how much accuracy the 32 responses buy.
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"
#include "core/feature_based_predictor.hh"

using namespace acdse;

int
main()
{
    bench::banner("Feature-based predictor (extension)",
                  "0-simulation features vs 32-simulation responses");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);
    const Metric metric = Metric::Cycles;

    // Program features from the traces (no simulation involved).
    std::vector<std::vector<double>> features(
        campaign.programs().size());
    for (std::size_t p : spec)
        features[p] = programFeatureVector(campaign.trace(p));

    // Training data (shared configs/values with the other predictors).
    const std::uint64_t seed = bench::repeatSeed(0);

    Table table({"program", "feature-based rmae (%)", "fb corr",
                 "arch-centric rmae (%)", "ac corr"});
    stats::RunningStats fb_err, fb_corr, ac_err, ac_corr;
    for (std::size_t target : spec) {
        // Build the feature-based model on the other programs.
        std::vector<FeatureTrainingSet> sets;
        for (std::size_t p : spec) {
            if (p == target)
                continue;
            const std::uint64_t derived =
                seed ^ (0x9e3779b97f4a7c15ULL * (p + 1));
            const auto idx =
                sampleIndices(campaign.configs().size(), t, derived);
            FeatureTrainingSet set;
            set.name = campaign.programs()[p];
            set.configs = campaign.configsAt(idx);
            set.values = campaign.metricAt(p, metric, idx);
            set.features = features[p];
            sets.push_back(std::move(set));
        }
        FeatureBasedPredictor feature_model;
        feature_model.trainOffline(sets);
        feature_model.setTargetFeatures(features[target]);

        std::vector<std::size_t> all_configs(
            campaign.configs().size());
        for (std::size_t c = 0; c < all_configs.size(); ++c)
            all_configs[c] = c;
        const auto fb = scorePredictions(
            campaign, target, metric, all_configs,
            [&](const MicroarchConfig &config) {
                return feature_model.predict(config);
            });
        fb_err.add(fb.rmaePercent);
        fb_corr.add(fb.correlation);

        // The paper's response-based model at R = 32.
        std::vector<std::size_t> training;
        for (std::size_t p : spec) {
            if (p != target)
                training.push_back(p);
        }
        const auto ac = evaluator.evaluateArchCentric(
            target, metric, training, t, bench::kPaperR, seed);
        ac_err.add(ac.rmaePercent);
        ac_corr.add(ac.correlation);

        table.addRow({campaign.programs()[target],
                      Table::num(fb.rmaePercent, 1),
                      Table::num(fb.correlation, 3),
                      Table::num(ac.rmaePercent, 1),
                      Table::num(ac.correlation, 3)});
    }
    table.addRow({"AVERAGE", Table::num(fb_err.mean(), 1),
                  Table::num(fb_corr.mean(), 3),
                  Table::num(ac_err.mean(), 1),
                  Table::num(ac_corr.mean(), 3)});
    table.print(std::cout);
    std::printf(
        "\nFeatures alone find roughly similar programs (decent "
        "correlation for\nmainstream benchmarks, poor for outliers "
        "like art/mcf); the 32 responses\nof the architecture-centric "
        "model buy a large, consistent accuracy gain --\nthe paper's "
        "Section 9.5 argument in numbers.\n");
    return 0;
}
