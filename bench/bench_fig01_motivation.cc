/**
 * @file
 * Reproduces Fig. 1: the energy design space of applu as seen by a
 * program-specific predictor vs the architecture-centric predictor,
 * both given the same 32 simulations of applu.
 *
 * The paper plots configurations sorted by actual energy with each
 * model's prediction as a point; here we print an evenly-spaced series
 * of (rank, actual, program-specific, architecture-centric) rows plus
 * the summary statistics.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 1", "motivation: applu energy space, "
                              "program-specific vs architecture-centric");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const std::size_t applu = campaign.programIndex("applu");
    const std::size_t t = bench::clampT(campaign);
    const std::uint64_t seed = bench::repeatSeed(0);

    // Program-specific model: 32 simulations of applu as training.
    const auto sims = sampleIndices(campaign.configs().size(),
                                    bench::kPaperR, seed);
    ProgramSpecificPredictor program_specific;
    program_specific.train(campaign.configsAt(sims),
                           campaign.metricAt(applu, Metric::Energy, sims));

    // Architecture-centric model: trained offline on the other 25 SPEC
    // programs, the same 32 simulations used as responses.
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    std::vector<std::size_t> training;
    for (std::size_t p : spec) {
        if (p != applu)
            training.push_back(p);
    }
    ArchitectureCentricPredictor arch_centric =
        evaluator.makeOfflinePredictor(training, Metric::Energy, t, seed);
    arch_centric.fitResponses(
        campaign.configsAt(sims),
        campaign.metricAt(applu, Metric::Energy, sims));

    // Evaluate both over the whole sampled space, one batched sweep
    // per model (bit-identical to the per-point predict loop).
    const std::size_t n = campaign.configs().size();
    std::vector<double> actual(n), ps(n), ac(n);
    std::vector<double> features(n * kNumParams);
    for (std::size_t c = 0; c < n; ++c) {
        actual[c] = campaign.result(applu, c).energyNj;
        campaign.configs()[c].featuresInto(&features[c * kNumParams]);
    }
    MlpBatchScratch ps_scratch;
    program_specific.predictBatchFromFeatures(features.data(), n,
                                              ps.data(), ps_scratch);
    BatchPredictScratch ac_scratch;
    arch_centric.predictBatchFromFeatures(features.data(), n, ac.data(),
                                          ac_scratch);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return actual[a] < actual[b];
    });

    Table table({"rank", "actual (uJ)", "program-specific (uJ)",
                 "arch-centric (uJ)"});
    const std::size_t rows = 40;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t c = order[r * (n - 1) / (rows - 1)];
        table.addRow(
            {Table::num(static_cast<long long>(r * (n - 1) / (rows - 1))),
             Table::num(actual[c] / 1000.0, 2),
             Table::num(ps[c] / 1000.0, 2),
             Table::num(ac[c] / 1000.0, 2)});
    }
    table.print(std::cout);

    std::printf("\nprogram-specific : rmae %.1f%%  correlation %.3f\n",
                stats::rmae(ps, actual), stats::correlation(ps, actual));
    std::printf("arch-centric     : rmae %.1f%%  correlation %.3f\n",
                stats::rmae(ac, actual), stats::correlation(ac, actual));
    std::printf("(paper: the program-specific model cannot follow the "
                "trend at 32 simulations;\n the architecture-centric "
                "model tracks the space closely)\n");
    return 0;
}
