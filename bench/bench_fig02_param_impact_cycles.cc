/**
 * @file
 * Reproduces Fig. 2: parameter-value frequency in the best/worst 1% of
 * the space for cycles. Expected shape (paper Section 3.4): the best
 * percentile prefers wide pipelines, large ROBs, big branch predictors
 * and L2s; the worst percentile is dominated by tiny register files.
 */

#include "bench/bench_param_impact.hh"

int
main()
{
    acdse::bench::banner("Figure 2",
                         "parameter impact on the cycles extremes");
    acdse::bench::runParamImpact(acdse::Metric::Cycles, "Fig. 2");
    std::printf(
        "Checks vs paper: worst-1%% RF mass concentrated at 40 regs "
        "(Fig. 2i);\nbest-1%% prefers wide width / large ROB / large "
        "L2 (Figs. 2a/2b/2e).\n");
    return 0;
}
