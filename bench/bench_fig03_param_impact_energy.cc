/**
 * @file
 * Reproduces Fig. 3: parameter-value frequency in the best/worst 1% of
 * the space for energy. Expected shape (paper Section 3.4): low-energy
 * configurations are narrow with few RF ports and small L2s; the
 * high-energy percentile is wide with large L2s.
 */

#include "bench/bench_param_impact.hh"

int
main()
{
    acdse::bench::banner("Figure 3",
                         "parameter impact on the energy extremes");
    acdse::bench::runParamImpact(acdse::Metric::Energy, "Fig. 3");
    std::printf(
        "Checks vs paper: best-1%% is narrow (Fig. 3a) with few read "
        "ports (3d)\nand small L2 (3e); worst-1%% is wide (3g) with "
        "large L2 (3k).\n");
    return 0;
}
