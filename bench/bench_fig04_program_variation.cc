/**
 * @file
 * Reproduces Fig. 4: per-SPEC-program design-space characteristics
 * (min / 25% / median / 75% / max plus the baseline architecture) for
 * cycles, energy, ED and EDD, normalised to a 10M-instruction phase as
 * in the paper.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/characterisation.hh"

using namespace acdse;

namespace
{

const char *
unitFor(Metric metric)
{
    switch (metric) {
      case Metric::Cycles: return "cycles";
      case Metric::Energy: return "nJ";
      case Metric::Ed: return "nJ*cyc";
      case Metric::Edd: return "nJ*cyc^2";
      default: return "";
    }
}

void
printMetric(Campaign &campaign, Metric metric)
{
    const auto spec =
        bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const auto summaries =
        perProgramSummaries(campaign, metric, 10e6, spec);
    std::printf("--- Fig. 4 (%s), per 10M instructions, unit %s ---\n",
                metricName(metric), unitFor(metric));
    Table table({"program", "min", "25%", "median", "75%", "max",
                 "baseline", "max/min"});
    for (const auto &s : summaries) {
        table.addRow({s.program, Table::num(s.range.min, 3),
                      Table::num(s.range.q25, 3),
                      Table::num(s.range.median, 3),
                      Table::num(s.range.q75, 3),
                      Table::num(s.range.max, 3),
                      Table::num(s.baseline, 3),
                      Table::num(s.range.max / s.range.min, 2)});
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 4",
                  "per-program design-space variation (SPEC CPU 2000)");
    Campaign &campaign = bench::standardCampaign();
    for (Metric metric : kAllMetrics)
        printMetric(campaign, metric);
    std::printf("Checks vs paper: values span orders of magnitude "
                "across programs;\nart/mcf/swim vary the most, parser "
                "varies only mildly (Section 4.1).\n");
    return 0;
}
