/**
 * @file
 * Reproduces Fig. 5: hierarchical clustering (average linkage,
 * euclidean distance over baseline-normalised design spaces) of the
 * SPEC CPU 2000 programs for each metric. The paper reads off art and
 * mcf as strong outliers -- we print the dendrogram, each program's
 * isolation height and the resulting outlier ranking.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/characterisation.hh"

using namespace acdse;

namespace
{

void
printMetric(Campaign &campaign, Metric metric)
{
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    std::vector<std::string> names;
    for (std::size_t p : spec)
        names.push_back(campaign.programs()[p]);

    const Dendrogram tree =
        programSimilarityDendrogram(campaign, metric, spec);

    std::printf("--- Fig. 5 (%s): dendrogram ---\n", metricName(metric));
    std::cout << tree.render(names);

    // Outlier ranking by isolation height.
    std::vector<std::size_t> order(names.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return tree.isolationHeight(a) >
                         tree.isolationHeight(b);
              });
    std::printf("\nmost isolated programs (%s): ", metricName(metric));
    for (std::size_t k = 0; k < 5; ++k) {
        std::printf("%s%s (h=%.1f)", k ? ", " : "",
                    names[order[k]].c_str(),
                    tree.isolationHeight(order[k]));
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 5",
                  "program-similarity dendrograms (SPEC CPU 2000)");
    Campaign &campaign = bench::standardCampaign();
    for (Metric metric : kAllMetrics)
        printMetric(campaign, metric);
    std::printf("Checks vs paper: art (and mcf, especially for energy) "
                "sit far from\neverything else; most other programs "
                "form tight clusters (Section 4.2).\n");
    return 0;
}
