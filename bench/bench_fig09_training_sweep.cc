/**
 * @file
 * Reproduces Fig. 9: rmae and correlation of the program-specific
 * predictors as the number of training simulations T varies, averaged
 * over all SPEC CPU 2000 programs. The paper picks T = 512 as the
 * knee of the curve.
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 9", "program-specific accuracy vs training "
                              "set size T (choose T = 512)");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);

    const std::vector<std::size_t> sweep{8, 16, 32, 64, 128, 256, 512};
    for (Metric metric : kAllMetrics) {
        Table table({"T", "rmae (%)", "rmae stddev", "correlation",
                     "corr stddev"});
        for (std::size_t t : sweep) {
            if (t > campaign.configs().size() - 32)
                continue;
            stats::RunningStats err, corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                // One parallel sweep per repeat; fold i is bit-equal
                // to the serial evaluateProgramSpecific(spec[i], ...).
                const auto sweep = evaluator.evaluateProgramSpecificSweep(
                    spec, metric, t, bench::repeatSeed(r));
                for (const auto &q : sweep) {
                    err.add(q.rmaePercent);
                    corr.add(q.correlation);
                }
            }
            table.addRow({Table::num(static_cast<long long>(t)),
                          Table::num(err.mean(), 1),
                          Table::num(err.stddev(), 1),
                          Table::num(corr.mean(), 3),
                          Table::num(corr.stddev(), 3)});
        }
        std::printf("--- Fig. 9 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("Checks vs paper: error falls and correlation rises "
                "with T, flattening\nby T = 512 (Section 6.2).\n");
    return 0;
}
