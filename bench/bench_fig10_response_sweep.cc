/**
 * @file
 * Reproduces Fig. 10: rmae and correlation of the architecture-centric
 * predictor as the number of responses R from the new program varies
 * (T fixed at 512, leave-one-out over SPEC CPU 2000). The paper picks
 * R = 32: beyond that, no significant further improvement.
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 10", "architecture-centric accuracy vs "
                               "response count R (choose R = 32)");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);

    const std::vector<std::size_t> sweep{2, 4, 8, 16, 32, 64, 128};
    for (Metric metric : kAllMetrics) {
        Table table({"R", "rmae (%)", "rmae stddev", "correlation",
                     "corr stddev"});
        for (std::size_t r_count : sweep) {
            stats::RunningStats err, corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                // Leave-one-out over SPEC as one parallel sweep.
                const auto sweep = evaluator.evaluateArchCentricSweep(
                    spec, metric, t, r_count, bench::repeatSeed(r));
                for (const auto &quality : sweep) {
                    err.add(quality.rmaePercent);
                    corr.add(quality.correlation);
                }
            }
            table.addRow({Table::num(static_cast<long long>(r_count)),
                          Table::num(err.mean(), 1),
                          Table::num(err.stddev(), 1),
                          Table::num(corr.mean(), 3),
                          Table::num(corr.stddev(), 3)});
        }
        std::printf("--- Fig. 10 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("Checks vs paper: beyond R = 32 there is no significant "
                "further\nimprovement; at R = 32 correlation ~0.95 and "
                "rmae ~7/7/14/22%% for\ncycles/energy/ED/EDD "
                "(Section 6.2).\n");
    return 0;
}
