/**
 * @file
 * Reproduces Fig. 11: per-program training and testing error of the
 * architecture-centric model on SPEC CPU 2000 (leave-one-out,
 * T = 512, R = 32, repeated with fresh random selections).
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 11", "per-program train/test error, "
                               "leave-one-out on SPEC CPU 2000");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);

    for (Metric metric : kAllMetrics) {
        Table table({"program", "train err (%)", "test err (%)",
                     "test stddev", "correlation"});
        stats::RunningStats avg_err, avg_corr;
        // One parallel leave-one-out sweep per repeat; per-program
        // statistics accumulate across repeats exactly as the old
        // serial per-program loop did.
        std::vector<stats::RunningStats> train_err(spec.size());
        std::vector<stats::RunningStats> test_err(spec.size());
        std::vector<stats::RunningStats> corr(spec.size());
        for (std::size_t r = 0; r < bench::repeats(); ++r) {
            const auto sweep = evaluator.evaluateArchCentricSweep(
                spec, metric, t, bench::kPaperR, bench::repeatSeed(r));
            for (std::size_t i = 0; i < spec.size(); ++i) {
                train_err[i].add(sweep[i].trainingErrorPercent);
                test_err[i].add(sweep[i].rmaePercent);
                corr[i].add(sweep[i].correlation);
            }
        }
        for (std::size_t i = 0; i < spec.size(); ++i) {
            avg_err.add(test_err[i].mean());
            avg_corr.add(corr[i].mean());
            table.addRow({campaign.programs()[spec[i]],
                          Table::num(train_err[i].mean(), 1),
                          Table::num(test_err[i].mean(), 1),
                          Table::num(test_err[i].stddev(), 1),
                          Table::num(corr[i].mean(), 3)});
        }
        table.addRow({"AVERAGE", "", Table::num(avg_err.mean(), 1), "",
                      Table::num(avg_corr.mean(), 3)});
        std::printf("--- Fig. 11 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Checks vs paper: average error ~8%% for cycles and energy, "
        "~14%% ED,\n~21%% EDD; art and mcf are the hardest programs; "
        "high training error\npredicts high testing error "
        "(Section 7.2).\n");
    return 0;
}
