/**
 * @file
 * Reproduces Fig. 11: per-program training and testing error of the
 * architecture-centric model on SPEC CPU 2000 (leave-one-out,
 * T = 512, R = 32, repeated with fresh random selections).
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 11", "per-program train/test error, "
                               "leave-one-out on SPEC CPU 2000");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);

    for (Metric metric : kAllMetrics) {
        Table table({"program", "train err (%)", "test err (%)",
                     "test stddev", "correlation"});
        stats::RunningStats avg_err, avg_corr;
        for (std::size_t p : spec) {
            std::vector<std::size_t> training;
            for (std::size_t q : spec) {
                if (q != p)
                    training.push_back(q);
            }
            stats::RunningStats train_err, test_err, corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                const auto q = evaluator.evaluateArchCentric(
                    p, metric, training, t, bench::kPaperR,
                    bench::repeatSeed(r));
                train_err.add(q.trainingErrorPercent);
                test_err.add(q.rmaePercent);
                corr.add(q.correlation);
            }
            avg_err.add(test_err.mean());
            avg_corr.add(corr.mean());
            table.addRow({campaign.programs()[p],
                          Table::num(train_err.mean(), 1),
                          Table::num(test_err.mean(), 1),
                          Table::num(test_err.stddev(), 1),
                          Table::num(corr.mean(), 3)});
        }
        table.addRow({"AVERAGE", "", Table::num(avg_err.mean(), 1), "",
                      Table::num(avg_corr.mean(), 3)});
        std::printf("--- Fig. 11 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Checks vs paper: average error ~8%% for cycles and energy, "
        "~14%% ED,\n~21%% EDD; art and mcf are the hardest programs; "
        "high training error\npredicts high testing error "
        "(Section 7.2).\n");
    return 0;
}
