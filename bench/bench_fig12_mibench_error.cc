/**
 * @file
 * Reproduces Fig. 12: the architecture-centric model trained on all 26
 * SPEC CPU 2000 programs predicting each MiBench program -- the
 * cross-suite generalisation experiment (Section 7.3).
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 12",
                  "predicting MiBench from SPEC CPU 2000 training");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const auto mibench = bench::suiteIndices(campaign, Suite::MiBench);
    const std::size_t t = bench::clampT(campaign);

    for (Metric metric : kAllMetrics) {
        Table table({"program", "train err (%)", "test err (%)",
                     "test stddev", "correlation"});
        stats::RunningStats avg_err, avg_corr;
        for (std::size_t p : mibench) {
            stats::RunningStats train_err, test_err, corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                const auto q = evaluator.evaluateArchCentric(
                    p, metric, spec, t, bench::kPaperR,
                    bench::repeatSeed(r));
                train_err.add(q.trainingErrorPercent);
                test_err.add(q.rmaePercent);
                corr.add(q.correlation);
            }
            avg_err.add(test_err.mean());
            avg_corr.add(corr.mean());
            table.addRow({campaign.programs()[p],
                          Table::num(train_err.mean(), 1),
                          Table::num(test_err.mean(), 1),
                          Table::num(test_err.stddev(), 1),
                          Table::num(corr.mean(), 3)});
        }
        table.addRow({"AVERAGE", "", Table::num(avg_err.mean(), 1), "",
                      Table::num(avg_corr.mean(), 3)});
        std::printf("--- Fig. 12 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Checks vs paper: cross-suite errors are comparable to (even "
        "slightly\nbetter than) within-SPEC errors -- ~6/7/12/18%% for "
        "cycles/energy/ED/EDD;\npatricia and tiff2rgba stand out with "
        "higher training error (Section 7.3).\n");
    return 0;
}
