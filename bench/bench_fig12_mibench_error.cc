/**
 * @file
 * Reproduces Fig. 12: the architecture-centric model trained on all 26
 * SPEC CPU 2000 programs predicting each MiBench program -- the
 * cross-suite generalisation experiment (Section 7.3).
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 12",
                  "predicting MiBench from SPEC CPU 2000 training");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const auto mibench = bench::suiteIndices(campaign, Suite::MiBench);
    const std::size_t t = bench::clampT(campaign);

    for (Metric metric : kAllMetrics) {
        Table table({"program", "train err (%)", "test err (%)",
                     "test stddev", "correlation"});
        stats::RunningStats avg_err, avg_corr;
        // The full SPEC suite is the training pool for every MiBench
        // fold, so each repeat is one parallel cross-suite sweep.
        std::vector<stats::RunningStats> train_err(mibench.size());
        std::vector<stats::RunningStats> test_err(mibench.size());
        std::vector<stats::RunningStats> corr(mibench.size());
        for (std::size_t r = 0; r < bench::repeats(); ++r) {
            const auto sweep = evaluator.evaluateArchCentricSweep(
                mibench, metric, t, bench::kPaperR, bench::repeatSeed(r),
                spec);
            for (std::size_t i = 0; i < mibench.size(); ++i) {
                train_err[i].add(sweep[i].trainingErrorPercent);
                test_err[i].add(sweep[i].rmaePercent);
                corr[i].add(sweep[i].correlation);
            }
        }
        for (std::size_t i = 0; i < mibench.size(); ++i) {
            avg_err.add(test_err[i].mean());
            avg_corr.add(corr[i].mean());
            table.addRow({campaign.programs()[mibench[i]],
                          Table::num(train_err[i].mean(), 1),
                          Table::num(test_err[i].mean(), 1),
                          Table::num(test_err[i].stddev(), 1),
                          Table::num(corr[i].mean(), 3)});
        }
        table.addRow({"AVERAGE", "", Table::num(avg_err.mean(), 1), "",
                      Table::num(avg_corr.mean(), 3)});
        std::printf("--- Fig. 12 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Checks vs paper: cross-suite errors are comparable to (even "
        "slightly\nbetter than) within-SPEC errors -- ~6/7/12/18%% for "
        "cycles/energy/ED/EDD;\npatricia and tiff2rgba stand out with "
        "higher training error (Section 7.3).\n");
    return 0;
}
