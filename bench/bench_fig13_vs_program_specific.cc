/**
 * @file
 * Reproduces Fig. 13: correlation and rmae of the program-specific
 * predictor vs the architecture-centric predictor as the number of
 * simulations of the new program varies (training data for the former,
 * responses for the latter). This is the paper's headline comparison:
 * at 32 simulations the architecture-centric model achieves ~7% error
 * and 0.95 correlation on cycles, against 24% / 0.55 for the
 * program-specific state of the art; parity needs roughly an order of
 * magnitude more simulations.
 */

#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 13", "architecture-centric vs "
                               "program-specific at equal budgets");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);

    const std::vector<std::size_t> budgets{4,  8,   16,  32,
                                           64, 128, 256, 512};
    for (Metric metric : kAllMetrics) {
        Table table({"sims", "PS rmae (%)", "PS corr", "AC rmae (%)",
                     "AC corr"});
        for (std::size_t budget : budgets) {
            if (budget > campaign.configs().size() - 32)
                continue;
            stats::RunningStats ps_err, ps_corr, ac_err, ac_corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                // Both sides of the comparison as parallel sweeps; the
                // per-program accumulation order is unchanged.
                const auto ps = evaluator.evaluateProgramSpecificSweep(
                    spec, metric, budget, bench::repeatSeed(r));
                for (const auto &q : ps) {
                    ps_err.add(q.rmaePercent);
                    ps_corr.add(q.correlation);
                }
                const auto ac = evaluator.evaluateArchCentricSweep(
                    spec, metric, t, budget, bench::repeatSeed(r));
                for (const auto &q : ac) {
                    ac_err.add(q.rmaePercent);
                    ac_corr.add(q.correlation);
                }
            }
            table.addRow({Table::num(static_cast<long long>(budget)),
                          Table::num(ps_err.mean(), 1),
                          Table::num(ps_corr.mean(), 3),
                          Table::num(ac_err.mean(), 1),
                          Table::num(ac_corr.mean(), 3)});
        }
        std::printf("--- Fig. 13 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Checks vs paper: at every small budget the architecture-"
        "centric model\nhas lower error and far higher correlation; "
        "the program-specific model\nonly catches up at hundreds of "
        "simulations (Section 7.4).\n");
    return 0;
}
