/**
 * @file
 * Reproduces Fig. 14: accuracy of the architecture-centric predictor
 * as the number of offline training programs varies (random subsets,
 * the remaining SPEC programs as test set). The paper finds a plateau
 * by ~15 programs and usable accuracy (correlation > 0.85) from 5.
 */

#include <cstdio>
#include <iostream>

#include "base/rng.hh"
#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    bench::banner("Figure 14",
                  "accuracy vs number of offline training programs");
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const std::size_t t = bench::clampT(campaign);

    const std::vector<std::size_t> counts{2, 5, 10, 15, 20, 25};
    for (Metric metric : kAllMetrics) {
        Table table({"training programs", "rmae (%)", "rmae stddev",
                     "correlation", "corr stddev"});
        for (std::size_t count : counts) {
            if (count >= spec.size())
                continue;
            stats::RunningStats err, corr;
            for (std::size_t r = 0; r < bench::repeats(); ++r) {
                // Random subset of training programs for this repeat.
                Rng rng(bench::repeatSeed(r) ^ count);
                std::vector<std::size_t> pool = spec;
                rng.shuffle(pool);
                const std::vector<std::size_t> training(
                    pool.begin(),
                    pool.begin() + static_cast<std::ptrdiff_t>(count));
                // Test on the remaining SPEC programs as one sweep.
                const std::vector<std::size_t> testing(
                    pool.begin() + static_cast<std::ptrdiff_t>(count),
                    pool.end());
                const auto sweep = evaluator.evaluateArchCentricSweep(
                    testing, metric, t, bench::kPaperR,
                    bench::repeatSeed(r), training);
                for (const auto &q : sweep) {
                    err.add(q.rmaePercent);
                    corr.add(q.correlation);
                }
            }
            table.addRow({Table::num(static_cast<long long>(count)),
                          Table::num(err.mean(), 1),
                          Table::num(err.stddev(), 1),
                          Table::num(corr.mean(), 3),
                          Table::num(corr.stddev(), 3)});
        }
        std::printf("--- Fig. 14 (%s) ---\n", metricName(metric));
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("Checks vs paper: correlation already > 0.85 with 5 "
                "training programs\nand a plateau by ~15 "
                "(Section 8).\n");
    return 0;
}
