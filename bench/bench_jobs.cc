/**
 * @file
 * Job-system substrate throughput: checksummed journal appends,
 * full-journal replay, and claim/complete round trips through the
 * flock-serialised JobQueue. These are the fixed costs every campaign
 * job run pays on top of the simulations themselves; the CI gate
 * (tools/ci/check_bench_regression.py + bench/baseline.json) exists
 * to catch a quietly quadratic replay or a fsync sneaking into the
 * append path.
 *
 * Environment:
 *   ACDSE_JOBS_BENCH_APPENDS  journal records appended (default 20000)
 *   ACDSE_JOBS_BENCH_JOBS     queue jobs claimed (default 512)
 *   ACDSE_BENCH_JSON          output path (default BENCH_jobs.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "base/journal.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "jobs/job_queue.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    const std::size_t appends = envSize("ACDSE_JOBS_BENCH_APPENDS",
                                        20000);
    const std::size_t numJobs = envSize("ACDSE_JOBS_BENCH_JOBS", 512);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "acdse_bench_jobs";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // --- journal append + replay -------------------------------------
    Journal journal((dir / "bench.journal").string());
    std::printf("appending %zu journal records...\n", appends);
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < appends; ++i) {
        journal.append({"start", "sim" + std::to_string(i % 97), "1",
                        std::to_string(i)});
    }
    const double appendSeconds = secondsSince(start);
    const double appendsPerS =
        static_cast<double>(appends) / appendSeconds;

    start = std::chrono::steady_clock::now();
    const JournalReplay replay = journal.replay();
    const double replaySeconds = secondsSince(start);
    if (replay.records.size() != appends || replay.tornTail) {
        std::printf("FAIL: replay saw %zu/%zu records (torn=%d)\n",
                    replay.records.size(), appends, replay.tornTail);
        return 1;
    }
    const double replayPerS =
        static_cast<double>(appends) / replaySeconds;

    // --- queue claim/complete round trips ----------------------------
    std::vector<jobs::JobSpec> specs;
    specs.reserve(numJobs);
    for (std::size_t j = 0; j < numJobs; ++j) {
        specs.push_back({"job" + std::to_string(j), "simulate-shard", 0,
                         std::to_string(j)});
    }
    jobs::JobQueue queue(dir.string(), "bench_queue");
    queue.open("benchhash", specs);
    std::printf("draining %zu queue jobs...\n", numJobs);
    start = std::chrono::steady_clock::now();
    std::size_t drained = 0;
    for (;;) {
        jobs::JobSpec spec;
        int attempt = 0;
        if (queue.claim(spec, attempt) != jobs::ClaimResult::Claimed)
            break;
        queue.complete(spec.id);
        ++drained;
    }
    const double claimSeconds = secondsSince(start);
    if (drained != numJobs || !queue.snapshot().drained()) {
        std::printf("FAIL: drained %zu/%zu jobs\n", drained, numJobs);
        return 1;
    }
    const double claimsPerS =
        static_cast<double>(numJobs) / claimSeconds;

    std::printf("\njournal: %.0f appends/s, replay %.0f records/s\n",
                appendsPerS, replayPerS);
    std::printf("queue:   %.0f claim+complete/s (replay-validated "
                "under flock)\n",
                claimsPerS);

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_jobs.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("jobs")
        .key("appends").value(static_cast<std::uint64_t>(appends))
        .key("jobs").value(static_cast<std::uint64_t>(numJobs))
        .key("metrics").beginObject()
        .key("jobs_journal_appends_per_s").value(appendsPerS)
        .key("jobs_journal_replay_records_per_s").value(replayPerS)
        .key("jobs_claims_per_s").value(claimsPerS)
        .endObject()
        .endObject();
    writeTextAtomic(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    std::filesystem::remove_all(dir);

    // Loose in-binary sanity floors (the ratcheted gates live in
    // bench/baseline.json): any healthy build clears these easily.
    if (appendsPerS < 10000.0 || claimsPerS < 100.0) {
        std::printf("FAIL: below the sanity floor\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
