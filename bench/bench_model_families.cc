/**
 * @file
 * Extension bench (paper Section 9.4): the three program-specific
 * model families used in the literature -- artificial neural networks
 * (Ipek et al.), radial basis functions (Joseph et al.) and restricted
 * cubic splines (Lee & Brooks) -- evaluated head-to-head on our
 * substrate. The paper states "the other schemes are similar to each
 * other in terms of accuracy [11], [12]"; this bench tests that claim.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"
#include "ml/mlp.hh"
#include "ml/rbf.hh"
#include "ml/spline.hh"

using namespace acdse;

namespace
{

/** Train/evaluate one model family on one program at one budget. */
template <typename Model>
PredictionQuality
evaluateFamily(Campaign &campaign, std::size_t program,
               std::size_t sims, std::uint64_t seed, Model &model)
{
    const std::size_t total = campaign.configs().size();
    const auto train_idx = sampleIndices(total, sims, seed);

    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t c : train_idx) {
        xs.push_back(campaign.configs()[c].asFeatureVector());
        ys.push_back(
            std::log(campaign.result(program, c).cycles));
    }
    model.train(xs, ys);

    std::vector<char> used(total, 0);
    for (std::size_t c : train_idx)
        used[c] = 1;
    std::vector<double> predicted, actual;
    for (std::size_t c = 0; c < total; ++c) {
        if (used[c])
            continue;
        predicted.push_back(std::exp(
            model.predict(campaign.configs()[c].asFeatureVector())));
        actual.push_back(campaign.result(program, c).cycles);
    }
    PredictionQuality q;
    q.rmaePercent = stats::rmae(predicted, actual);
    q.correlation = stats::correlation(predicted, actual);
    return q;
}

} // namespace

int
main()
{
    bench::banner("Model families (extension)",
                  "ANN vs RBF vs regression splines as program-"
                  "specific predictors");
    Campaign &campaign = bench::standardCampaign();
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);

    Table table({"sims", "family", "rmae (%)", "correlation"});
    for (std::size_t sims : {32ul, 128ul, 512ul}) {
        stats::RunningStats ann_e, ann_c, rbf_e, rbf_c, spl_e, spl_c;
        for (std::size_t r = 0; r < bench::repeats(); ++r) {
            const std::uint64_t seed = bench::repeatSeed(r);
            for (std::size_t p : spec) {
                MlpOptions mlp_options;
                mlp_options.seed = seed ^ p;
                Mlp ann(mlp_options);
                const auto qa =
                    evaluateFamily(campaign, p, sims, seed ^ p, ann);
                ann_e.add(qa.rmaePercent);
                ann_c.add(qa.correlation);

                RbfOptions rbf_options;
                rbf_options.centers = std::min<std::size_t>(48, sims);
                rbf_options.seed = seed ^ p;
                RbfNetwork rbf(rbf_options);
                const auto qr =
                    evaluateFamily(campaign, p, sims, seed ^ p, rbf);
                rbf_e.add(qr.rmaePercent);
                rbf_c.add(qr.correlation);

                SplineModel spline;
                const auto qs = evaluateFamily(campaign, p, sims,
                                               seed ^ p, spline);
                spl_e.add(qs.rmaePercent);
                spl_c.add(qs.correlation);
            }
        }
        const auto row = [&](const char *family,
                             const stats::RunningStats &e,
                             const stats::RunningStats &c) {
            table.addRow({Table::num(static_cast<long long>(sims)),
                          family, Table::num(e.mean(), 1),
                          Table::num(c.mean(), 3)});
        };
        row("ANN (Ipek et al.)", ann_e, ann_c);
        row("RBF (Joseph et al.)", rbf_e, rbf_c);
        row("splines (Lee & Brooks)", spl_e, spl_c);
    }
    table.print(std::cout);
    std::printf(
        "\nChecks vs paper (Section 9.4): the three families stay "
        "within a few rmae\npoints of each other (the additive spline "
        "model edges ahead at large\nbudgets on this substrate) and "
        "none rescues the program-specific\napproach at 32 simulations "
        "-- which is the gap the architecture-centric\nmodel "
        "closes.\n");
    return 0;
}
