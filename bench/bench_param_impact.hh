/**
 * @file
 * Shared driver for the Fig. 2 / Fig. 3 parameter-impact benches: the
 * frequency of each parameter value among the best/worst 1% of the
 * sampled space, pooled over the SPEC CPU 2000 programs.
 */

#pragma once

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/characterisation.hh"

namespace acdse
{
namespace bench
{

/** Print the best/worst-1% value-frequency tables for one metric. */
inline void
runParamImpact(Metric metric, const char *figure)
{
    Campaign &campaign = standardCampaign();
    // Restrict to SPEC CPU 2000, as the paper does.
    const auto freqs = extremeValueFrequencies(
        campaign, metric, 0.01,
        suiteIndices(campaign, Suite::SpecCpu2000));
    std::printf("Frequency of each parameter value among the best and "
                "worst 1%% of\nconfigurations per program, pooled over "
                "SPEC CPU 2000 (%s).\n\n",
                metricName(metric));

    for (const auto &f : freqs) {
        const ParamSpec &param = paramSpec(f.param);
        std::printf("--- %s (%s) ---\n", param.name, figure);
        Table table({"value", "best 1% freq", "worst 1% freq"});
        for (std::size_t i = 0; i < f.values.size(); ++i) {
            table.addRow({Table::num(static_cast<long long>(f.values[i])),
                          Table::num(f.bestFreq[i], 3),
                          Table::num(f.worstFreq[i], 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }
}

} // namespace bench
} // namespace acdse

