/**
 * @file
 * google-benchmark microbenchmarks of the substrate: simulator
 * throughput, trace generation, cache/predictor hot paths, and the ML
 * kernels. These guard the practicality of the campaign (36,000
 * simulations must stay minutes, not hours).
 */

#include <benchmark/benchmark.h>

#include "arch/design_space.hh"
#include "base/rng.hh"
#include "core/program_specific_predictor.hh"
#include "ml/kmeans.hh"
#include "ml/linear_regression.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    const TraceGenerator generator(profileByName("gzip"));
    const auto length = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Trace trace = generator.generate(length);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * static_cast<std::int64_t>(length)));
}
BENCHMARK(BM_TraceGeneration)->Arg(4000)->Arg(16000);

void
BM_SimulateBaseline(benchmark::State &state)
{
    const char *names[] = {"gzip", "swim", "crc32"};
    const Trace trace = TraceGenerator(
        profileByName(names[state.range(0)])).generate(8000);
    const MicroarchConfig config = DesignSpace::baseline();
    for (auto _ : state) {
        const SimulationResult result = simulate(config, trace);
        benchmark::DoNotOptimize(result.metrics.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 8000));
}
BENCHMARK(BM_SimulateBaseline)->Arg(0)->Arg(1)->Arg(2);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(32 * 1024, 4, 32);
    Rng rng(1);
    std::vector<std::uint64_t> addrs(4096);
    for (auto &a : addrs)
        a = rng.nextBounded(256 * 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false).hit);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    GsharePredictor bpred(16 * 1024);
    Rng rng(2);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.nextBool(0.6);
        benchmark::DoNotOptimize(bpred.predict(pc));
        bpred.update(pc, taken);
        pc = 0x400000 + (rng.next() & 0xfff);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GsharePredict);

void
BM_MlpTrain(benchmark::State &state)
{
    const auto t = static_cast<std::size_t>(state.range(0));
    const auto configs = DesignSpace::sampleValidConfigs(t, 3);
    std::vector<double> ys;
    for (const auto &c : configs)
        ys.push_back(1e6 / c.width() + 1e4 * c.robSize());
    for (auto _ : state) {
        ProgramSpecificPredictor model;
        model.train(configs, ys);
        benchmark::DoNotOptimize(
            model.predict(DesignSpace::baseline()));
    }
}
BENCHMARK(BM_MlpTrain)->Arg(32)->Arg(512)->Unit(benchmark::kMillisecond);

void
BM_LinearRegressionFit(benchmark::State &state)
{
    Rng rng(4);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 32; ++i) { // the R = 32 regime
        std::vector<double> x(25); // 25 training-program features
        for (auto &v : x)
            v = rng.nextGaussian();
        ys.push_back(x[0] - x[3]);
        xs.push_back(std::move(x));
    }
    for (auto _ : state) {
        LinearRegression model;
        model.fit(xs, ys, 2e-2);
        benchmark::DoNotOptimize(model.weights().size());
    }
}
BENCHMARK(BM_LinearRegressionFit);

void
BM_Kmeans(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 256; ++i) {
        std::vector<double> p(16);
        for (auto &v : p)
            v = rng.nextGaussian();
        points.push_back(std::move(p));
    }
    for (auto _ : state) {
        const KmeansResult result = kmeans(points, 30, 6);
        benchmark::DoNotOptimize(result.inertia);
    }
}
BENCHMARK(BM_Kmeans);

} // namespace
} // namespace acdse

BENCHMARK_MAIN();
