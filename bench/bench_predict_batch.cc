/**
 * @file
 * Batched-inference benchmark: points/second of the architecture-
 * centric ensemble through the scalar per-point predict path vs the
 * vectorised batch kernels (ISSUE 4), at one thread and at full
 * hardware parallelism.
 *
 * The predictor is synthetic (ANNs trained on analytic functions of
 * the configuration, as in bench_serve_throughput) so the numbers are
 * pure inference arithmetic: both paths consume precomputed feature
 * matrices, isolating the kernel difference from feature assembly.
 * The batch path must be bit-identical to the scalar one
 * (tests/test_batch_predict.cc); this bench shows why it exists.
 *
 * Acceptance floor (ISSUE 4): the batched path delivers >= 3x the
 * scalar single-thread points/s on an 8-core host. The floor is
 * enforced here when the host has >= 8 hardware threads and tracked by
 * tools/ci/check_bench_regression.py against bench/baseline.json.
 *
 * Environment: ACDSE_PREDICT_BENCH_MODELS (default 8) sets the
 * ensemble size; ACDSE_BENCH_JSON overrides the
 * BENCH_predict_batch.json output path (schema acdse-bench-v1).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "arch/design_space.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "base/thread_pool.hh"
#include "core/architecture_centric_predictor.hh"
#include "obs/stats_export.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

/** A smooth positive analytic "program" over the design space. */
double
syntheticMetric(const MicroarchConfig &config, double wide, double mem)
{
    return 1000.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           20000.0 / std::sqrt(static_cast<double>(config.robSize()));
}

/** Build one fitted ensemble without any simulation. */
ArchitectureCentricPredictor
syntheticPredictor(std::size_t num_models)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 1);
    const auto responses = DesignSpace::sampleValidConfigs(32, 2);

    std::vector<ProgramTrainingSet> sets(num_models);
    for (std::size_t j = 0; j < num_models; ++j) {
        const double wide = 0.5 + 0.25 * static_cast<double>(j);
        const double mem = 2.0 - 0.15 * static_cast<double>(j);
        // snprintf, not string concatenation: `"p" + std::to_string(j)`
        // trips a GCC 12 -O3 -Wrestrict false positive (GCC PR105651).
        char name[32];
        std::snprintf(name, sizeof(name), "p%zu", j);
        sets[j].name = name;
        sets[j].configs = train;
        for (const auto &config : train)
            sets[j].values.push_back(syntheticMetric(config, wide, mem));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);

    std::vector<double> response_values;
    for (const auto &config : responses)
        response_values.push_back(syntheticMetric(config, 1.0, 1.0));
    predictor.fitResponses(responses, response_values);
    return predictor;
}

/** Work-unit size on the pooled paths (matches the serving chunk). */
constexpr std::size_t kChunk = 256;

/** Time @p passes runs of @p sweep over @p points and return points/s. */
template <typename Sweep>
double
measure(std::size_t points, std::size_t passes, Sweep &&sweep)
{
    sweep(); // warm-up: scratch growth, pool wake, icache
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < passes; ++p)
        sweep();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return static_cast<double>(points * passes) / seconds;
}

/** Scalar path: one predictFromFeatures call per point. */
double
measureScalar(const ArchitectureCentricPredictor &predictor,
              const std::vector<std::vector<double>> &features,
              std::size_t threads, std::size_t passes)
{
    const std::size_t n = features.size();
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    std::vector<double> out(n);
    ThreadPool pool(threads);
    return measure(n, passes, [&] {
        pool.parallelFor(0, chunks, [&](std::size_t chunk) {
            const std::size_t begin = chunk * kChunk;
            const std::size_t end = std::min(begin + kChunk, n);
            PredictScratch scratch;
            for (std::size_t i = begin; i < end; ++i)
                out[i] =
                    predictor.predictFromFeatures(features[i], scratch);
        });
    });
}

/** Batched path: one predictBatchFromFeatures call per chunk. */
double
measureBatch(const ArchitectureCentricPredictor &predictor,
             const std::vector<double> &rows, std::size_t threads,
             std::size_t passes)
{
    const std::size_t n = rows.size() / kNumParams;
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    std::vector<double> out(n);
    ThreadPool pool(threads);
    return measure(n, passes, [&] {
        pool.parallelFor(0, chunks, [&](std::size_t chunk) {
            const std::size_t begin = chunk * kChunk;
            const std::size_t count = std::min(kChunk, n - begin);
            BatchPredictScratch scratch;
            predictor.predictBatchFromFeatures(
                rows.data() + begin * kNumParams, count,
                out.data() + begin, scratch);
        });
    });
}

} // namespace

int
main()
{
    const std::size_t num_models =
        envSize("ACDSE_PREDICT_BENCH_MODELS", 8);
    const std::size_t hw = std::thread::hardware_concurrency();
    const obs::Snapshot obs_before =
        obs::Registry::global().snapshot();

    std::printf("building synthetic %zu-ANN ensemble...\n", num_models);
    const ArchitectureCentricPredictor predictor =
        syntheticPredictor(num_models);

    const auto queries = DesignSpace::sampleValidConfigs(32768, 42);
    const std::size_t n = queries.size();
    std::vector<std::vector<double>> features(n);
    std::vector<double> rows(n * kNumParams);
    for (std::size_t i = 0; i < n; ++i) {
        features[i] = queries[i].asFeatureVector();
        queries[i].featuresInto(&rows[i * kNumParams]);
    }

    const std::size_t passes = 4;
    std::printf("\nensemble inference, %zu design points x %zu passes "
                "per cell (points/s)\n\n",
                n, passes);

    const double scalar_t1 = measureScalar(predictor, features, 1, passes);
    const double batch_t1 = measureBatch(predictor, rows, 1, passes);
    const double scalar_tmax =
        measureScalar(predictor, features, hw, passes);
    const double batch_tmax = measureBatch(predictor, rows, hw, passes);
    const double speedup_t1 = batch_t1 / scalar_t1;
    const double speedup_tmax = batch_tmax / scalar_tmax;

    std::printf("%-18s  %12s  %12s  %8s\n", "threads", "scalar pts/s",
                "batch pts/s", "speedup");
    std::printf("%-18zu  %12.0f  %12.0f  %7.2fx\n", std::size_t{1},
                scalar_t1, batch_t1, speedup_t1);
    std::printf("%-18zu  %12.0f  %12.0f  %7.2fx\n", hw, scalar_tmax,
                batch_tmax, speedup_tmax);

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_predict_batch.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("predict_batch")
        .key("hardware_concurrency").value(
            static_cast<std::uint64_t>(hw))
        .key("num_models").value(
            static_cast<std::uint64_t>(num_models))
        .key("metrics").beginObject()
        .key("predict_scalar_pps_t1").value(scalar_t1)
        .key("predict_batch_pps_t1").value(batch_t1)
        .key("predict_batch_speedup_t1").value(speedup_t1)
        .key("predict_batch_pps_tmax").value(batch_tmax)
        .endObject();
    // Additive per-stage breakdown (train/ setup and pool/ counters);
    // the regression checker only reads "metrics".
    json.key("stages");
    obs::writeStagesJson(
        json,
        obs::diff(obs_before, obs::Registry::global().snapshot()));
    json.endObject();
    writeTextAtomic(out, json.str());
    std::printf("\nwrote %s\n", out.c_str());

    std::printf("\nsingle-thread batch speedup: %.2fx "
                "(target: >= 3x on >= 8 hardware threads)\n",
                speedup_t1);
    if (hw >= 8 && speedup_t1 < 3.0) {
        std::printf("FAIL: below the batched-inference speedup floor\n");
        return 1;
    }
    std::printf(hw >= 8 ? "PASS\n"
                        : "PASS (floor not enforced: fewer than 8 "
                          "hardware threads)\n");
    return 0;
}
