/**
 * @file
 * Extension bench (paper Section 9.2): how do SimPoint and SMARTS
 * sampled simulation compare against full cycle-level simulation on
 * our substrate? For a set of programs and random configurations we
 * report the estimate error, the rank fidelity (correlation across
 * configurations -- what design-space exploration actually needs) and
 * the fraction of instructions simulated in detail.
 */

#include <cstdio>
#include <iostream>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "sim/sampled_sim.hh"
#include "sim/simulator.hh"
#include "trace/trace_generator.hh"

using namespace acdse;

int
main()
{
    bench::banner("Sampling methods (extension)",
                  "SimPoint / SMARTS vs full simulation");
    const auto configs = DesignSpace::sampleValidConfigs(10, 4242);

    Table table({"program", "method", "mean |err| (%)", "rank corr",
                 "detail frac"});
    for (const char *name :
         {"gzip", "crafty", "swim", "parser", "fft"}) {
        const Trace trace =
            TraceGenerator(profileByName(name)).generate(24000);

        std::vector<double> full, simpoint, smarts;
        double sp_err = 0.0, sm_err = 0.0;
        double sp_frac = 0.0, sm_frac = 0.0;
        for (const auto &config : configs) {
            const double truth =
                simulate(config, trace).metrics.cycles;
            full.push_back(truth);

            SimPointOptions sp_options;
            sp_options.intervalLength = 2000;
            sp_options.maxClusters = 6;
            const SampledResult sp =
                simulateWithSimPoints(config, trace, sp_options);
            simpoint.push_back(sp.metrics.cycles);
            sp_err += 100.0 * std::abs(sp.metrics.cycles - truth) /
                      truth;
            sp_frac += sp.detailFraction;

            SmartsOptions sm_options;
            sm_options.unitInstructions = 500;
            sm_options.samplingPeriod = 8;
            const SampledResult sm =
                simulateWithSmarts(config, trace, sm_options);
            smarts.push_back(sm.metrics.cycles);
            sm_err += 100.0 * std::abs(sm.metrics.cycles - truth) /
                      truth;
            sm_frac += sm.detailFraction;
        }
        const double n = static_cast<double>(configs.size());
        table.addRow({name, "SimPoint", Table::num(sp_err / n, 1),
                      Table::num(stats::correlation(simpoint, full), 3),
                      Table::num(sp_frac / n, 2)});
        table.addRow({name, "SMARTS", Table::num(sm_err / n, 1),
                      Table::num(stats::correlation(smarts, full), 3),
                      Table::num(sm_frac / n, 2)});
    }
    table.print(std::cout);
    std::printf(
        "\nBoth methodologies preserve configuration ranking (high "
        "correlation)\nwhile simulating a fraction of the instructions "
        "in detail -- the paper's\nargument that sampling is orthogonal "
        "to, and composable with, predictive\nmodelling "
        "(Section 9.2).\n");
    return 0;
}
