/**
 * @file
 * Serving front-end latency/soak benchmark: request latency quantiles
 * and sustained throughput of the async ingest path (MPSC ring +
 * drainer + SIMD batch kernels) under concurrent producers, with
 * model hot-swaps published mid-run.
 *
 * This is the CI "serve-soak" gate: producers stream single-point
 * requests through PredictionService::submit for a fixed wall-clock
 * window while a swapper thread publishes fresh model versions; the
 * run fails if any accepted request is lost, if a producer ever
 * observes the served version moving backwards, or if throughput
 * falls below a conservative floor. The regression checker
 * (tools/ci/check_bench_regression.py) then gates the recorded
 * numbers against bench/baseline.json -- floors for throughput,
 * *ceilings* for the latency quantiles.
 *
 * Latency quantiles come from the service's exact-sample reservoir
 * (serve/request-latency); with ACDSE_OBS=OFF they read zero and only
 * the throughput floor gates (the CI job builds with OBS on).
 *
 * Environment:
 *   ACDSE_SERVE_SOAK_MS        measured window per producer (default
 *                              2000)
 *   ACDSE_SERVE_SOAK_PRODUCERS producer threads (default 2)
 *   ACDSE_SERVE_SOAK_SWAPS     hot-swaps spread across the window
 *                              (default 4; 0 disables swapping)
 *   ACDSE_SERVE_BENCH_MODELS   ensemble size (default 8)
 *   ACDSE_BENCH_JSON           output path (default
 *                              BENCH_serve_latency.json)
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "arch/design_space.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "obs/stats_export.hh"
#include "serve/prediction_service.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

/** A smooth positive analytic "program" over the design space. */
double
syntheticMetric(const MicroarchConfig &config, double wide, double mem)
{
    return 1000.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           20000.0 / std::sqrt(static_cast<double>(config.robSize()));
}

/** Build a trained two-metric artifact without any simulation. */
ModelArtifact
syntheticArtifact(std::size_t num_models, double scale)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 1);
    const auto responses = DesignSpace::sampleValidConfigs(32, 2);

    ModelArtifact artifact;
    artifact.setTag("bench_serve_latency synthetic");
    for (std::size_t m = 0; m < 2; ++m) {
        std::vector<ProgramTrainingSet> sets(num_models);
        for (std::size_t j = 0; j < num_models; ++j) {
            const double wide =
                scale * (0.5 + 0.25 * static_cast<double>(j + m));
            const double mem = 2.0 - 0.15 * static_cast<double>(j);
            // snprintf, not string concatenation:
            // `"p" + std::to_string(j)` trips a GCC 12 -O3 -Wrestrict
            // false positive (GCC PR105651).
            char name[32];
            std::snprintf(name, sizeof(name), "p%zu", j);
            sets[j].name = name;
            sets[j].configs = train;
            for (const auto &config : train)
                sets[j].values.push_back(
                    syntheticMetric(config, wide, mem));
        }
        ArchitectureCentricPredictor predictor;
        predictor.trainOffline(sets);
        std::vector<double> response_values;
        for (const auto &config : responses)
            response_values.push_back(
                syntheticMetric(config, scale, 1.0));
        predictor.fitResponses(responses, response_values);
        artifact.add(static_cast<Metric>(m), std::move(predictor));
    }
    return artifact;
}

struct ProducerResult
{
    std::uint64_t completed = 0;
    std::uint64_t versionRegressions = 0;
    std::uint64_t lostRows = 0; //!< rows left NaN after wait()
};

/**
 * One producer: stream flights of requests for the soak window,
 * checking completion and per-producer version monotonicity.
 */
ProducerResult
produce(PredictionService &service,
        const std::vector<MicroarchConfig> &queries,
        std::chrono::steady_clock::time_point deadline)
{
    constexpr std::size_t kFlight = 64;
    AsyncBatch batch(kFlight);
    ProducerResult result;
    std::uint64_t lastVersion = 0;
    std::size_t cursor = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        batch.reset();
        for (std::size_t i = 0; i < kFlight; ++i) {
            const auto &query = queries[cursor];
            cursor = (cursor + 1) % queries.size();
            // The soak's contract is loss-free serving: a full ring
            // backs off and retries (shed count still lands in
            // serve/shed for the report).
            while (service.submit(batch, query) !=
                   SubmitStatus::Accepted)
                std::this_thread::yield();
        }
        batch.wait();
        for (std::size_t i = 0; i < kFlight; ++i) {
            if (std::isnan(batch.rows()[i].get(Metric::Cycles)))
                ++result.lostRows;
            const std::uint64_t version = batch.versions()[i];
            if (version < lastVersion)
                ++result.versionRegressions;
            lastVersion = version;
        }
        result.completed += kFlight;
    }
    return result;
}

} // namespace

int
main()
{
    const std::size_t num_models =
        envSize("ACDSE_SERVE_BENCH_MODELS", 8);
    const std::size_t soakMs = envSize("ACDSE_SERVE_SOAK_MS", 2000);
    const std::size_t producers =
        envSize("ACDSE_SERVE_SOAK_PRODUCERS", 2);
    const std::size_t swaps = envSize("ACDSE_SERVE_SOAK_SWAPS", 4);

    std::printf("building synthetic artifacts (%zu-ANN ensembles)...\n",
                num_models);
    const ModelArtifact v1 = syntheticArtifact(num_models, 1.0);
    const ModelArtifact v2 = syntheticArtifact(num_models, 1.5);

    ServeOptions options = ServeOptions::fromEnvironment();
    PredictionService service(v1, options);
    const auto queries = DesignSpace::sampleValidConfigs(1024, 42);

    std::printf("soaking: %zu producers x %zu ms, %zu hot-swaps, ring "
                "of %zu\n",
                producers, soakMs, swaps, service.queueCapacity());

    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::milliseconds(soakMs);

    // The swapper republishes alternating artifacts at even intervals
    // across the window: every producer sees at least one version
    // change mid-flight.
    std::thread swapper([&] {
        for (std::size_t s = 0; s < swaps; ++s) {
            std::this_thread::sleep_until(
                start + std::chrono::milliseconds(
                            (s + 1) * soakMs / (swaps + 1)));
            service.publish(s % 2 == 0
                                ? syntheticArtifact(num_models, 1.5)
                                : syntheticArtifact(num_models, 1.0));
        }
    });

    std::vector<std::thread> threads;
    std::vector<ProducerResult> results(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            results[p] = produce(service, queries, deadline);
        });
    }
    for (auto &thread : threads)
        thread.join();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    swapper.join();

    std::uint64_t completed = 0, regressions = 0, lost = 0;
    for (const ProducerResult &result : results) {
        completed += result.completed;
        regressions += result.versionRegressions;
        lost += result.lostRows;
    }
    const double pps =
        seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
    const double p50Us = service.requestLatencyQuantileMs(0.50) * 1e3;
    const double p99Us = service.requestLatencyQuantileMs(0.99) * 1e3;
    const double p999Us =
        service.requestLatencyQuantileMs(0.999) * 1e3;
    const ServiceStats stats = service.stats();

    std::printf("\n%llu requests in %.2f s: %.0f req/s\n",
                static_cast<unsigned long long>(completed), seconds,
                pps);
    std::printf("latency: p50 %.1f us, p99 %.1f us, p999 %.1f us "
                "(exact reservoir)\n",
                p50Us, p99Us, p999Us);
    std::printf("shed-and-retried: %llu; swaps: %llu (final version "
                "%llu)\n",
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(swaps),
                static_cast<unsigned long long>(
                    service.currentVersion()));

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_serve_latency.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("serve_latency")
        .key("producers").value(static_cast<std::uint64_t>(producers))
        .key("soak_ms").value(static_cast<std::uint64_t>(soakMs))
        .key("swaps").value(static_cast<std::uint64_t>(swaps))
        .key("metrics").beginObject()
        .key("serve_latency_pps").value(pps)
        .key("serve_latency_p50_us").value(p50Us)
        .key("serve_latency_p99_us").value(p99Us)
        .key("serve_latency_p999_us").value(p999Us)
        .key("serve_latency_shed").value(
            static_cast<double>(stats.rejected))
        .endObject();
    json.key("stages");
    obs::writeStagesJson(json, service.statsSnapshot());
    json.endObject();
    writeTextAtomic(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    // Hard correctness gates: the soak is only a latency number if
    // serving stayed loss-free and monotone across the swaps.
    if (lost != 0) {
        std::printf("FAIL: %llu accepted requests came back NaN\n",
                    static_cast<unsigned long long>(lost));
        return 1;
    }
    if (regressions != 0) {
        std::printf("FAIL: served version went backwards %llu times\n",
                    static_cast<unsigned long long>(regressions));
        return 1;
    }
    // Loose in-binary floor (the ratcheted gate lives in
    // bench/baseline.json): any healthy build clears 5k req/s.
    if (pps < 5000.0) {
        std::printf("FAIL: %.0f req/s is below the sanity floor\n",
                    pps);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
