/**
 * @file
 * Serving hot-path benchmark: batched prediction throughput of the
 * PredictionService across batch sizes and thread counts.
 *
 * The artifact is synthetic (ANNs trained on analytic functions of the
 * configuration) so the benchmark measures pure serving cost --
 * feature-vector assembly, one forward pass per ensemble member per
 * metric, and the linear combination -- with no simulator or disk in
 * the loop. Numbers are single-point predictions per second; a
 * "prediction" here answers *all* metrics in the artifact for one
 * design point.
 *
 * Acceptance floor (ISSUE 1): >= 100k single-point predictions/sec
 * batched across the thread pool with the full 4-metric artifact.
 *
 * Environment: ACDSE_SERVE_BENCH_METRICS (default 4) limits the
 * artifact's metric count; ACDSE_SERVE_BENCH_MODELS (default 8) sets
 * the ensemble size; ACDSE_BENCH_JSON overrides the BENCH_serve.json
 * output path (schema acdse-bench-v1, read by
 * tools/ci/check_bench_regression.py).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/design_space.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "obs/stats_export.hh"
#include "serve/prediction_service.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

/** A smooth positive analytic "program" over the design space. */
double
syntheticMetric(const MicroarchConfig &config, double wide, double mem)
{
    return 1000.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           20000.0 / std::sqrt(static_cast<double>(config.robSize()));
}

/** Build a trained artifact without any simulation. */
ModelArtifact
syntheticArtifact(std::size_t num_metrics, std::size_t num_models)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 1);
    const auto responses = DesignSpace::sampleValidConfigs(32, 2);

    ModelArtifact artifact;
    artifact.setTag("bench_serve_throughput synthetic");
    for (std::size_t m = 0; m < num_metrics; ++m) {
        std::vector<ProgramTrainingSet> sets(num_models);
        for (std::size_t j = 0; j < num_models; ++j) {
            const double wide = 0.5 + 0.25 * static_cast<double>(j + m);
            const double mem = 2.0 - 0.15 * static_cast<double>(j);
            // snprintf, not string concatenation:
            // `"p" + std::to_string(j)` trips a GCC 12 -O3 -Wrestrict
            // false positive (GCC PR105651).
            char name[32];
            std::snprintf(name, sizeof(name), "p%zu", j);
            sets[j].name = name;
            sets[j].configs = train;
            for (const auto &config : train)
                sets[j].values.push_back(
                    syntheticMetric(config, wide, mem));
        }
        ArchitectureCentricPredictor predictor;
        predictor.trainOffline(sets);
        std::vector<double> response_values;
        for (const auto &config : responses)
            response_values.push_back(
                syntheticMetric(config, 1.0, 1.0));
        predictor.fitResponses(responses, response_values);
        artifact.add(static_cast<Metric>(m), std::move(predictor));
    }
    return artifact;
}

/**
 * Run one (threads, batch) cell and return points/second. Timed with
 * a local clock (not the service's own counters) so the measurement
 * also works -- and the floors still gate -- in ACDSE_OBS=OFF builds.
 * The cell's serve-stage metrics are folded into @p stages.
 */
double
measure(const ModelArtifact &artifact, std::size_t threads,
        const std::vector<MicroarchConfig> &queries, std::size_t batch,
        obs::Snapshot &stages)
{
    ServeOptions options;
    options.threads = threads;
    // Measure the pool even for small batches.
    options.inlineBelow = threads > 1 ? 0 : queries.size();
    PredictionService service(artifact, options);

    // One warm-up pass, then the measured passes.
    std::vector<MicroarchConfig> slice(
        queries.begin(),
        queries.begin() +
            static_cast<std::ptrdiff_t>(std::min(batch, queries.size())));
    service.predict(slice);
    service.resetStats();

    std::size_t points = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t offset = 0; offset + batch <= queries.size();
         offset += batch) {
        slice.assign(queries.begin() + static_cast<std::ptrdiff_t>(offset),
                     queries.begin() +
                         static_cast<std::ptrdiff_t>(offset + batch));
        service.predict(slice);
        points += slice.size();
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    stages.merge(service.statsSnapshot());
    return seconds > 0.0 ? static_cast<double>(points) / seconds : 0.0;
}

} // namespace

int
main()
{
    const std::size_t num_metrics =
        std::min<std::size_t>(envSize("ACDSE_SERVE_BENCH_METRICS", 4),
                              kNumMetrics);
    const std::size_t num_models = envSize("ACDSE_SERVE_BENCH_MODELS", 8);

    std::printf("building synthetic artifact (%zu metrics x %zu-ANN "
                "ensembles)...\n",
                num_metrics, num_models);
    const ModelArtifact artifact =
        syntheticArtifact(num_metrics, num_models);

    const auto queries = DesignSpace::sampleValidConfigs(32768, 42);
    const std::size_t hw = std::thread::hardware_concurrency();

    std::printf("\nserving throughput, %zu query points per cell "
                "(single-point predictions/s, all %zu metrics each)\n\n",
                queries.size(), num_metrics);
    std::printf("%-10s", "batch");
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, hw}) {
        std::printf("  %7zu thr", threads);
    }
    std::printf("\n");

    const obs::Snapshot global_before =
        obs::Registry::global().snapshot();
    obs::Snapshot stages; //!< accumulated serve/ metrics (per-service)
    double best = 0.0;
    double best_t1 = 0.0;
    double best_hw = 0.0;
    for (std::size_t batch : {256u, 1024u, 4096u, 16384u}) {
        std::printf("%-10zu", static_cast<std::size_t>(batch));
        for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, hw}) {
            const double pps =
                measure(artifact, threads, queries, batch, stages);
            best = std::max(best, pps);
            if (threads == 1)
                best_t1 = std::max(best_t1, pps);
            if (threads == hw)
                best_hw = std::max(best_hw, pps);
            std::printf("  %11.0f", pps);
        }
        std::printf("\n");
    }

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_serve.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("serve")
        .key("hardware_concurrency").value(
            static_cast<std::uint64_t>(hw))
        .key("num_metrics").value(
            static_cast<std::uint64_t>(num_metrics))
        .key("num_models").value(
            static_cast<std::uint64_t>(num_models))
        .key("metrics").beginObject()
        .key("serve_best_pps").value(best)
        .key("serve_best_pps_t1").value(best_t1)
        .key("serve_best_pps_tmax").value(best_hw)
        .endObject();
    // Per-stage breakdown (additive: the regression checker only reads
    // "metrics"): pool/ stages from the measurement interval of the
    // global registry, serve/ stages accumulated across the services.
    stages.merge(obs::diff(global_before,
                           obs::Registry::global().snapshot()));
    json.key("stages");
    obs::writeStagesJson(json, stages);
    json.endObject();
    writeTextAtomic(out, json.str());
    std::printf("\nwrote %s\n", out.c_str());

    std::printf("\nbest: %.0f predictions/s (target: >= 100000)\n", best);
    if (best < 100000.0) {
        std::printf("FAIL: below the serving throughput floor\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
