/**
 * @file
 * Reproduces Table 1 (the varied parameters with ranges and value
 * counts plus the baseline), Table 2 (fixed and width-scaled
 * parameters) and the Section 3.1 design-space size numbers.
 */

#include <cinttypes>
#include <iostream>
#include <cstdio>
#include <sstream>

#include "arch/design_space.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"

using namespace acdse;

namespace
{

void
printTable1()
{
    std::printf("--- Table 1: varied microarchitectural parameters ---\n");
    Table table({"Parameter", "Values", "Range", "Num", "Baseline"});
    for (const auto &spec : paramSpecs()) {
        std::ostringstream range;
        range << spec.min() << " .. " << spec.max();
        if (spec.unit[0] != '\0')
            range << ' ' << spec.unit;
        std::ostringstream values;
        for (std::size_t i = 0; i < spec.count(); ++i) {
            if (i)
                values << ',';
            values << spec.values[i];
        }
        table.addRow({spec.name, values.str(), range.str(),
                      Table::num(static_cast<long long>(spec.count())),
                      Table::num(static_cast<long long>(spec.baseline))});
    }
    table.print(std::cout);
}

void
printTable2()
{
    const FixedParams &fp = fixedParams();
    std::printf("\n--- Table 2a: fixed parameters ---\n");
    Table fixed({"Parameter", "Value"});
    fixed.addRow({"L1I assoc", Table::num((long long)fp.il1Assoc)});
    fixed.addRow({"L1D assoc", Table::num((long long)fp.dl1Assoc)});
    fixed.addRow({"L2 assoc", Table::num((long long)fp.l2Assoc)});
    fixed.addRow({"L1 line (B)", Table::num((long long)fp.l1LineBytes)});
    fixed.addRow({"L2 line (B)", Table::num((long long)fp.l2LineBytes)});
    fixed.addRow(
        {"Memory latency (cyc)", Table::num((long long)fp.memLatency)});
    fixed.addRow({"Front-end stages",
                  Table::num((long long)fp.frontEndStages)});
    fixed.addRow({"Mispredict redirect (cyc)",
                  Table::num((long long)fp.mispredictRedirect)});
    fixed.addRow(
        {"FP div latency (cyc)", Table::num((long long)fp.fpDivLatency)});
    fixed.print(std::cout);

    std::printf("\n--- Table 2b: functional units scale with width ---\n");
    Table fus({"Width", "IntALU", "IntMul", "FpALU", "FpMul/Div"});
    for (int width : paramSpec(Param::Width).values) {
        const FunctionalUnitCounts fu = functionalUnitsForWidth(width);
        fus.addRow({Table::num((long long)width),
                    Table::num((long long)fu.intAlu),
                    Table::num((long long)fu.intMul),
                    Table::num((long long)fu.fpAlu),
                    Table::num((long long)fu.fpMulDiv)});
    }
    fus.print(std::cout);
}

void
printSpaceSize()
{
    std::printf("\n--- Section 3.1: design-space size ---\n");
    const std::uint64_t raw = DesignSpace::totalRawPoints();
    const std::uint64_t valid = DesignSpace::totalValidPoints();
    std::printf("raw cross product : %" PRIu64 "  (paper: ~63 billion)\n",
                raw);
    std::printf("after filtering   : %" PRIu64
                "  (paper: ~18 billion; our published constraint list "
                "is shorter, see DESIGN.md Section 5)\n",
                valid);
    std::printf("valid fraction    : %.3f\n",
                static_cast<double>(valid) / static_cast<double>(raw));
}

} // namespace

int
main()
{
    bench::banner("Table 1 / Table 2 / Section 3.1",
                  "design-space definition and size");
    printTable1();
    printTable2();
    printSpaceSize();
    return 0;
}
