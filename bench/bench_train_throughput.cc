/**
 * @file
 * Training/evaluation throughput benchmark for the shared thread pool:
 * programs-trained per second (warmProgramModels) and leave-one-out
 * folds per second (evaluateArchCentricSweep) at 1, 2 and N threads.
 *
 * The campaign is a small MiBench-style workload computed once into a
 * disk cache, so the benchmark measures the parallelised ML pipeline
 * (per-program ANN training, response fitting, prediction scoring),
 * not the simulator. Every cell runs the *same* work with the same
 * seeds on a fresh Evaluator; only the thread count differs, and the
 * determinism contract (tests/test_parallel_determinism.cc) guarantees
 * identical numerical results at every point of the table.
 *
 * Emits BENCH_train.json (schema acdse-bench-v1) for
 * tools/ci/check_bench_regression.py; override the output path with
 * ACDSE_BENCH_JSON.
 *
 * Acceptance gate (ISSUE 3): on hardware with >= 8 cores the N-thread
 * leave-one-out sweep must be >= 3x faster than the 1-thread sweep.
 * The gate is skipped (reported, not enforced) on smaller machines.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"
#include "base/parse.hh"
#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "core/evaluation.hh"
#include "ml/matrix.hh"
#include "obs/stats_export.hh"

using namespace acdse;

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *value = std::getenv(name); value && *value)
        return static_cast<std::size_t>(parseU64OrDie(name, value));
    return fallback;
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

constexpr std::size_t kTrainT = 48; //!< training sims per program
constexpr std::size_t kRespR = 16;  //!< responses per fold

/** All campaign program indices. */
std::vector<std::size_t>
allPrograms(const Campaign &campaign)
{
    std::vector<std::size_t> idx(campaign.programs().size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    return idx;
}

/**
 * Programs-trained/s at @p threads: best of @p reps timed
 * warmProgramModels calls, each on a fresh (cold-cache) Evaluator.
 */
double
measureTraining(Campaign &campaign, std::size_t threads,
                std::size_t reps)
{
    const auto programs = allPrograms(campaign);
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        Evaluator evaluator(campaign, {}, threads);
        const auto start = std::chrono::steady_clock::now();
        evaluator.warmProgramModels(programs, Metric::Cycles, kTrainT,
                                    0x7121'0000ULL + r);
        best = std::max(best, static_cast<double>(programs.size()) /
                                  seconds(start));
    }
    return best;
}

/**
 * Leave-one-out folds/s at @p threads: the full cold sweep -- ANN
 * training for every program (the dominant, parallelised cost), then
 * response fitting and scoring over every held-out configuration --
 * on a fresh Evaluator each repeat. Best of @p reps.
 */
double
measureLooSweep(Campaign &campaign, std::size_t threads,
                std::size_t reps)
{
    const auto programs = allPrograms(campaign);
    double best = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        Evaluator evaluator(campaign, {}, threads);
        const auto start = std::chrono::steady_clock::now();
        evaluator.evaluateArchCentricSweep(programs, Metric::Cycles,
                                           kTrainT, kRespR,
                                           0x7121'1000ULL + r);
        best = std::max(best, static_cast<double>(programs.size()) /
                                  seconds(start));
    }
    return best;
}

/**
 * Dense matmul throughput (multiply + gram of a 256x64 matrix, the
 * shapes the regression solves build): iterations/s, best of @p reps.
 * Tracks the ml/matrix kernels after their zero-skip branches were
 * dropped in favour of straight-line vectorisable loops.
 */
double
measureMatmul(std::size_t reps)
{
    Rng rng(0x3a7'0001ULL);
    Matrix a(256, 64);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c)
            a(r, c) = rng.nextDouble() * 2.0 - 1.0;
    }
    const Matrix at = a.transposed();

    double best = 0.0;
    double sink = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        constexpr std::size_t kIters = 40;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kIters; ++i) {
            const Matrix product = at.multiply(a);
            const Matrix g = a.gram();
            sink += product(0, 0) + g(0, 0);
        }
        best = std::max(best,
                        static_cast<double>(kIters) / seconds(start));
    }
    if (sink == 0.0) // keep the products observable
        std::printf("(matmul sink: %f)\n", sink);
    return best;
}

} // namespace

int
main()
{
    const std::size_t max_threads = ThreadPool::defaultThreads();
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t reps = envSize("ACDSE_BENCH_REPEATS", 3);

    const std::vector<std::string> programs{
        "crc32", "sha",   "adpcm",    "stringsearch",
        "qsort", "fft",   "dijkstra", "bitcount"};
    CampaignOptions options;
    options.numConfigs = 96;
    options.traceLength = 2000;
    options.warmupInstructions = 400;
    options.quiet = true;
    options.cacheDir = (std::filesystem::temp_directory_path() /
                        "acdse_bench_train_cache")
                           .string();
    std::filesystem::create_directories(options.cacheDir);

    std::printf("computing %zu-program campaign (cache: %s)...\n",
                programs.size(), options.cacheDir.c_str());
    const obs::Snapshot obs_before =
        obs::Registry::global().snapshot();
    Campaign campaign(programs, options);
    campaign.ensureComputed();

    std::printf("\ntraining/evaluation throughput, best of %zu "
                "(T=%zu, R=%zu, %zu configs, max threads %zu)\n\n",
                reps, kTrainT, kRespR, campaign.configs().size(),
                max_threads);
    std::printf("%-10s  %18s  %18s\n", "threads", "train programs/s",
                "LOO folds/s");

    std::vector<std::size_t> counts{1};
    if (max_threads >= 2)
        counts.push_back(2);
    if (max_threads > 2)
        counts.push_back(max_threads);
    double train_t1 = 0.0, train_t2 = 0.0, train_tmax = 0.0;
    double loo_t1 = 0.0, loo_tmax = 0.0;
    for (std::size_t threads : counts) {
        const double train = measureTraining(campaign, threads, reps);
        const double loo = measureLooSweep(campaign, threads, reps);
        std::printf("%-10zu  %18.2f  %18.2f\n", threads, train, loo);
        if (threads == 1) {
            train_t1 = train;
            loo_t1 = loo;
        }
        if (threads == 2)
            train_t2 = train;
        if (threads == counts.back()) {
            train_tmax = train;
            loo_tmax = loo;
        }
    }
    if (train_t2 == 0.0)
        train_t2 = train_tmax; // max_threads < 2: only one column ran
    const double speedup = loo_t1 > 0.0 ? loo_tmax / loo_t1 : 1.0;
    std::printf("\nLOO sweep speedup at %zu threads: %.2fx\n",
                counts.back(), speedup);

    const double matmul = measureMatmul(reps);
    std::printf("dense matmul (256x64 multiply+gram): %.1f iters/s\n",
                matmul);

    const std::string out = [] {
        if (const char *value = std::getenv("ACDSE_BENCH_JSON");
            value && *value)
            return std::string(value);
        return std::string("BENCH_train.json");
    }();
    JsonWriter json;
    json.beginObject()
        .key("schema").value("acdse-bench-v1")
        .key("bench").value("train")
        .key("threads_max").value(static_cast<std::uint64_t>(
            counts.back()))
        .key("hardware_concurrency").value(
            static_cast<std::uint64_t>(hw))
        .key("metrics").beginObject()
        .key("train_programs_per_s_t1").value(train_t1)
        .key("train_programs_per_s_t2").value(train_t2)
        .key("train_programs_per_s_tmax").value(train_tmax)
        .key("loo_folds_per_s_t1").value(loo_t1)
        .key("loo_folds_per_s_tmax").value(loo_tmax)
        .key("loo_speedup_tmax_over_t1").value(speedup)
        .key("matmul_iters_per_s").value(matmul)
        .endObject();
    // Additive per-stage breakdown (campaign/train/sweep/pool) over
    // the whole run; the regression checker only reads "metrics".
    json.key("stages");
    obs::writeStagesJson(
        json,
        obs::diff(obs_before, obs::Registry::global().snapshot()));
    json.endObject();
    writeTextAtomic(out, json.str());
    std::printf("wrote %s\n", out.c_str());

    // The 3x parallel-speedup gate only means something when the
    // machine actually has the cores; on small runners we report only.
    if (hw >= 8 && counts.back() >= 8) {
        if (speedup < 3.0) {
            std::printf("FAIL: %zu-thread LOO speedup %.2fx below the "
                        "3x floor\n",
                        counts.back(), speedup);
            return 1;
        }
        std::printf("PASS (speedup floor 3x enforced)\n");
    } else {
        std::printf("PASS (speedup floor skipped: %zu hardware "
                    "threads)\n",
                    hw);
    }
    return 0;
}
