file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_based.dir/bench_feature_based.cc.o"
  "CMakeFiles/bench_feature_based.dir/bench_feature_based.cc.o.d"
  "bench_feature_based"
  "bench_feature_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
