# Empty compiler generated dependencies file for bench_feature_based.
# This may be replaced when dependencies are built.
