file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_param_impact_cycles.dir/bench_fig02_param_impact_cycles.cc.o"
  "CMakeFiles/bench_fig02_param_impact_cycles.dir/bench_fig02_param_impact_cycles.cc.o.d"
  "bench_fig02_param_impact_cycles"
  "bench_fig02_param_impact_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_param_impact_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
