# Empty compiler generated dependencies file for bench_fig02_param_impact_cycles.
# This may be replaced when dependencies are built.
