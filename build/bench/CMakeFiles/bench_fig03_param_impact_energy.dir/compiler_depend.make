# Empty compiler generated dependencies file for bench_fig03_param_impact_energy.
# This may be replaced when dependencies are built.
