file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_program_variation.dir/bench_fig04_program_variation.cc.o"
  "CMakeFiles/bench_fig04_program_variation.dir/bench_fig04_program_variation.cc.o.d"
  "bench_fig04_program_variation"
  "bench_fig04_program_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_program_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
