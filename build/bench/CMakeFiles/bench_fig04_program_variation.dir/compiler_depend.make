# Empty compiler generated dependencies file for bench_fig04_program_variation.
# This may be replaced when dependencies are built.
