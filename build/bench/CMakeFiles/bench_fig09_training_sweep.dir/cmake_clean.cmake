file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_training_sweep.dir/bench_fig09_training_sweep.cc.o"
  "CMakeFiles/bench_fig09_training_sweep.dir/bench_fig09_training_sweep.cc.o.d"
  "bench_fig09_training_sweep"
  "bench_fig09_training_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_training_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
