# Empty dependencies file for bench_fig10_response_sweep.
# This may be replaced when dependencies are built.
