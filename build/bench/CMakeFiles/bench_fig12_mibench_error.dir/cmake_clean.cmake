file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mibench_error.dir/bench_fig12_mibench_error.cc.o"
  "CMakeFiles/bench_fig12_mibench_error.dir/bench_fig12_mibench_error.cc.o.d"
  "bench_fig12_mibench_error"
  "bench_fig12_mibench_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mibench_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
