# Empty compiler generated dependencies file for bench_fig12_mibench_error.
# This may be replaced when dependencies are built.
