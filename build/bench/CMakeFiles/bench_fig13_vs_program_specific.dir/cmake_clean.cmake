file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_vs_program_specific.dir/bench_fig13_vs_program_specific.cc.o"
  "CMakeFiles/bench_fig13_vs_program_specific.dir/bench_fig13_vs_program_specific.cc.o.d"
  "bench_fig13_vs_program_specific"
  "bench_fig13_vs_program_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_vs_program_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
