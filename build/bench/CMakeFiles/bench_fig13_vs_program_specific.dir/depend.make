# Empty dependencies file for bench_fig13_vs_program_specific.
# This may be replaced when dependencies are built.
