file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_training_programs.dir/bench_fig14_training_programs.cc.o"
  "CMakeFiles/bench_fig14_training_programs.dir/bench_fig14_training_programs.cc.o.d"
  "bench_fig14_training_programs"
  "bench_fig14_training_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_training_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
