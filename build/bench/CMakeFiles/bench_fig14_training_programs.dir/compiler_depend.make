# Empty compiler generated dependencies file for bench_fig14_training_programs.
# This may be replaced when dependencies are built.
