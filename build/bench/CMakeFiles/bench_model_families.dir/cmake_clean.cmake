file(REMOVE_RECURSE
  "CMakeFiles/bench_model_families.dir/bench_model_families.cc.o"
  "CMakeFiles/bench_model_families.dir/bench_model_families.cc.o.d"
  "bench_model_families"
  "bench_model_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
