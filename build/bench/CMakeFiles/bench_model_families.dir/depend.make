# Empty dependencies file for bench_model_families.
# This may be replaced when dependencies are built.
