file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_methods.dir/bench_sampling_methods.cc.o"
  "CMakeFiles/bench_sampling_methods.dir/bench_sampling_methods.cc.o.d"
  "bench_sampling_methods"
  "bench_sampling_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
