# Empty compiler generated dependencies file for bench_sampling_methods.
# This may be replaced when dependencies are built.
