file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_design_space.dir/bench_table1_design_space.cc.o"
  "CMakeFiles/bench_table1_design_space.dir/bench_table1_design_space.cc.o.d"
  "bench_table1_design_space"
  "bench_table1_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
