file(REMOVE_RECURSE
  "CMakeFiles/benchmark_similarity.dir/benchmark_similarity.cpp.o"
  "CMakeFiles/benchmark_similarity.dir/benchmark_similarity.cpp.o.d"
  "benchmark_similarity"
  "benchmark_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
