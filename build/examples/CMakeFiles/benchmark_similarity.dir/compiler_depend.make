# Empty compiler generated dependencies file for benchmark_similarity.
# This may be replaced when dependencies are built.
