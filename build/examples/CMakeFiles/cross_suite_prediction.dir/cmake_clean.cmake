file(REMOVE_RECURSE
  "CMakeFiles/cross_suite_prediction.dir/cross_suite_prediction.cpp.o"
  "CMakeFiles/cross_suite_prediction.dir/cross_suite_prediction.cpp.o.d"
  "cross_suite_prediction"
  "cross_suite_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_suite_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
