# Empty dependencies file for cross_suite_prediction.
# This may be replaced when dependencies are built.
