
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/design_space_explorer.cpp" "examples/CMakeFiles/design_space_explorer.dir/design_space_explorer.cpp.o" "gcc" "examples/CMakeFiles/design_space_explorer.dir/design_space_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acdse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acdse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/acdse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acdse_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
