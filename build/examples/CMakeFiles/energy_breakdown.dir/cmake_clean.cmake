file(REMOVE_RECURSE
  "CMakeFiles/energy_breakdown.dir/energy_breakdown.cpp.o"
  "CMakeFiles/energy_breakdown.dir/energy_breakdown.cpp.o.d"
  "energy_breakdown"
  "energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
