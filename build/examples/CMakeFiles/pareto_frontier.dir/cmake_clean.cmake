file(REMOVE_RECURSE
  "CMakeFiles/pareto_frontier.dir/pareto_frontier.cpp.o"
  "CMakeFiles/pareto_frontier.dir/pareto_frontier.cpp.o.d"
  "pareto_frontier"
  "pareto_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
