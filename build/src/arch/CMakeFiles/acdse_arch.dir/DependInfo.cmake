
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/design_space.cc" "src/arch/CMakeFiles/acdse_arch.dir/design_space.cc.o" "gcc" "src/arch/CMakeFiles/acdse_arch.dir/design_space.cc.o.d"
  "/root/repo/src/arch/microarch_config.cc" "src/arch/CMakeFiles/acdse_arch.dir/microarch_config.cc.o" "gcc" "src/arch/CMakeFiles/acdse_arch.dir/microarch_config.cc.o.d"
  "/root/repo/src/arch/parameter.cc" "src/arch/CMakeFiles/acdse_arch.dir/parameter.cc.o" "gcc" "src/arch/CMakeFiles/acdse_arch.dir/parameter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
