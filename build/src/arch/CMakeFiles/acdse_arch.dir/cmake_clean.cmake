file(REMOVE_RECURSE
  "CMakeFiles/acdse_arch.dir/design_space.cc.o"
  "CMakeFiles/acdse_arch.dir/design_space.cc.o.d"
  "CMakeFiles/acdse_arch.dir/microarch_config.cc.o"
  "CMakeFiles/acdse_arch.dir/microarch_config.cc.o.d"
  "CMakeFiles/acdse_arch.dir/parameter.cc.o"
  "CMakeFiles/acdse_arch.dir/parameter.cc.o.d"
  "libacdse_arch.a"
  "libacdse_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
