file(REMOVE_RECURSE
  "libacdse_arch.a"
)
