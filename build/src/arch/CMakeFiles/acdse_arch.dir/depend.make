# Empty dependencies file for acdse_arch.
# This may be replaced when dependencies are built.
