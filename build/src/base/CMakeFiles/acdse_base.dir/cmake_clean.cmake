file(REMOVE_RECURSE
  "CMakeFiles/acdse_base.dir/csv.cc.o"
  "CMakeFiles/acdse_base.dir/csv.cc.o.d"
  "CMakeFiles/acdse_base.dir/rng.cc.o"
  "CMakeFiles/acdse_base.dir/rng.cc.o.d"
  "CMakeFiles/acdse_base.dir/statistics.cc.o"
  "CMakeFiles/acdse_base.dir/statistics.cc.o.d"
  "CMakeFiles/acdse_base.dir/table.cc.o"
  "CMakeFiles/acdse_base.dir/table.cc.o.d"
  "libacdse_base.a"
  "libacdse_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
