file(REMOVE_RECURSE
  "libacdse_base.a"
)
