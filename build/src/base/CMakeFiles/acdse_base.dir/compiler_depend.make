# Empty compiler generated dependencies file for acdse_base.
# This may be replaced when dependencies are built.
