
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/architecture_centric_predictor.cc" "src/core/CMakeFiles/acdse_core.dir/architecture_centric_predictor.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/architecture_centric_predictor.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/acdse_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/characterisation.cc" "src/core/CMakeFiles/acdse_core.dir/characterisation.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/characterisation.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/acdse_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/feature_based_predictor.cc" "src/core/CMakeFiles/acdse_core.dir/feature_based_predictor.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/feature_based_predictor.cc.o.d"
  "/root/repo/src/core/program_specific_predictor.cc" "src/core/CMakeFiles/acdse_core.dir/program_specific_predictor.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/program_specific_predictor.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/acdse_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/acdse_core.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/acdse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acdse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acdse_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
