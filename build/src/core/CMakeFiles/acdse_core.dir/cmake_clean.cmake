file(REMOVE_RECURSE
  "CMakeFiles/acdse_core.dir/architecture_centric_predictor.cc.o"
  "CMakeFiles/acdse_core.dir/architecture_centric_predictor.cc.o.d"
  "CMakeFiles/acdse_core.dir/campaign.cc.o"
  "CMakeFiles/acdse_core.dir/campaign.cc.o.d"
  "CMakeFiles/acdse_core.dir/characterisation.cc.o"
  "CMakeFiles/acdse_core.dir/characterisation.cc.o.d"
  "CMakeFiles/acdse_core.dir/evaluation.cc.o"
  "CMakeFiles/acdse_core.dir/evaluation.cc.o.d"
  "CMakeFiles/acdse_core.dir/feature_based_predictor.cc.o"
  "CMakeFiles/acdse_core.dir/feature_based_predictor.cc.o.d"
  "CMakeFiles/acdse_core.dir/program_specific_predictor.cc.o"
  "CMakeFiles/acdse_core.dir/program_specific_predictor.cc.o.d"
  "CMakeFiles/acdse_core.dir/search.cc.o"
  "CMakeFiles/acdse_core.dir/search.cc.o.d"
  "libacdse_core.a"
  "libacdse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
