file(REMOVE_RECURSE
  "libacdse_core.a"
)
