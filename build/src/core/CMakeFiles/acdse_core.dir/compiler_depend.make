# Empty compiler generated dependencies file for acdse_core.
# This may be replaced when dependencies are built.
