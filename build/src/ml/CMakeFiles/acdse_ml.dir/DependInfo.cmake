
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/hierarchical.cc" "src/ml/CMakeFiles/acdse_ml.dir/hierarchical.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/hierarchical.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/acdse_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/ml/CMakeFiles/acdse_ml.dir/linear_regression.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/linear_regression.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/acdse_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/acdse_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/rbf.cc" "src/ml/CMakeFiles/acdse_ml.dir/rbf.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/rbf.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/acdse_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/spline.cc" "src/ml/CMakeFiles/acdse_ml.dir/spline.cc.o" "gcc" "src/ml/CMakeFiles/acdse_ml.dir/spline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
