file(REMOVE_RECURSE
  "CMakeFiles/acdse_ml.dir/hierarchical.cc.o"
  "CMakeFiles/acdse_ml.dir/hierarchical.cc.o.d"
  "CMakeFiles/acdse_ml.dir/kmeans.cc.o"
  "CMakeFiles/acdse_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/acdse_ml.dir/linear_regression.cc.o"
  "CMakeFiles/acdse_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/acdse_ml.dir/matrix.cc.o"
  "CMakeFiles/acdse_ml.dir/matrix.cc.o.d"
  "CMakeFiles/acdse_ml.dir/mlp.cc.o"
  "CMakeFiles/acdse_ml.dir/mlp.cc.o.d"
  "CMakeFiles/acdse_ml.dir/rbf.cc.o"
  "CMakeFiles/acdse_ml.dir/rbf.cc.o.d"
  "CMakeFiles/acdse_ml.dir/scaler.cc.o"
  "CMakeFiles/acdse_ml.dir/scaler.cc.o.d"
  "CMakeFiles/acdse_ml.dir/spline.cc.o"
  "CMakeFiles/acdse_ml.dir/spline.cc.o.d"
  "libacdse_ml.a"
  "libacdse_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
