file(REMOVE_RECURSE
  "libacdse_ml.a"
)
