# Empty dependencies file for acdse_ml.
# This may be replaced when dependencies are built.
