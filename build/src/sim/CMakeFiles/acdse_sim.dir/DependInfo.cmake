
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_predictor.cc" "src/sim/CMakeFiles/acdse_sim.dir/branch_predictor.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/branch_predictor.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/acdse_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cacti.cc" "src/sim/CMakeFiles/acdse_sim.dir/cacti.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/cacti.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/acdse_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/acdse_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/first_order.cc" "src/sim/CMakeFiles/acdse_sim.dir/first_order.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/first_order.cc.o.d"
  "/root/repo/src/sim/sampled_sim.cc" "src/sim/CMakeFiles/acdse_sim.dir/sampled_sim.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/sampled_sim.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/acdse_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/acdse_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/acdse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acdse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acdse_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
