file(REMOVE_RECURSE
  "CMakeFiles/acdse_sim.dir/branch_predictor.cc.o"
  "CMakeFiles/acdse_sim.dir/branch_predictor.cc.o.d"
  "CMakeFiles/acdse_sim.dir/cache.cc.o"
  "CMakeFiles/acdse_sim.dir/cache.cc.o.d"
  "CMakeFiles/acdse_sim.dir/cacti.cc.o"
  "CMakeFiles/acdse_sim.dir/cacti.cc.o.d"
  "CMakeFiles/acdse_sim.dir/core.cc.o"
  "CMakeFiles/acdse_sim.dir/core.cc.o.d"
  "CMakeFiles/acdse_sim.dir/energy.cc.o"
  "CMakeFiles/acdse_sim.dir/energy.cc.o.d"
  "CMakeFiles/acdse_sim.dir/first_order.cc.o"
  "CMakeFiles/acdse_sim.dir/first_order.cc.o.d"
  "CMakeFiles/acdse_sim.dir/sampled_sim.cc.o"
  "CMakeFiles/acdse_sim.dir/sampled_sim.cc.o.d"
  "CMakeFiles/acdse_sim.dir/simulator.cc.o"
  "CMakeFiles/acdse_sim.dir/simulator.cc.o.d"
  "libacdse_sim.a"
  "libacdse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
