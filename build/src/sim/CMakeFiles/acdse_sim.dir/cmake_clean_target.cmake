file(REMOVE_RECURSE
  "libacdse_sim.a"
)
