# Empty dependencies file for acdse_sim.
# This may be replaced when dependencies are built.
