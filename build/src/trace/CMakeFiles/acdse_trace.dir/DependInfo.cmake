
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/simpoint.cc" "src/trace/CMakeFiles/acdse_trace.dir/simpoint.cc.o" "gcc" "src/trace/CMakeFiles/acdse_trace.dir/simpoint.cc.o.d"
  "/root/repo/src/trace/suites.cc" "src/trace/CMakeFiles/acdse_trace.dir/suites.cc.o" "gcc" "src/trace/CMakeFiles/acdse_trace.dir/suites.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/acdse_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/acdse_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_generator.cc" "src/trace/CMakeFiles/acdse_trace.dir/trace_generator.cc.o" "gcc" "src/trace/CMakeFiles/acdse_trace.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acdse_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
