file(REMOVE_RECURSE
  "CMakeFiles/acdse_trace.dir/simpoint.cc.o"
  "CMakeFiles/acdse_trace.dir/simpoint.cc.o.d"
  "CMakeFiles/acdse_trace.dir/suites.cc.o"
  "CMakeFiles/acdse_trace.dir/suites.cc.o.d"
  "CMakeFiles/acdse_trace.dir/trace.cc.o"
  "CMakeFiles/acdse_trace.dir/trace.cc.o.d"
  "CMakeFiles/acdse_trace.dir/trace_generator.cc.o"
  "CMakeFiles/acdse_trace.dir/trace_generator.cc.o.d"
  "libacdse_trace.a"
  "libacdse_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acdse_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
