file(REMOVE_RECURSE
  "libacdse_trace.a"
)
