# Empty dependencies file for acdse_trace.
# This may be replaced when dependencies are built.
