
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/acdse_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/acdse_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cacti.cc" "tests/CMakeFiles/acdse_tests.dir/test_cacti.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_cacti.cc.o.d"
  "/root/repo/tests/test_campaign.cc" "tests/CMakeFiles/acdse_tests.dir/test_campaign.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_campaign.cc.o.d"
  "/root/repo/tests/test_characterisation.cc" "tests/CMakeFiles/acdse_tests.dir/test_characterisation.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_characterisation.cc.o.d"
  "/root/repo/tests/test_core_sim.cc" "tests/CMakeFiles/acdse_tests.dir/test_core_sim.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_core_sim.cc.o.d"
  "/root/repo/tests/test_csv.cc" "tests/CMakeFiles/acdse_tests.dir/test_csv.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_csv.cc.o.d"
  "/root/repo/tests/test_design_space.cc" "tests/CMakeFiles/acdse_tests.dir/test_design_space.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_design_space.cc.o.d"
  "/root/repo/tests/test_energy_model.cc" "tests/CMakeFiles/acdse_tests.dir/test_energy_model.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_energy_model.cc.o.d"
  "/root/repo/tests/test_evaluation.cc" "tests/CMakeFiles/acdse_tests.dir/test_evaluation.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_evaluation.cc.o.d"
  "/root/repo/tests/test_feature_based.cc" "tests/CMakeFiles/acdse_tests.dir/test_feature_based.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_feature_based.cc.o.d"
  "/root/repo/tests/test_first_order.cc" "tests/CMakeFiles/acdse_tests.dir/test_first_order.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_first_order.cc.o.d"
  "/root/repo/tests/test_hierarchical.cc" "tests/CMakeFiles/acdse_tests.dir/test_hierarchical.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_hierarchical.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/acdse_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kmeans.cc" "tests/CMakeFiles/acdse_tests.dir/test_kmeans.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_kmeans.cc.o.d"
  "/root/repo/tests/test_linear_regression.cc" "tests/CMakeFiles/acdse_tests.dir/test_linear_regression.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_linear_regression.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/acdse_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/acdse_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mlp.cc" "tests/CMakeFiles/acdse_tests.dir/test_mlp.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_mlp.cc.o.d"
  "/root/repo/tests/test_parameter.cc" "tests/CMakeFiles/acdse_tests.dir/test_parameter.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_parameter.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/acdse_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_rbf_spline.cc" "tests/CMakeFiles/acdse_tests.dir/test_rbf_spline.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_rbf_spline.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/acdse_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sampled_sim.cc" "tests/CMakeFiles/acdse_tests.dir/test_sampled_sim.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_sampled_sim.cc.o.d"
  "/root/repo/tests/test_scaler.cc" "tests/CMakeFiles/acdse_tests.dir/test_scaler.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_scaler.cc.o.d"
  "/root/repo/tests/test_search.cc" "tests/CMakeFiles/acdse_tests.dir/test_search.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_search.cc.o.d"
  "/root/repo/tests/test_simpoint.cc" "tests/CMakeFiles/acdse_tests.dir/test_simpoint.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_simpoint.cc.o.d"
  "/root/repo/tests/test_statistics.cc" "tests/CMakeFiles/acdse_tests.dir/test_statistics.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_statistics.cc.o.d"
  "/root/repo/tests/test_suites_calibration.cc" "tests/CMakeFiles/acdse_tests.dir/test_suites_calibration.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_suites_calibration.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/acdse_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_trace_generator.cc" "tests/CMakeFiles/acdse_tests.dir/test_trace_generator.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_trace_generator.cc.o.d"
  "/root/repo/tests/test_umbrella.cc" "tests/CMakeFiles/acdse_tests.dir/test_umbrella.cc.o" "gcc" "tests/CMakeFiles/acdse_tests.dir/test_umbrella.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acdse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acdse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acdse_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/acdse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acdse_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/acdse_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
