# Empty dependencies file for acdse_tests.
# This may be replaced when dependencies are built.
