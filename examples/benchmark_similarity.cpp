/**
 * @file
 * Benchmark-suite analysis -- the paper's Section 4 / Section 8 use
 * case: measure how similar programs' design spaces are, print the
 * dendrogram, and pick a small representative training subset (the
 * paper shows 5 programs already give correlation > 0.85).
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/characterisation.hh"

using namespace acdse;

int
main()
{
    const Metric metric = Metric::Ed;
    Campaign &campaign = bench::standardCampaign();
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    std::vector<std::string> names;
    for (std::size_t p : spec)
        names.push_back(campaign.programs()[p]);

    // Distance matrix + dendrogram over SPEC CPU 2000 (ED metric).
    const auto dist = programDistanceMatrix(campaign, metric, spec);
    const Dendrogram tree = hierarchicalCluster(dist);

    std::printf("hierarchical clustering of SPEC CPU 2000 design "
                "spaces (%s):\n\n",
                metricName(metric));
    std::cout << tree.render(names);

    // Cut into 5 clusters and pick the most central member of each as
    // a representative training subset.
    const std::size_t k = 5;
    const auto ids = tree.cut(k);
    std::printf("\nrepresentative training subset (%zu clusters):\n", k);
    Table table({"cluster", "members", "representative"});
    for (std::size_t cluster = 0; cluster < k; ++cluster) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (ids[i] == cluster)
                members.push_back(i);
        }
        // Representative: smallest summed distance to cluster peers.
        std::size_t best = members.front();
        double best_sum = 1e300;
        for (std::size_t i : members) {
            double sum = 0.0;
            for (std::size_t j : members)
                sum += dist[i][j];
            if (sum < best_sum) {
                best_sum = sum;
                best = i;
            }
        }
        std::string member_list;
        for (std::size_t i : members) {
            if (!member_list.empty())
                member_list += ' ';
            member_list += names[i];
        }
        table.addRow({Table::num(static_cast<long long>(cluster)),
                      member_list, names[best]});
    }
    table.print(std::cout);
    std::printf("\nTraining the architecture-centric model on just "
                "these %zu representatives\napproximates the full "
                "26-program training set (paper Section 8 / Fig. 14;\n"
                "see bench_fig14_training_programs for the sweep).\n",
                k);
    return 0;
}
