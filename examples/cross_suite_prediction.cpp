/**
 * @file
 * Cross-suite prediction -- the paper's Section 7.3 scenario: a model
 * trained entirely on SPEC CPU 2000 (general-purpose) predicts MiBench
 * (embedded) programs it has never seen, and its *training error*
 * flags the programs whose behaviour is genuinely unusual.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"

using namespace acdse;

int
main()
{
    const Metric metric = Metric::Cycles;
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    const auto mibench = bench::suiteIndices(campaign, Suite::MiBench);

    std::printf("training suite: SPEC CPU 2000 (%zu programs)\n",
                spec.size());
    std::printf("test suite    : MiBench (%zu programs)\n\n",
                mibench.size());

    struct Row
    {
        std::string name;
        double trainErr;
        double testErr;
        double corr;
    };
    std::vector<Row> rows;
    for (std::size_t p : mibench) {
        const auto q = evaluator.evaluateArchCentric(
            p, metric, spec, bench::clampT(campaign), bench::kPaperR,
            bench::repeatSeed(0));
        rows.push_back({campaign.programs()[p],
                        q.trainingErrorPercent, q.rmaePercent,
                        q.correlation});
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.trainErr > b.trainErr;
    });

    Table table({"program", "train err (%)", "test err (%)", "corr",
                 "verdict"});
    for (const auto &row : rows) {
        const bool unusual = row.trainErr > 2.0 * rows.back().trainErr &&
                             row.trainErr > 5.0;
        table.addRow({row.name, Table::num(row.trainErr, 1),
                      Table::num(row.testErr, 1),
                      Table::num(row.corr, 3),
                      unusual ? "unusual -- consider a dedicated "
                                "program-specific model"
                              : "well covered by SPEC training"});
    }
    table.print(std::cout);

    double avg_err = 0.0, avg_corr = 0.0;
    for (const auto &row : rows) {
        avg_err += row.testErr;
        avg_corr += row.corr;
    }
    std::printf("\naverage: test error %.1f%%, correlation %.3f (%s)\n",
                avg_err / static_cast<double>(rows.size()),
                avg_corr / static_cast<double>(rows.size()),
                metricName(metric));
    std::printf(
        "\nThe rows are sorted by training error: the paper (Section "
        "7.3) observes\nthat a high training error -- available "
        "without any extra simulation --\nidentifies programs (e.g. "
        "patricia, tiff2rgba) that behave unlike anything\nin the "
        "training suite, where a program-specific model is worth "
        "building.\n");
    return 0;
}
