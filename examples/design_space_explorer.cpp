/**
 * @file
 * Design-space exploration -- the paper's motivating use case.
 *
 * An architect wants the best EDD (efficiency) configuration for a new
 * program. Simulating the whole space is impossible; instead we:
 *
 *  1. train the architecture-centric model offline (shared campaign),
 *  2. take 32 responses of the new program,
 *  3. *predict* a large random sweep of the design space,
 *  4. validate the predicted-best configurations with real simulations
 *     and compare them against the baseline and random configurations.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"
#include "sim/simulator.hh"

using namespace acdse;

int
main()
{
    const Metric metric = Metric::Edd;
    const std::string new_program = "equake";

    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const std::size_t target = campaign.programIndex(new_program);

    // Offline model from every other SPEC program.
    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    std::vector<std::size_t> training;
    for (std::size_t p : spec) {
        if (p != target)
            training.push_back(p);
    }
    ArchitectureCentricPredictor predictor =
        evaluator.makeOfflinePredictor(
            training, metric, bench::clampT(campaign),
            bench::repeatSeed(0));

    // 32 responses of the new program.
    const auto response_idx = sampleIndices(campaign.configs().size(),
                                            bench::kPaperR, 42);
    predictor.fitResponses(
        campaign.configsAt(response_idx),
        campaign.metricAt(target, metric, response_idx));
    std::printf("fitted '%s' with %zu responses (training error "
                "%.1f%%)\n\n",
                new_program.c_str(), bench::kPaperR,
                predictor.trainingErrorPercent());

    // Sweep a fresh slice of the space -- configurations never
    // simulated for any program.
    const std::size_t sweep_size = 20000;
    const auto sweep =
        DesignSpace::sampleValidConfigs(sweep_size, 0xdeed'5eedULL);
    std::vector<double> predicted(sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i)
        predicted[i] = predictor.predict(sweep[i]);

    std::vector<std::size_t> order(sweep.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return predicted[a] < predicted[b];
              });

    // Validate the predicted top-5 with real simulations.
    const Trace &trace = campaign.trace(target);
    SimulationOptions sim_options;
    sim_options.warmupInstructions =
        campaign.options().warmupInstructions;
    std::printf("predicted-best configurations (of %zu swept), "
                "validated by simulation:\n",
                sweep_size);
    double best_found = 1e300;
    for (int k = 0; k < 5; ++k) {
        const MicroarchConfig &config = sweep[order[static_cast<
            std::size_t>(k)]];
        const double actual =
            simulate(config, trace, sim_options).metrics.get(metric);
        best_found = std::min(best_found, actual);
        std::printf("  #%d  predicted %.3e  simulated %.3e   "
                    "width=%d rob=%d rf=%d l2=%dKB\n",
                    k + 1,
                    predicted[order[static_cast<std::size_t>(k)]],
                    actual, config.width(), config.robSize(),
                    config.rfSize(), config.get(Param::L2Size));
    }

    // Reference points: the baseline and the sampled-campaign optimum.
    const double baseline = simulate(DesignSpace::baseline(), trace,
                                     sim_options)
                                .metrics.get(metric);
    const auto row = campaign.metricRow(target, metric);
    const double campaign_best = *std::min_element(row.begin(),
                                                   row.end());
    std::printf("\nbaseline architecture %s      : %.3e\n",
                metricName(metric), baseline);
    std::printf("best of %zu random simulations : %.3e\n",
                row.size(), campaign_best);
    std::printf("best found via predictor (+5 sims): %.3e  (%.1f%% vs "
                "baseline)\n",
                best_found, 100.0 * (best_found - baseline) / baseline);
    std::printf("\nWith %zu + 5 simulations of the new program the "
                "predictor located a\nconfiguration competitive with "
                "exhaustively simulating %zu random points.\n",
                bench::kPaperR, row.size());
    return 0;
}
