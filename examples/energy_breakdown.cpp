/**
 * @file
 * Wattch-style per-structure energy breakdown -- where does the energy
 * go, and how does the design point move it? (The mechanism behind the
 * paper's Fig. 3 observations: wide machines burn issue-width energy,
 * large L2s burn leakage.)
 */

#include <cstdio>
#include <iostream>

#include "arch/design_space.hh"
#include "base/table.hh"
#include "sim/core.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

using namespace acdse;

namespace
{

void
printBreakdown(const char *label, const MicroarchConfig &config,
               const Trace &trace)
{
    EnergyModel energy(config);
    OooCore core(config, energy);
    core.warm(trace, 0, trace.size() / 5);
    const CoreStats stats = core.run(trace, trace.size() / 5);

    std::printf("--- %s: width=%d rob=%d l2=%dKB bpred=%dK ---\n",
                label, config.width(), config.robSize(),
                config.get(Param::L2Size), config.get(Param::BpredSize));
    std::printf("cycles %llu, IPC %.2f, total energy %.1f uJ\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc(), energy.totalEnergyNj(stats.cycles) / 1000.0);

    Table table({"component", "events", "energy (uJ)", "share"});
    int shown = 0;
    for (const auto &entry : energy.breakdown(stats.cycles)) {
        if (entry.share < 0.01 || shown >= 10)
            break;
        table.addRow(
            {entry.name,
             Table::num(static_cast<long long>(entry.count)),
             Table::num(entry.energyNj / 1000.0, 2),
             Table::num(100.0 * entry.share, 1) + "%"});
        ++shown;
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    const Trace trace =
        TraceGenerator(profileByName("crafty")).generate(20000);

    // The baseline, a deliberately wide/hot machine and a frugal one.
    printBreakdown("baseline", DesignSpace::baseline(), trace);

    MicroarchConfig hot = DesignSpace::baseline();
    hot.set(Param::Width, 8);
    hot.set(Param::RfReadPorts, 16);
    hot.set(Param::RfWritePorts, 8);
    hot.set(Param::L2Size, 4096);
    printBreakdown("wide and hot", hot, trace);

    MicroarchConfig frugal = DesignSpace::baseline();
    frugal.set(Param::Width, 2);
    frugal.set(Param::RfReadPorts, 4);
    frugal.set(Param::RfWritePorts, 2);
    frugal.set(Param::L2Size, 256);
    printBreakdown("frugal", frugal, trace);

    std::printf("The wide machine's clock/idle and port energy and the "
                "large L2's leakage\nare exactly the terms that push "
                "such configurations into the worst-energy\npercentile "
                "of the design space (paper Fig. 3).\n");
    return 0;
}
