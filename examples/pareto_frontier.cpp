/**
 * @file
 * Performance/energy Pareto frontier for a new program -- the "sweet
 * spot" identification the paper's introduction motivates.
 *
 * Two architecture-centric predictors (cycles and energy) are fitted
 * from the same 32 responses of a new program; the exploration engine
 * then streams a seeded random sweep through both and reduces it to
 * the exact predicted Pareto frontier, which is validated point by
 * point with real simulations.
 */

#include <cstdio>
#include <iostream>

#include "arch/design_space.hh"
#include "base/table.hh"
#include "bench/bench_common.hh"
#include "core/evaluation.hh"
#include "explore/explorer.hh"
#include "sim/simulator.hh"

using namespace acdse;

int
main()
{
    const std::string new_program = "facerec";
    Campaign &campaign = bench::standardCampaign();
    Evaluator evaluator(campaign);
    const std::size_t target = campaign.programIndex(new_program);

    const auto spec = bench::suiteIndices(campaign, Suite::SpecCpu2000);
    std::vector<std::size_t> training;
    for (std::size_t p : spec) {
        if (p != target)
            training.push_back(p);
    }

    // One predictor per objective, sharing the same 32 responses.
    const auto response_idx = sampleIndices(campaign.configs().size(),
                                            bench::kPaperR, 7);
    auto make = [&](Metric metric) {
        ArchitectureCentricPredictor predictor =
            evaluator.makeOfflinePredictor(training, metric,
                                           bench::clampT(campaign),
                                           bench::repeatSeed(0));
        predictor.fitResponses(
            campaign.configsAt(response_idx),
            campaign.metricAt(target, metric, response_idx));
        return predictor;
    };
    ArchitectureCentricPredictor cycles_model = make(Metric::Cycles);
    ArchitectureCentricPredictor energy_model = make(Metric::Energy);

    std::printf("predicting the cycles/energy Pareto frontier of '%s' "
                "from %zu responses...\n\n",
                new_program.c_str(), bench::kPaperR);
    explore::ExploreOptions options;
    options.samples = 8000;
    const std::vector<explore::MetricEnsemble> ensembles{
        {Metric::Cycles, &cycles_model},
        {Metric::Energy, &energy_model}};
    const auto result = explore::explore(ensembles, options);
    const auto &frontier = result.frontier;

    // Validate (up to) 10 evenly-spaced frontier points by simulation.
    const Trace &trace = campaign.trace(target);
    SimulationOptions sim_options;
    sim_options.warmupInstructions =
        campaign.options().warmupInstructions;

    Table table({"pred cycles", "pred energy (uJ)", "sim cycles",
                 "sim energy (uJ)", "width", "L2 KB"});
    const std::size_t shown = std::min<std::size_t>(10, frontier.size());
    for (std::size_t k = 0; k < shown; ++k) {
        const explore::FrontierConfig &point =
            frontier[k * (frontier.size() - 1) /
                     std::max<std::size_t>(1, shown - 1)];
        const MicroarchConfig &config = point.config;
        const SimulationResult real =
            simulate(config, trace, sim_options);
        table.addRow({Table::num(point.x, 0),
                      Table::num(point.y / 1000.0, 1),
                      Table::num(real.metrics.cycles, 0),
                      Table::num(real.metrics.energyNj / 1000.0, 1),
                      Table::num((long long)config.width()),
                      Table::num((long long)config.get(Param::L2Size))});
    }
    table.print(std::cout);
    std::printf("\nfrontier size: %zu of 8000 swept configurations\n",
                frontier.size());
    std::printf("Moving down the frontier trades performance for "
                "energy: narrow, small-L2\nmachines populate the "
                "low-energy end, wide large-window machines the\n"
                "high-performance end (cf. paper Figs. 2 and 3).\n");
    return 0;
}
