/**
 * @file
 * Quickstart: the whole library in one small program.
 *
 * 1. Generate synthetic workloads for a few training benchmarks.
 * 2. Simulate each on a set of sampled configurations (the offline
 *    training data).
 * 3. Train the architecture-centric predictor.
 * 4. Take a *new* program, run only 32 simulations of it (the
 *    "responses"), and predict its whole design space.
 *
 * Everything is self-contained and runs in a few seconds; the bench/
 * binaries do the same at paper scale using the shared campaign cache.
 */

#include <cstdio>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "core/architecture_centric_predictor.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

using namespace acdse;

namespace
{

/** Simulate one program on a list of configurations. */
std::vector<double>
simulateAll(const std::string &program,
            const std::vector<MicroarchConfig> &configs, Metric metric)
{
    const Trace trace = TraceGenerator(profileByName(program))
                            .generate(8000);
    SimulationOptions options;
    options.warmupInstructions = 2000;
    std::vector<double> values;
    values.reserve(configs.size());
    for (const auto &config : configs)
        values.push_back(simulate(config, trace, options)
                             .metrics.get(metric));
    return values;
}

} // namespace

int
main()
{
    const Metric metric = Metric::Cycles;

    // --- Offline phase: train on a handful of known benchmarks -------
    const std::vector<std::string> training_programs{
        "gzip", "crafty", "swim", "mesa", "twolf"};
    const auto training_configs = DesignSpace::sampleValidConfigs(96, 1);
    std::printf("offline: simulating %zu configs for %zu training "
                "programs...\n",
                training_configs.size(), training_programs.size());

    std::vector<ProgramTrainingSet> sets;
    for (const auto &name : training_programs) {
        ProgramTrainingSet set;
        set.name = name;
        set.configs = training_configs;
        set.values = simulateAll(name, training_configs, metric);
        sets.push_back(std::move(set));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);
    std::printf("offline: trained %zu program-specific ANNs\n\n",
                predictor.trainingPrograms().size());

    // --- Online phase: a NEW program, never seen before --------------
    const std::string new_program = "vpr";
    const auto response_configs = DesignSpace::sampleValidConfigs(32, 2);
    std::printf("online: running just %zu simulations of new program "
                "'%s' (the responses)\n",
                response_configs.size(), new_program.c_str());
    const auto responses =
        simulateAll(new_program, response_configs, metric);
    predictor.fitResponses(response_configs, responses);
    std::printf("online: fitted linear combination, training error "
                "%.1f%%\n\n",
                predictor.trainingErrorPercent());

    // --- Validate: predict unseen configurations ----------------------
    const auto test_configs = DesignSpace::sampleValidConfigs(40, 3);
    const auto actual = simulateAll(new_program, test_configs, metric);
    std::vector<double> predicted;
    for (const auto &config : test_configs)
        predicted.push_back(predictor.predict(config));

    std::printf("validation on 40 unseen configurations of '%s':\n",
                new_program.c_str());
    std::printf("  rmae        = %.1f%%\n",
                stats::rmae(predicted, actual));
    std::printf("  correlation = %.3f\n",
                stats::correlation(predicted, actual));
    std::printf("\nfirst five predictions vs simulations (%s):\n",
                metricName(metric));
    for (int i = 0; i < 5; ++i) {
        std::printf("  config %d: predicted %.0f, simulated %.0f\n", i,
                    predicted[static_cast<std::size_t>(i)],
                    actual[static_cast<std::size_t>(i)]);
    }
    std::printf("\nThe predictor can now rank any of the ~41 billion "
                "valid configurations\nfor '%s' without further "
                "simulation.\n",
                new_program.c_str());
    return 0;
}
