/**
 * @file
 * Umbrella header for the ACDSE library: architecture-centric
 * microarchitectural design space exploration (Dubach, Jones, O'Boyle,
 * MICRO-40 2007 / IEEE TC 2011).
 *
 * Typical usage (see examples/quickstart.cpp):
 * @code
 *   using namespace acdse;
 *   Campaign campaign = Campaign::standard();      // simulations
 *   Evaluator evaluator(campaign);                 // methodology
 *   auto quality = evaluator.evaluateArchCentric(
 *       campaign.programIndex("applu"), Metric::Cycles,
 *       evaluator.leaveOneOut(campaign.programIndex("applu")),
 *       512, 32, seed);
 * @endcode
 */

#pragma once

// Design space (Table 1 / Table 2).
#include "arch/design_space.hh"
#include "arch/microarch_config.hh"
#include "arch/parameter.hh"

// Synthetic workloads (SPEC CPU 2000 / MiBench substitutes).
#include "trace/simpoint.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

// Cycle-level simulator and energy model.
#include "sim/first_order.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

// Machine-learning substrate.
#include "ml/hierarchical.hh"
#include "ml/kmeans.hh"
#include "ml/linear_regression.hh"
#include "ml/mlp.hh"
#include "ml/rbf.hh"
#include "ml/spline.hh"

// The paper's contribution and evaluation machinery.
#include "core/architecture_centric_predictor.hh"
#include "core/campaign.hh"
#include "core/characterisation.hh"
#include "core/evaluation.hh"
#include "core/feature_based_predictor.hh"
#include "core/program_specific_predictor.hh"

// Streaming design-space exploration and refinement.
#include "explore/explorer.hh"
#include "explore/reducers.hh"
#include "explore/refine.hh"
#include "explore/subspace.hh"

// Model persistence and prediction serving.
#include "serve/model_store.hh"
#include "serve/prediction_service.hh"

