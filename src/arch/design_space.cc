#include "arch/design_space.hh"

#include <unordered_set>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

namespace
{

/** Raw point count: product of per-parameter value counts. */
std::uint64_t
rawProduct()
{
    std::uint64_t total = 1;
    for (const auto &spec : paramSpecs())
        total *= spec.count();
    return total;
}

} // namespace

std::uint64_t
DesignSpace::totalRawPoints()
{
    return rawProduct();
}

std::uint64_t
DesignSpace::totalValidPoints()
{
    // The constraints couple only {ROB, IQ, LSQ} and
    // {read ports, write ports}; all other parameters are free, so the
    // exact count is (#valid triples) * (#valid port pairs) *
    // (product of the remaining value counts).
    const ParamSpec &rob = paramSpec(Param::RobSize);
    const ParamSpec &iq = paramSpec(Param::IqSize);
    const ParamSpec &lsq = paramSpec(Param::LsqSize);
    std::uint64_t quadruples = 0;
    for (int rob_v : rob.values) {
        std::uint64_t iq_count = 0;
        for (int iq_v : iq.values)
            iq_count += iq_v <= rob_v;
        std::uint64_t lsq_count = 0;
        for (int lsq_v : lsq.values)
            lsq_count += lsq_v <= rob_v;
        quadruples += iq_count * lsq_count;
    }

    const ParamSpec &rd = paramSpec(Param::RfReadPorts);
    const ParamSpec &wr = paramSpec(Param::RfWritePorts);
    std::uint64_t port_pairs = 0;
    for (int rd_v : rd.values)
        for (int wr_v : wr.values)
            port_pairs += wr_v <= rd_v;

    std::uint64_t rest = 1;
    for (const auto &spec : paramSpecs()) {
        switch (spec.id) {
          case Param::RobSize:
          case Param::IqSize:
          case Param::LsqSize:
          case Param::RfReadPorts:
          case Param::RfWritePorts:
            break;
          default:
            rest *= spec.count();
        }
    }
    return quadruples * port_pairs * rest;
}

bool
DesignSpace::isValid(const MicroarchConfig &config)
{
    if (config.iqSize() > config.robSize())
        return false;
    if (config.lsqSize() > config.robSize())
        return false;
    if (config.rfWritePorts() > config.rfReadPorts())
        return false;
    return true;
}

MicroarchConfig
DesignSpace::baseline()
{
    MicroarchConfig config;
    ACDSE_CHECK(isValid(config), "baseline configuration must be valid");
    return config;
}

MicroarchConfig
DesignSpace::sampleValid(Rng &rng)
{
    for (;;) {
        std::array<int, kNumParams> values;
        for (std::size_t i = 0; i < kNumParams; ++i) {
            const ParamSpec &spec = paramSpecs()[i];
            values[i] = spec.values[rng.nextBounded(spec.count())];
        }
        MicroarchConfig config(values);
        if (isValid(config))
            return config;
    }
}

std::vector<MicroarchConfig>
DesignSpace::sampleValidConfigs(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<MicroarchConfig> configs;
    std::unordered_set<std::string> seen;
    configs.reserve(count);
    while (configs.size() < count) {
        MicroarchConfig config = sampleValid(rng);
        if (seen.insert(config.key()).second)
            configs.push_back(config);
    }
    return configs;
}

std::vector<MicroarchConfig>
DesignSpace::representativeSample(std::size_t count)
{
    return sampleValidConfigs(count, 0xac5e5eedULL);
}

} // namespace acdse
