/**
 * @file
 * The full microarchitectural design space: enumeration, validity
 * filtering and uniform random sampling (paper Sections 3.1 and 3.3).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/microarch_config.hh"
#include "base/rng.hh"

namespace acdse
{

/**
 * Static view of the whole design space.
 *
 * The raw cross product of Table 1 has ~63 billion points; configurations
 * that "do not make architectural sense" are filtered (Section 3.1):
 *   1. issue queue no larger than the reorder buffer,
 *   2. load/store queue no larger than the reorder buffer,
 *   3. register write ports no more numerous than read ports.
 * Undersized register files (e.g. RF = 40 with a large ROB) remain
 * legal, as in the paper: they simply rename-stall their way into the
 * worst percentile of the space (Fig. 2i).
 */
class DesignSpace
{
  public:
    /** Total number of points in the unfiltered cross product. */
    static std::uint64_t totalRawPoints();

    /** Exact number of points satisfying all validity constraints. */
    static std::uint64_t totalValidPoints();

    /** Whether one configuration satisfies the validity constraints. */
    static bool isValid(const MicroarchConfig &config);

    /** The baseline configuration (always valid). */
    static MicroarchConfig baseline();

    /**
     * Draw one configuration uniformly at random from the *valid*
     * subspace (rejection sampling over the raw space).
     */
    static MicroarchConfig sampleValid(Rng &rng);

    /**
     * Draw @p count distinct valid configurations uniformly at random.
     * Used for the paper's 3,000-configuration campaign (Section 3.3),
     * for training sets and for responses.
     */
    static std::vector<MicroarchConfig> sampleValidConfigs(
        std::size_t count, std::uint64_t seed);

    /**
     * Deterministically enumerate valid configurations spread over the
     * space by sampling with a fixed seed -- convenience wrapper used by
     * the examples.
     */
    static std::vector<MicroarchConfig> representativeSample(
        std::size_t count);
};

} // namespace acdse

