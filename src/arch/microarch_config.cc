#include "arch/microarch_config.hh"

#include <cmath>
#include <sstream>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

MicroarchConfig::MicroarchConfig()
{
    for (std::size_t i = 0; i < kNumParams; ++i)
        values_[i] = paramSpecs()[i].baseline;
}

MicroarchConfig::MicroarchConfig(const std::array<int, kNumParams> &values)
    : values_(values)
{
    for (std::size_t i = 0; i < kNumParams; ++i) {
        ACDSE_CHECK(paramSpecs()[i].contains(values_[i]),
                     "illegal value ", values_[i], " for parameter ",
                     paramSpecs()[i].name);
    }
}

void
MicroarchConfig::set(Param p, int value)
{
    ACDSE_CHECK(paramSpec(p).contains(value), "illegal value ", value,
                 " for parameter ", paramSpec(p).name);
    values_[static_cast<std::size_t>(p)] = value;
}

std::vector<double>
MicroarchConfig::asVector() const
{
    std::vector<double> v(kNumParams);
    for (std::size_t i = 0; i < kNumParams; ++i)
        v[i] = static_cast<double>(values_[i]);
    return v;
}

std::vector<double>
MicroarchConfig::asFeatureVector() const
{
    std::vector<double> v(kNumParams);
    featuresInto(v.data());
    return v;
}

void
MicroarchConfig::featuresInto(double *out) const
{
    for (std::size_t i = 0; i < kNumParams; ++i)
        out[i] = static_cast<double>(values_[i]);
    for (Param p : {Param::BpredSize, Param::BtbSize, Param::Il1Size,
                    Param::Dl1Size, Param::L2Size}) {
        out[static_cast<std::size_t>(p)] =
            std::log2(out[static_cast<std::size_t>(p)]);
    }
}

std::string
MicroarchConfig::key() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        if (i)
            os << '/';
        os << values_[i];
    }
    return os.str();
}

std::string
MicroarchConfig::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        const ParamSpec &spec = paramSpecs()[i];
        os << spec.name << " = " << values_[i];
        if (spec.unit[0] != '\0')
            os << ' ' << spec.unit;
        os << '\n';
    }
    return os.str();
}

std::uint64_t
MicroarchConfig::hash() const
{
    // FNV-1a over the value indices.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        h ^= static_cast<std::uint64_t>(values_[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace acdse
