/**
 * @file
 * A single point in the microarchitectural design space: concrete values
 * for all 13 varied parameters.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/parameter.hh"

namespace acdse
{

/**
 * One microarchitectural configuration.
 *
 * A configuration is the 13-vector fed to the predictors (paper Section
 * 5.2: the baseline encodes as (4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32,
 * 32, 2) -- we keep L2 in KB rather than MB so all entries are
 * integers; predictors standardise the inputs so the unit is
 * irrelevant to them).
 */
class MicroarchConfig
{
  public:
    /** Construct the baseline configuration of Table 1. */
    MicroarchConfig();

    /** Construct from explicit per-parameter values (Param order). */
    explicit MicroarchConfig(const std::array<int, kNumParams> &values);

    /** Value of one parameter. */
    int get(Param p) const { return values_[static_cast<std::size_t>(p)]; }

    /** Set one parameter; the value must be legal for that parameter. */
    void set(Param p, int value);

    /** @name Named accessors for readability at call sites. */
    /** @{ */
    int width() const { return get(Param::Width); }
    int robSize() const { return get(Param::RobSize); }
    int iqSize() const { return get(Param::IqSize); }
    int lsqSize() const { return get(Param::LsqSize); }
    int rfSize() const { return get(Param::RfSize); }
    int rfReadPorts() const { return get(Param::RfReadPorts); }
    int rfWritePorts() const { return get(Param::RfWritePorts); }
    int bpredEntries() const { return get(Param::BpredSize) * 1024; }
    int btbEntries() const { return get(Param::BtbSize) * 1024; }
    int maxBranches() const { return get(Param::MaxBranches); }
    int il1Bytes() const { return get(Param::Il1Size) * 1024; }
    int dl1Bytes() const { return get(Param::Dl1Size) * 1024; }
    int l2Bytes() const { return get(Param::L2Size) * 1024; }
    /** @} */

    /** The raw 13-vector used as predictor input. */
    std::vector<double> asVector() const;

    /**
     * The 13-vector with log2 applied to the power-of-two-spaced
     * parameters (predictor tables and caches): the response surface
     * is close to linear in the *exponent* of those structures, which
     * conditions the ANN fit better than raw byte counts.
     */
    std::vector<double> asFeatureVector() const;

    /**
     * Write asFeatureVector() into out[0 .. kNumParams) without
     * allocating -- the batched predict paths fill contiguous
     * row-major feature matrices with this. Values are bit-identical
     * to asFeatureVector().
     */
    void featuresInto(double *out) const;

    /** All 13 values in Param order. */
    const std::array<int, kNumParams> &raw() const { return values_; }

    /**
     * Stable textual key, e.g. "4/96/32/..." -- used for the on-disk
     * campaign cache and for deduplicating samples.
     */
    std::string key() const;

    /** Human-readable multi-line description. */
    std::string toString() const;

    /** Equality on all 13 values. */
    bool operator==(const MicroarchConfig &other) const = default;

    /** Hash for use in unordered containers. */
    std::uint64_t hash() const;

  private:
    std::array<int, kNumParams> values_;
};

} // namespace acdse

