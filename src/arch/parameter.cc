#include "arch/parameter.hh"

#include <algorithm>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

namespace
{

/** Build a stepped value list lo, lo+step, ..., hi at static-init time. */
template <int Lo, int Hi, int Step>
constexpr auto
steppedValues()
{
    constexpr std::size_t n = (Hi - Lo) / Step + 1;
    std::array<int, n> values{};
    for (std::size_t i = 0; i < n; ++i)
        values[i] = Lo + static_cast<int>(i) * Step;
    return values;
}

constexpr std::array<int, 4> kWidthValues{2, 4, 6, 8};
constexpr auto kRobValues = steppedValues<32, 160, 8>();    // 17 values
constexpr auto kIqValues = steppedValues<8, 80, 8>();       // 10 values
constexpr auto kLsqValues = steppedValues<8, 80, 8>();      // 10 values
constexpr auto kRfValues = steppedValues<40, 160, 8>();     // 16 values
constexpr auto kRfReadValues = steppedValues<2, 16, 2>();   // 8 values
constexpr auto kRfWriteValues = steppedValues<1, 8, 1>();   // 8 values
constexpr std::array<int, 6> kBpredValues{1, 2, 4, 8, 16, 32};
constexpr std::array<int, 3> kBtbValues{1, 2, 4};
constexpr std::array<int, 4> kBranchValues{8, 16, 24, 32};
constexpr std::array<int, 5> kIl1Values{8, 16, 32, 64, 128};
constexpr std::array<int, 5> kDl1Values{8, 16, 32, 64, 128};
constexpr std::array<int, 5> kL2Values{256, 512, 1024, 2048, 4096};

const std::array<ParamSpec, kNumParams> kSpecs{{
    {Param::Width, "Width", "", kWidthValues, 4},
    {Param::RobSize, "ROB", "entries", kRobValues, 96},
    {Param::IqSize, "IQ", "entries", kIqValues, 32},
    {Param::LsqSize, "LSQ", "entries", kLsqValues, 48},
    {Param::RfSize, "RF", "regs", kRfValues, 96},
    {Param::RfReadPorts, "RF read", "ports", kRfReadValues, 8},
    {Param::RfWritePorts, "RF write", "ports", kRfWriteValues, 4},
    {Param::BpredSize, "Bpred", "K-entries", kBpredValues, 16},
    {Param::BtbSize, "BTB", "K-entries", kBtbValues, 4},
    {Param::MaxBranches, "Branches", "in-flight", kBranchValues, 16},
    {Param::Il1Size, "IL1", "KB", kIl1Values, 32},
    {Param::Dl1Size, "DL1", "KB", kDl1Values, 32},
    {Param::L2Size, "L2", "KB", kL2Values, 2048},
}};

} // namespace

std::size_t
ParamSpec::indexOf(int value) const
{
    auto it = std::find(values.begin(), values.end(), value);
    ACDSE_CHECK(it != values.end(), "value ", value,
                 " is not legal for parameter ", name);
    return static_cast<std::size_t>(it - values.begin());
}

bool
ParamSpec::contains(int value) const
{
    return std::find(values.begin(), values.end(), value) != values.end();
}

const std::array<ParamSpec, kNumParams> &
paramSpecs()
{
    return kSpecs;
}

const ParamSpec &
paramSpec(Param p)
{
    return kSpecs[static_cast<std::size_t>(p)];
}

std::string
paramName(Param p)
{
    return paramSpec(p).name;
}

const FixedParams &
fixedParams()
{
    static const FixedParams params;
    return params;
}

FunctionalUnitCounts
functionalUnitsForWidth(int width)
{
    ACDSE_CHECK(width >= 1, "width must be positive");
    return {
        width,
        std::max(1, width / 2),
        std::max(1, width / 2),
        std::max(1, width / 4),
    };
}

} // namespace acdse
