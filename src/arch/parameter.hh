/**
 * @file
 * The 13 varied microarchitectural parameters of the paper's Table 1,
 * plus the fixed parameters of Table 2.
 *
 * The raw cross product of the varied parameters gives ~63 billion
 * configurations; DesignSpace filters those that "do not make
 * architectural sense" (Section 3.1).
 */

#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

namespace acdse
{

/**
 * Identifier of each varied parameter, in the order used by the paper's
 * baseline encoding x = (4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2).
 */
enum class Param : std::size_t
{
    Width = 0,      //!< pipeline width (instructions/cycle)
    RobSize,        //!< reorder-buffer entries
    IqSize,         //!< issue-queue entries
    LsqSize,        //!< load/store-queue entries
    RfSize,         //!< physical register-file registers
    RfReadPorts,    //!< register-file read ports
    RfWritePorts,   //!< register-file write ports
    BpredSize,      //!< gshare predictor entries, in K
    BtbSize,        //!< branch-target-buffer entries, in K
    MaxBranches,    //!< maximum unresolved branches in flight
    Il1Size,        //!< L1 instruction cache, in KB
    Dl1Size,        //!< L1 data cache, in KB
    L2Size,         //!< unified L2 cache, in KB
    NumParams,      //!< sentinel: number of varied parameters
};

/** Number of varied parameters (13). */
constexpr std::size_t kNumParams =
    static_cast<std::size_t>(Param::NumParams);

/** Static description of one varied parameter (one row of Table 1). */
struct ParamSpec
{
    Param id;                       //!< which parameter
    const char *name;               //!< human-readable name
    const char *unit;               //!< unit suffix for printing
    std::span<const int> values;    //!< legal values, ascending
    int baseline;                   //!< baseline configuration value

    /** Number of legal values. */
    std::size_t count() const { return values.size(); }
    /** Smallest legal value. */
    int min() const { return values.front(); }
    /** Largest legal value. */
    int max() const { return values.back(); }
    /** Index of a value within the legal list; panics if absent. */
    std::size_t indexOf(int value) const;
    /** Whether the given value is legal for this parameter. */
    bool contains(int value) const;
};

/** Table 1: the specs of all 13 varied parameters, in Param order. */
const std::array<ParamSpec, kNumParams> &paramSpecs();

/** Spec of a single parameter. */
const ParamSpec &paramSpec(Param p);

/** Short name of a parameter (e.g. "ROB"). */
std::string paramName(Param p);

/**
 * Table 2a: parameters held constant across the whole design space.
 * Values follow common SimpleScalar/Wattch practice for an aggressive
 * out-of-order core of the paper's era.
 */
struct FixedParams
{
    int il1Assoc = 2;           //!< L1I associativity
    int dl1Assoc = 4;           //!< L1D associativity
    int l2Assoc = 8;            //!< L2 associativity
    int l1LineBytes = 32;       //!< L1 line size
    int l2LineBytes = 64;       //!< L2 line size
    int memLatency = 200;       //!< main-memory latency (cycles)
    int frontEndStages = 5;     //!< fetch-to-dispatch pipeline depth
    int mispredictRedirect = 3; //!< extra redirect cycles on mispredict
    int intAluLatency = 1;      //!< integer ALU latency
    int intMulLatency = 3;      //!< integer multiplier latency
    int fpAluLatency = 2;       //!< FP adder latency
    int fpMulLatency = 4;       //!< FP multiplier latency
    int fpDivLatency = 12;      //!< FP divider latency (unpipelined)
    int archRegs = 32;          //!< architectural registers per file
    double clockGhz = 2.0;      //!< nominal clock for energy accounting
};

/** The fixed-parameter set used by every simulation. */
const FixedParams &fixedParams();

/**
 * Table 2b: functional-unit counts scale with the pipeline width. A
 * 4-wide machine has 4 integer ALUs, 2 integer multipliers, 2 FP ALUs
 * and 1 FP multiplier/divider.
 */
struct FunctionalUnitCounts
{
    int intAlu;     //!< integer ALUs
    int intMul;     //!< integer multipliers
    int fpAlu;      //!< floating-point adders
    int fpMulDiv;   //!< floating-point multiplier/dividers
};

/** Functional-unit counts for a given pipeline width. */
FunctionalUnitCounts functionalUnitsForWidth(int width);

} // namespace acdse

