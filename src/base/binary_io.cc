#include "base/binary_io.hh"

#include <cstring>

namespace acdse
{

namespace
{

/** Hard cap on length prefixes: a corrupt length must not OOM us. */
constexpr std::uint64_t kMaxLength = 1ull << 32;

} // namespace

void
BinaryWriter::u8(std::uint8_t value)
{
    buffer_.push_back(static_cast<char>(value));
}

void
BinaryWriter::u32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void
BinaryWriter::u64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void
BinaryWriter::f64(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
BinaryWriter::str(const std::string &value)
{
    u64(value.size());
    buffer_.append(value);
}

void
BinaryWriter::f64vec(const std::vector<double> &values)
{
    u64(values.size());
    for (double v : values)
        f64(v);
}

const char *
BinaryReader::take(std::size_t count)
{
    if (count > remaining())
        throw SerializationError("truncated input: wanted " +
                                 std::to_string(count) + " bytes, have " +
                                 std::to_string(remaining()));
    const char *out = data_.data() + pos_;
    pos_ += count;
    return out;
}

std::uint8_t
BinaryReader::u8()
{
    return static_cast<std::uint8_t>(*take(1));
}

std::uint32_t
BinaryReader::u32()
{
    const char *bytes = take(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
BinaryReader::u64()
{
    const char *bytes = take(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

double
BinaryReader::f64()
{
    const std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
BinaryReader::str()
{
    const std::uint64_t size = u64();
    if (size > kMaxLength)
        throw SerializationError("implausible string length");
    return std::string(take(static_cast<std::size_t>(size)),
                       static_cast<std::size_t>(size));
}

std::vector<double>
BinaryReader::f64vec()
{
    const std::uint64_t size = u64();
    if (size > kMaxLength / sizeof(double))
        throw SerializationError("implausible vector length");
    std::vector<double> values(static_cast<std::size_t>(size));
    for (auto &v : values)
        v = f64();
    return values;
}

std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace acdse
