/**
 * @file
 * Little-endian binary encoding for model persistence.
 *
 * BinaryWriter serialises into an in-memory buffer; BinaryReader
 * decodes from one. Fixed-width integers and raw IEEE-754 doubles give
 * bit-exact round trips, which the serving subsystem relies on: a
 * predictor loaded from an artifact must produce predictions identical
 * to the freshly-trained one.
 *
 * Errors while *decoding* (truncated buffer, absurd lengths) throw
 * SerializationError rather than panic(): corrupt input files are a
 * caller problem, and a long-running prediction server must be able to
 * reject a bad artifact without dying.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace acdse
{

/** Thrown by BinaryReader (and the artifact store) on malformed input. */
class SerializationError : public std::runtime_error
{
  public:
    explicit SerializationError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Appends little-endian encoded values to a growable byte buffer. */
class BinaryWriter
{
  public:
    /** @name Scalar encoders. */
    /** @{ */
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    /** Raw IEEE-754 bits; round-trips every finite and non-finite value. */
    void f64(double value);
    /** @} */

    /** Length-prefixed (u64) byte string. */
    void str(const std::string &value);

    /** Length-prefixed (u64) vector of f64. */
    void f64vec(const std::vector<double> &values);

    /** The encoded bytes so far. */
    const std::string &buffer() const { return buffer_; }

    /** Move the encoded bytes out (the writer becomes empty). */
    std::string takeBuffer() { return std::move(buffer_); }

  private:
    std::string buffer_;
};

/**
 * Decodes values from a byte buffer in the order they were written.
 * The reader does not own the bytes; the underlying buffer must outlive
 * it.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view data) : data_(data) {}

    /** @name Scalar decoders (throw SerializationError on underflow). */
    /** @{ */
    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    /** @} */

    /** Length-prefixed byte string. */
    std::string str();

    /** Length-prefixed vector of f64. */
    std::vector<double> f64vec();

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data_.size() - pos_; }

    /** Whether every byte has been consumed. */
    bool exhausted() const { return remaining() == 0; }

  private:
    /** Take @p count raw bytes or throw. */
    const char *take(std::size_t count);

    std::string_view data_;
    std::size_t pos_ = 0;
};

/**
 * FNV-1a 64-bit hash -- the artifact store's content checksum. Not
 * cryptographic; detects truncation and bit rot, which is all an
 * integrity check on a local model file needs.
 */
std::uint64_t fnv1a64(std::string_view data);

} // namespace acdse

