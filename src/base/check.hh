/**
 * @file
 * Contract-check macros for trust boundaries.
 *
 * Three tiers, all reporting file:line plus an optional streamed
 * message through panic():
 *
 *  - ACDSE_CHECK        always on. For boundaries crossed rarely
 *                       (artifact load, config validation, batch
 *                       set-up) where the cost is unmeasurable.
 *  - ACDSE_DCHECK       compiled out in release builds (NDEBUG without
 *                       ACDSE_ENABLE_DCHECK); the condition is not
 *                       evaluated, so it is free on hot paths such as
 *                       per-element Matrix indexing and the serving
 *                       predict loop. Sanitizer builds turn it on.
 *  - ACDSE_CHECK_FINITE always on; checks a double for NaN/inf and
 *                       includes the offending value in the message.
 *
 * ACDSE_DCHECK_ENABLED is 1/0 so tests (and the rare caller that wants
 * to precompute something only a DCHECK consumes) can branch on it.
 */

#pragma once

#include <cmath>

#include "base/logging.hh"

/** panic() with file:line context unless the condition holds. */
#define ACDSE_CHECK(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::acdse::panic("check '" #cond "' failed at ", __FILE__, ":",   \
                           __LINE__, " ", ##__VA_ARGS__);                   \
        }                                                                   \
    } while (0)

#if !defined(NDEBUG) || defined(ACDSE_ENABLE_DCHECK)
#define ACDSE_DCHECK_ENABLED 1
/** ACDSE_CHECK in debug/sanitizer builds; vanishes in release. */
#define ACDSE_DCHECK(cond, ...) ACDSE_CHECK(cond, ##__VA_ARGS__)
#else
#define ACDSE_DCHECK_ENABLED 0
#define ACDSE_DCHECK(cond, ...)                                             \
    do {                                                                    \
        /* Never evaluated; keeps the condition compiling. */               \
        if (false && (cond)) {                                              \
        }                                                                   \
    } while (0)
#endif

/** panic() unless the double-valued expression is finite. */
#define ACDSE_CHECK_FINITE(value, ...)                                      \
    do {                                                                    \
        const double acdse_check_finite_v_ = (value);                       \
        if (!std::isfinite(acdse_check_finite_v_)) {                        \
            ::acdse::panic("'" #value "' is not finite (",                  \
                           acdse_check_finite_v_, ") at ", __FILE__, ":",   \
                           __LINE__, " ", ##__VA_ARGS__);                   \
        }                                                                   \
    } while (0)
