#include "base/csv.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace acdse
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream is(line);
    while (std::getline(is, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.emplace_back();
    return cells;
}

bool
readCsv(const std::string &path, CsvFile &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    out.header.clear();
    out.rows.clear();
    std::string line;
    if (!std::getline(in, line))
        return false;
    out.header = splitCsvLine(line);
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto cells = splitCsvLine(line);
        if (cells.size() != out.header.size())
            return false;
        out.rows.push_back(std::move(cells));
    }
    return true;
}

void
writeCsv(const std::string &path, const CsvFile &file)
{
    std::ofstream os(path);
    if (!os)
        panic("cannot open '", path, "' for writing");
    auto write_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    write_row(file.header);
    for (const auto &row : file.rows)
        write_row(row);
    if (!os)
        panic("failed while writing '", path, "'");
}

void
writeCsvAtomic(const std::string &path, const CsvFile &file)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();
    writeCsv(tmp, file);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        panic("cannot rename '", tmp, "' to '", path, "'");
    }
}

} // namespace acdse
