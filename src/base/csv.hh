/**
 * @file
 * Minimal CSV reading/writing, used for the on-disk simulation-campaign
 * cache. Values are plain (no quoting) since we only store identifiers
 * and numbers.
 */

#pragma once

#include <string>
#include <vector>

namespace acdse
{

/** One parsed CSV file: a header row plus data rows of strings. */
struct CsvFile
{
    std::vector<std::string> header;              //!< column names
    std::vector<std::vector<std::string>> rows;   //!< data cells
};

/**
 * Read a CSV file from disk.
 * @return true and fills @p out on success; false if the file does not
 *         exist or cannot be parsed.
 */
bool readCsv(const std::string &path, CsvFile &out);

/** Write a CSV file to disk; panics on I/O failure. */
void writeCsv(const std::string &path, const CsvFile &file);

/**
 * Write a CSV file atomically: the content goes to a process-unique
 * temporary file that is rename()d over @p path, so concurrent readers
 * (and racing writers sharing one cache file) see either the old file
 * or the complete new one, never a truncated in-between state. The
 * temporary lives in the same directory as @p path, as rename() is
 * only atomic within a filesystem.
 */
void writeCsvAtomic(const std::string &path, const CsvFile &file);

/** Split one CSV line on commas (no quoting support). */
std::vector<std::string> splitCsvLine(const std::string &line);

} // namespace acdse

