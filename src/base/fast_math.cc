#include "base/fast_math.hh"

#include <array>
#include <cmath>
#include <cstddef>

namespace acdse
{

namespace
{

constexpr std::size_t kSegments = 256;
constexpr double kTableLimit = 5.0;
constexpr double kStep = kTableLimit / static_cast<double>(kSegments);

/** Cubic Hermite coefficients for one interval, in t = x - x0. */
struct Segment
{
    double f;   //!< tanh(x0)
    double d;   //!< tanh'(x0)
    double c2;  //!< quadratic coefficient
    double c3;  //!< cubic coefficient
};

/**
 * The interpolation table, built from std::tanh on first use (a magic
 * static, so initialisation is thread-safe and the table is immutable
 * afterwards). Matching values *and* derivatives at every node keeps
 * the maximum error of each cubic at h^4/384 * max|tanh''''| ~ 1.5e-9.
 */
const std::array<Segment, kSegments> &
table()
{
    static const std::array<Segment, kSegments> segments = [] {
        std::array<Segment, kSegments> t{};
        for (std::size_t k = 0; k < kSegments; ++k) {
            const double x0 = static_cast<double>(k) * kStep;
            const double x1 = x0 + kStep;
            const double f0 = std::tanh(x0);
            const double f1 = std::tanh(x1);
            const double d0 = 1.0 - f0 * f0;
            const double d1 = 1.0 - f1 * f1;
            const double slope = (f1 - f0) / kStep;
            t[k].f = f0;
            t[k].d = d0;
            t[k].c2 = (3.0 * slope - 2.0 * d0 - d1) / kStep;
            t[k].c3 = (d0 + d1 - 2.0 * slope) / (kStep * kStep);
        }
        return t;
    }();
    return segments;
}

} // namespace

double
fastTanh(double x)
{
    const double ax = std::fabs(x);
    if (ax < kTableLimit) [[likely]] {
        const double u = ax / kStep;
        const std::size_t k = static_cast<std::size_t>(u);
        const double t = (u - static_cast<double>(k)) * kStep;
        const Segment &s = table()[k];
        const double p = s.f + t * (s.d + t * (s.c2 + t * s.c3));
        return std::copysign(p, x);
    }
    if (ax < 19.0625) {
        const double e = std::exp(-2.0 * ax);
        return std::copysign((1.0 - e) / (1.0 + e), x);
    }
    // tanh(19.0625) rounds to 1.0 in double precision; NaN propagates
    // through copysign's magnitude argument untouched.
    return std::copysign(std::isnan(x) ? x : 1.0, x);
}

} // namespace acdse
