#include "base/fast_math.hh"

namespace acdse
{
namespace detail
{

double
fastTanhTail(double x)
{
    const double ax = std::fabs(x);
    if (ax < 19.0625) {
        const double e = std::exp(-2.0 * ax);
        return std::copysign((1.0 - e) / (1.0 + e), x);
    }
    // tanh(19.0625) rounds to 1.0 in double precision; NaN propagates
    // through copysign's magnitude argument untouched.
    return std::copysign(std::isnan(x) ? x : 1.0, x);
}

} // namespace detail
} // namespace acdse
