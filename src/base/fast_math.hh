/**
 * @file
 * Fast transcendental functions for model inference.
 *
 * The serving hot path evaluates hundreds of tanh activations per
 * prediction; libm's tanh is accurate to < 1 ulp but costs ~20 ns per
 * call on commodity hardware, which caps ensemble serving throughput
 * well below the design target. fastTanh() trades that last digit for
 * a ~3x cheaper evaluation: a piecewise cubic Hermite interpolant of
 * tanh on |x| < 5 (absolute error below 5e-9, orders of magnitude
 * under the predictors' own model error) with an exact exp-based tail.
 */

#pragma once

namespace acdse
{

/**
 * tanh(x) to ~5e-9 absolute accuracy over all of R.
 *
 * |x| < 5 (99.9% of trained-network pre-activations) is served from a
 * 256-interval cubic Hermite table built from std::tanh at first use;
 * larger magnitudes fall back to the exact identity
 * tanh(x) = (1 - e^{-2|x|}) / (1 + e^{-2|x|}), and |x| >= 19.0625
 * saturates to +/-1 (tanh is 1 to double precision there). Odd
 * symmetry is exact: fastTanh(-x) == -fastTanh(x).
 */
double fastTanh(double x);

} // namespace acdse

