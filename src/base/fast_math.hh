/**
 * @file
 * Fast transcendental functions for model inference.
 *
 * The serving hot path evaluates hundreds of tanh activations per
 * prediction; libm's tanh is accurate to < 1 ulp but costs ~20 ns per
 * call on commodity hardware, which caps ensemble serving throughput
 * well below the design target. fastTanh() trades that last digit for
 * a ~3x cheaper evaluation: a piecewise cubic Hermite interpolant of
 * tanh on |x| < 4 (absolute error below 5e-9, orders of magnitude
 * under the predictors' own model error) with an exact exp-based tail.
 *
 * The interpolant is defined inline so the batched forward passes can
 * inline it per lane: an out-of-line call per activation serialises
 * the lanes' otherwise independent evaluation chains and was the
 * largest single cost of the batch kernels.
 */

#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "base/simd.hh"

namespace acdse
{

namespace detail
{

/** Cubic Hermite coefficients for one tanh interval, in t = x - x0. */
struct TanhSegment
{
    double f;   //!< tanh(x0)
    double d;   //!< tanh'(x0)
    double c2;  //!< quadratic coefficient
    double c3;  //!< cubic coefficient
};

constexpr std::size_t kTanhSegments = 256;
// A power-of-two step (1/64) lets the segment lookup multiply by the
// exactly-representable reciprocal instead of dividing -- a divide is
// the single most expensive operation in the interpolant, and with 10
// activations per network forward pass it was the hot path's largest
// serial-latency contributor. x * 64.0 and x / 0.015625 round
// identically in IEEE-754, so this is a pure speedup.
constexpr double kTanhTableLimit = 4.0;
constexpr double kTanhStep =
    kTanhTableLimit / static_cast<double>(kTanhSegments);
constexpr double kTanhInvStep =
    static_cast<double>(kTanhSegments) / kTanhTableLimit;
static_assert(kTanhStep * kTanhInvStep == 1.0,
              "table step must be an exact power of two");

/**
 * The interpolation table, built from std::tanh on first use (a magic
 * static, so initialisation is thread-safe and the table is immutable
 * afterwards). Matching values *and* derivatives at every node keeps
 * the maximum error of each cubic at h^4/384 * max|tanh''''| ~ 6e-10.
 */
inline const std::array<TanhSegment, kTanhSegments> &
tanhTable()
{
    static const std::array<TanhSegment, kTanhSegments> segments = [] {
        std::array<TanhSegment, kTanhSegments> t{};
        for (std::size_t k = 0; k < kTanhSegments; ++k) {
            const double x0 = static_cast<double>(k) * kTanhStep;
            const double x1 = x0 + kTanhStep;
            const double f0 = std::tanh(x0);
            const double f1 = std::tanh(x1);
            const double d0 = 1.0 - f0 * f0;
            const double d1 = 1.0 - f1 * f1;
            const double slope = (f1 - f0) / kTanhStep;
            t[k].f = f0;
            t[k].d = d0;
            t[k].c2 = (3.0 * slope - 2.0 * d0 - d1) / kTanhStep;
            t[k].c3 = (d0 + d1 - 2.0 * slope) / (kTanhStep * kTanhStep);
        }
        return t;
    }();
    return segments;
}

/** Out-of-line |x| >= 4 tail of fastTanh (rare for trained networks). */
double fastTanhTail(double x);

} // namespace detail

/**
 * tanh(x) to ~5e-9 absolute accuracy over all of R.
 *
 * |x| < 4 (99.9% of trained-network pre-activations) is served from a
 * 256-interval cubic Hermite table built from std::tanh at first use
 * (step 1/64, a power of two, so the segment lookup is a multiply,
 * not a divide); larger magnitudes fall back to the exact identity
 * tanh(x) = (1 - e^{-2|x|}) / (1 + e^{-2|x|}), and |x| >= 19.0625
 * saturates to +/-1 (tanh is 1 to double precision there). Odd
 * symmetry is exact: fastTanh(-x) == -fastTanh(x).
 */
inline double
fastTanh(double x)
{
    const double ax = std::fabs(x);
    if (ax < detail::kTanhTableLimit) [[likely]] {
        const double u = ax * detail::kTanhInvStep;
        const auto k = static_cast<std::size_t>(u);
        const double t = (u - static_cast<double>(k)) * detail::kTanhStep;
        const detail::TanhSegment &s = detail::tanhTable()[k];
        const double p = s.f + t * (s.d + t * (s.c2 + t * s.c3));
        return std::copysign(p, x);
    }
    return detail::fastTanhTail(x);
}

#ifdef ACDSE_SIMD_VECTOR

namespace detail
{

/** Integer view of a Chunk for IEEE sign-bit manipulation. */
typedef std::int64_t ChunkBits
    __attribute__((vector_size(sizeof(simd::Chunk))));
/** One int32 per chunk lane, for the segment indices. */
typedef std::int32_t ChunkIdx
    __attribute__((vector_size(simd::kChunkLanes * sizeof(std::int32_t))));

/**
 * Gather each lane's segment coefficients into four lane-parallel
 * vectors. A template on the vector type so the two-lane
 * shuffle-transpose specialisation below only type-checks at the
 * width it is written for (`if constexpr` in a non-template function
 * still checks the discarded branch).
 */
template <typename V>
inline void
gatherSegments(const ChunkIdx k, V &fv, V &dv, V &c2v, V &c3v)
{
    constexpr std::size_t n = sizeof(V) / sizeof(double);
    if constexpr (n == 2) {
        // Gather the two coefficient pairs of each lane's segment with
        // vector loads and transpose with shuffles -- scattering them
        // through a scalar array costs a failed store-forward per load.
        const TanhSegment &s0 = tanhTable()[static_cast<std::size_t>(k[0])];
        const TanhSegment &s1 = tanhTable()[static_cast<std::size_t>(k[1])];
        V fd0;
        V fd1;
        V cc0;
        V cc1;
        __builtin_memcpy(&fd0, &s0.f, sizeof fd0);
        __builtin_memcpy(&fd1, &s1.f, sizeof fd1);
        __builtin_memcpy(&cc0, &s0.c2, sizeof cc0);
        __builtin_memcpy(&cc1, &s1.c2, sizeof cc1);
        fv = __builtin_shufflevector(fd0, fd1, 0, 2);
        dv = __builtin_shufflevector(fd0, fd1, 1, 3);
        c2v = __builtin_shufflevector(cc0, cc1, 0, 2);
        c3v = __builtin_shufflevector(cc0, cc1, 1, 3);
    } else {
        for (std::size_t l = 0; l < n; ++l) {
            const TanhSegment &s =
                tanhTable()[static_cast<std::size_t>(k[l])];
            fv[l] = s.f;
            dv[l] = s.d;
            c2v[l] = s.c2;
            c3v[l] = s.c3;
        }
    }
}

} // namespace detail

/**
 * fastTanh on one machine vector, element-wise identical to the scalar
 * function (enforced by tests/test_fast_math.cc): when every lane is
 * on the table, each step (abs, scale, truncate, interpolate,
 * copysign) is the per-lane IEEE operation the scalar path performs,
 * just issued packed, so the batch kernels' activations never leave
 * vector registers; if any lane is off-table (or NaN) the whole chunk
 * takes the scalar function per lane. Only the table lookups stay
 * scalar -- the baseline ISA has no gather.
 */
inline simd::Chunk
fastTanhChunk(simd::Chunk x)
{
    using detail::ChunkBits;
    using detail::ChunkIdx;
    using detail::kTanhInvStep;
    using detail::kTanhStep;
    using detail::kTanhTableLimit;
    constexpr std::size_t n = simd::kChunkLanes;
    ChunkBits signBit;
    simd::Chunk limit;
    for (std::size_t l = 0; l < n; ++l) {
        signBit[l] = INT64_MIN;
        limit[l] = kTanhTableLimit;
    }
    const auto ax =
        (simd::Chunk)((ChunkBits)x & ~signBit); // |x| per lane
    // Lane-wise ax < limit yields all-ones/all-zero int lanes; NaN
    // compares false, routing the chunk to the scalar tail like the
    // scalar function's own branch.
    const ChunkBits in = ax < limit;
    std::int64_t all = in[0];
    for (std::size_t l = 1; l < n; ++l)
        all &= in[l];
    if (all) [[likely]] {
        const simd::Chunk u = ax * kTanhInvStep;
        const ChunkIdx k = __builtin_convertvector(u, ChunkIdx);
        const simd::Chunk t =
            (u - __builtin_convertvector(k, simd::Chunk)) * kTanhStep;
        simd::Chunk fv;
        simd::Chunk dv;
        simd::Chunk c2v;
        simd::Chunk c3v;
        detail::gatherSegments(k, fv, dv, c2v, c3v);
        const simd::Chunk p = fv + t * (dv + t * (c2v + t * c3v));
        // copysign(p, x) per lane: p's magnitude, x's sign bit.
        return (simd::Chunk)(((ChunkBits)p & ~signBit) |
                             ((ChunkBits)x & signBit));
    }
    simd::Chunk r;
    for (std::size_t l = 0; l < n; ++l)
        r[l] = fastTanh(x[l]);
    return r;
}

#endif // ACDSE_SIMD_VECTOR

} // namespace acdse
