#include "base/file_lock.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "base/logging.hh"

namespace acdse
{

FileLock::FileLock(std::string path) : path_(std::move(path))
{
    // O_CLOEXEC: worker processes fork+exec nothing today, but a lock
    // descriptor must never leak into an unrelated child regardless.
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        panic("cannot open lock file '", path_,
              "': ", std::strerror(errno));
    }
}

FileLock::~FileLock()
{
    if (fd_ >= 0)
        ::close(fd_); // releases any held flock
}

void
FileLock::lock()
{
    while (::flock(fd_, LOCK_EX) != 0) {
        if (errno != EINTR) {
            panic("flock('", path_, "') failed: ",
                  std::strerror(errno));
        }
    }
}

void
FileLock::unlock()
{
    if (::flock(fd_, LOCK_UN) != 0)
        panic("flock unlock('", path_, "') failed: ",
              std::strerror(errno));
}

bool
FileLock::tryLock()
{
    if (::flock(fd_, LOCK_EX | LOCK_NB) == 0)
        return true;
    if (errno == EWOULDBLOCK || errno == EINTR)
        return false;
    panic("flock try('", path_, "') failed: ", std::strerror(errno));
}

} // namespace acdse
