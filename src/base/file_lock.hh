/**
 * @file
 * Advisory file locking for cross-process mutual exclusion.
 *
 * The job system's workers are separate processes sharing one cache
 * directory; the in-process Mutex wrappers (base/sync.hh) cannot
 * arbitrate between them. FileLock wraps flock(2) on a dedicated lock
 * file: every FileLock instance opens its own descriptor, so exclusion
 * holds both between processes and between threads of one process
 * (flock serialises on the open file description, not the process).
 *
 * The lock is advisory -- it only orders participants that take it --
 * and it vanishes with the descriptor, so a SIGKILL'd holder can never
 * leave the lock stuck: the kernel releases it when the process dies.
 * That property is exactly what a crash-safe job queue needs.
 *
 * The capability annotations make lock discipline visible to Clang's
 * -Wthread-safety analysis the same way the Mutex wrappers do.
 */

#pragma once

#include <string>

#include "base/sync.hh"

namespace acdse
{

/** An flock(2)-based advisory lock on a dedicated lock file. */
class ACDSE_CAPABILITY("mutex") FileLock
{
  public:
    /**
     * Open (creating if absent) the lock file. Does not take the lock.
     * Panics if the file cannot be opened: the lock file lives next to
     * the journal it guards, so an unopenable path is a caller bug.
     */
    explicit FileLock(std::string path);

    /** Closes the descriptor, releasing any held lock. */
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** Block until the exclusive lock is held. */
    void lock() ACDSE_ACQUIRE();

    /** Release the exclusive lock. */
    void unlock() ACDSE_RELEASE();

    /** Take the lock only if it is free; true on success. */
    bool tryLock() ACDSE_TRY_ACQUIRE(true);

    /** The lock file's path. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/** RAII scope holding a FileLock for its lifetime. */
class ACDSE_SCOPED_CAPABILITY FileLockGuard
{
  public:
    explicit FileLockGuard(FileLock &lock) ACDSE_ACQUIRE(lock)
        : lock_(lock)
    {
        lock_.lock();
    }

    ~FileLockGuard() ACDSE_RELEASE() { lock_.unlock(); }

    FileLockGuard(const FileLockGuard &) = delete;
    FileLockGuard &operator=(const FileLockGuard &) = delete;

  private:
    FileLock &lock_;
};

} // namespace acdse
