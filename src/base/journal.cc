#include "base/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

namespace
{

/** The line prefix naming the record format version. */
constexpr std::string_view kMagic = "J1";

/** Hex digits in the per-line checksum field. */
constexpr std::size_t kCrcDigits = 16;

std::string
crcHex(std::string_view content)
{
    char buf[kCrcDigits + 1];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(content)));
    return buf;
}

/** Parse exactly 16 lowercase hex digits; false on anything else. */
bool
parseCrc(std::string_view text, std::uint64_t &out)
{
    if (text.size() != kCrcDigits)
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    out = value;
    return true;
}

} // namespace

bool
Journal::exists() const
{
    std::error_code ec;
    return std::filesystem::exists(path_, ec);
}

JournalReplay
Journal::replay() const
{
    std::ifstream in(path_, std::ios::binary);
    if (!in) {
        if (!exists())
            return {}; // never written: a valid empty journal
        throw JournalError("cannot read journal '" + path_ + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return decode(buffer.str());
}

JournalReplay
Journal::decode(std::string_view bytes)
{
    JournalReplay out;
    std::size_t start = 0;
    while (start < bytes.size()) {
        const std::size_t nl = bytes.find('\n', start);
        if (nl == std::string_view::npos) {
            // Torn tail: an append that never completed (or a
            // truncated copy). Dropping it is safe -- see the header.
            out.tornTail = true;
            break;
        }
        const std::string_view line = bytes.substr(start, nl - start);
        const std::size_t recordIndex = out.records.size();
        auto malformed = [&](const char *why) -> JournalError {
            return JournalError("journal record " +
                                std::to_string(recordIndex) + " at byte " +
                                std::to_string(start) + ": " + why);
        };

        const std::size_t lastComma = line.rfind(',');
        if (lastComma == std::string_view::npos)
            throw malformed("no checksum field");
        const std::string_view content = line.substr(0, lastComma);
        std::uint64_t stored = 0;
        if (!parseCrc(line.substr(lastComma + 1), stored))
            throw malformed("bad checksum field");
        if (fnv1a64(content) != stored)
            throw malformed("checksum mismatch");

        // Split the verified content into fields.
        std::vector<std::string> fields;
        std::size_t fieldStart = 0;
        for (std::size_t i = 0; i <= content.size(); ++i) {
            if (i == content.size() || content[i] == ',') {
                fields.emplace_back(
                    content.substr(fieldStart, i - fieldStart));
                fieldStart = i + 1;
            }
        }
        if (fields.size() < 2 || fields.front() != kMagic)
            throw malformed("bad record magic");
        for (const auto &field : fields) {
            if (field.empty())
                throw malformed("empty field");
        }
        fields.erase(fields.begin()); // drop the magic
        out.records.push_back(std::move(fields));
        start = nl + 1;
        out.validBytes = start;
    }
    return out;
}

void
Journal::repair(const JournalReplay &state) const
{
    if (!state.tornTail)
        return;
    if (::truncate(path_.c_str(),
                   static_cast<off_t>(state.validBytes)) != 0) {
        panic("cannot repair journal '", path_,
              "': ", std::strerror(errno));
    }
}

std::string
Journal::formatRecord(const std::vector<std::string> &fields)
{
    ACDSE_CHECK(!fields.empty(), "journal record needs fields");
    std::string content(kMagic);
    for (const auto &field : fields) {
        ACDSE_CHECK(!field.empty() &&
                        field.find_first_of(",\n\r") == std::string::npos,
                    "journal field must be non-empty and free of "
                    "commas/newlines: '", field, "'");
        content += ',';
        content += field;
    }
    return content + ',' + crcHex(content) + '\n';
}

void
Journal::append(const std::vector<std::string> &fields) const
{
    const std::string line = formatRecord(fields);
    const int fd = ::open(path_.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        panic("cannot open journal '", path_,
              "' for append: ", std::strerror(errno));
    }
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n = ::write(fd, line.data() + written,
                                  line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            panic("journal append to '", path_,
                  "' failed: ", std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

} // namespace acdse
