/**
 * @file
 * An append-only, per-record-checksummed journal of state transitions,
 * the persistence substrate of the job system (src/jobs).
 *
 * Every record is one text line
 *
 *   J1,<field0>,<field1>,...,<fnv1a64 of everything before it, hex>\n
 *
 * appended with a single write(2). The format is designed so that any
 * damage a crash or bit rot can inflict is either recoverable or loudly
 * typed -- never a silently wrong replay:
 *
 *  - A torn tail (the final line missing its newline, e.g. a writer
 *    SIGKILL'd mid-append or a truncated copy) is dropped. Journal
 *    records are memos of progress over idempotent, atomically
 *    checkpointed work, so losing a *suffix* of records only means
 *    redoing work, never corrupting state.
 *
 *  - Any damage to an *interior*, newline-terminated line -- a flipped
 *    bit, an edited field, a spliced file -- fails the per-record
 *    checksum or the format check and throws JournalError. (FNV-1a
 *    multiplies by an odd prime, so any single-bit change to a line
 *    always changes its hash.)
 *
 * Replay therefore returns a verified *prefix* of what was appended,
 * or throws. Callers that are about to append after a crash call
 * repair() first, which truncates a torn tail so the next record does
 * not splice onto partial bytes.
 *
 * Appends are not internally locked: callers (jobs::JobQueue) hold a
 * FileLock spanning their read-decide-append critical section anyway,
 * which is the only multi-writer discipline that makes semantic sense.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace acdse
{

/** Thrown on a malformed or corrupted journal. */
class JournalError : public std::runtime_error
{
  public:
    explicit JournalError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The verified contents of a journal file. */
struct JournalReplay
{
    /** Every verified record, in append order. */
    std::vector<std::vector<std::string>> records;
    /** Byte length of the verified prefix (end of last full line). */
    std::size_t validBytes = 0;
    /** Whether bytes past validBytes were dropped as a torn tail. */
    bool tornTail = false;
};

/** One append-only record log at a fixed path. */
class Journal
{
  public:
    explicit Journal(std::string path) : path_(std::move(path)) {}

    /** The journal file's path. */
    const std::string &path() const { return path_; }

    /** Whether the journal file exists on disk. */
    bool exists() const;

    /**
     * Read and verify the whole journal. A missing file replays empty
     * (a journal that was never written is a valid empty journal).
     * @throws JournalError on any damaged terminated record.
     */
    JournalReplay replay() const;

    /**
     * Truncate a torn tail identified by @p state so the next append
     * starts on a clean line boundary. No-op when the tail is intact.
     * Callers must hold the journal's FileLock.
     */
    void repair(const JournalReplay &state) const;

    /**
     * Append one record as a single write(2). Fields must be non-empty
     * and free of ',' and newlines (enforced with a check: records are
     * produced by code, not users). Callers must hold the journal's
     * FileLock when other writers may exist. Panics on I/O failure.
     */
    void append(const std::vector<std::string> &fields) const;

    /** Format one record as its full journal line (for tests). */
    static std::string formatRecord(
        const std::vector<std::string> &fields);

    /**
     * Verify and decode one buffer of journal bytes (replay() on an
     * in-memory image; the corruption tests drive this directly).
     */
    static JournalReplay decode(std::string_view bytes);

  private:
    std::string path_;
};

} // namespace acdse
