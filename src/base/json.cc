#include "base/json.hh"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // the colon was already written by key()
    }
    if (!firstInScope_.empty()) {
        if (!firstInScope_.back())
            out_ += ',';
        firstInScope_.back() = false;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    firstInScope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ACDSE_CHECK(!firstInScope_.empty() && !afterKey_,
                "endObject without a matching beginObject");
    firstInScope_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    firstInScope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ACDSE_CHECK(!firstInScope_.empty() && !afterKey_,
                "endArray without a matching beginArray");
    firstInScope_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    ACDSE_CHECK(!firstInScope_.empty() && !afterKey_,
                "key() outside an object");
    separate();
    out_ += '"';
    appendEscaped(name);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    ACDSE_CHECK(std::isfinite(number),
                "JSON cannot represent a non-finite number");
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    appendEscaped(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

void
JsonWriter::appendEscaped(std::string_view text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\t':
            out_ += "\\t";
            break;
          case '\r':
            out_ += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
}

const std::string &
JsonWriter::str() const
{
    ACDSE_CHECK(firstInScope_.empty() && !afterKey_,
                "JSON document has unclosed scopes");
    return out_;
}

void
writeTextAtomic(const std::string &path, const std::string &content)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp);
        if (!os)
            panic("cannot open '", tmp, "' for writing");
        os << content;
        if (!os)
            panic("failed while writing '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        panic("cannot rename '", tmp, "' to '", path, "'");
    }
}

} // namespace acdse
