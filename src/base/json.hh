/**
 * @file
 * Minimal JSON emission for the machine-readable benchmark trajectory
 * (BENCH_*.json, checked by tools/ci/check_bench_regression.py).
 *
 * This is a writer only -- the repo never parses JSON in C++ -- and it
 * supports exactly what the bench format needs: objects, arrays,
 * strings, bools and finite numbers. Files land atomically
 * (temp + rename) like every other artifact the project writes.
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace acdse
{

/**
 * Streaming JSON writer with automatic comma placement.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject().key("bench").value("train").key("metrics");
 *   w.beginObject().key("x").value(1.5).endObject();
 *   w.endObject();
 *   writeTextAtomic(path, w.str());
 *
 * Misuse (value without a key inside an object, unbalanced begin/end,
 * non-finite numbers) is a programming error and fails a check.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);
    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);

    /** The finished document; checks that all scopes are closed. */
    const std::string &str() const;

  private:
    /** Comma/colon bookkeeping before emitting a key or value. */
    void separate();

    void appendEscaped(std::string_view text);

    std::string out_;
    std::vector<bool> firstInScope_; //!< per open scope
    bool afterKey_ = false;
};

/**
 * Write @p content to @p path atomically (temp file + rename), so a
 * concurrent reader or a crash can never observe a truncated file.
 */
void writeTextAtomic(const std::string &path,
                     const std::string &content);

} // namespace acdse
