/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() for user errors (bad arguments,
 * impossible configuration requests), panic() for internal invariant
 * violations, warn()/inform() for non-fatal status messages. The
 * contract-check macros built on panic() live in base/check.hh.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace acdse
{

namespace detail
{

/** Concatenate a sequence of streamable values into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Abort with a message. Use for conditions that indicate a bug in this
 * library itself, never for user errors.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/**
 * Exit with an error code. Use for conditions caused by the caller
 * (invalid configuration, missing file, ...).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Print a warning that does not stop execution. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

} // namespace acdse

