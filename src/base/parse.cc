#include "base/parse.hh"

#include <charconv>
#include <cmath>
#include <string>

#include "base/logging.hh"

namespace acdse
{

namespace
{

template <typename T>
std::optional<T>
parseIntegral(std::string_view text)
{
    // std::from_chars accepts a leading '-' for signed types only and
    // never skips whitespace, which is exactly the strictness we want;
    // a '+' prefix is rejected like any other non-digit.
    T value{};
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, 10);
    if (ec != std::errc{} || ptr != last || text.empty())
        return std::nullopt;
    return value;
}

} // namespace

std::optional<std::uint64_t>
parseU64(std::string_view text)
{
    return parseIntegral<std::uint64_t>(text);
}

std::optional<std::int64_t>
parseI64(std::string_view text)
{
    return parseIntegral<std::int64_t>(text);
}

std::optional<double>
parseF64(std::string_view text)
{
    double value{};
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || text.empty())
        return std::nullopt;
    // from_chars parses "nan" and "inf"; neither is a number any
    // boundary in this codebase wants to let through.
    if (!std::isfinite(value))
        return std::nullopt;
    return value;
}

std::uint64_t
parseU64OrDie(std::string_view what, std::string_view text)
{
    const auto value = parseU64(text);
    if (!value) {
        fatal(what, " expects an unsigned integer, got '",
              std::string(text), "'");
    }
    return *value;
}

std::int64_t
parseI64OrDie(std::string_view what, std::string_view text)
{
    const auto value = parseI64(text);
    if (!value) {
        fatal(what, " expects an integer, got '", std::string(text),
              "'");
    }
    return *value;
}

double
parseF64OrDie(std::string_view what, std::string_view text)
{
    const auto value = parseF64(text);
    if (!value) {
        fatal(what, " expects a finite number, got '", std::string(text),
              "'");
    }
    return *value;
}

} // namespace acdse
