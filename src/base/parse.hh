/**
 * @file
 * Checked numeric parsing for everything that crosses a text boundary:
 * CLI flags, environment variables, CSV cells.
 *
 * The C ato* family silently returns 0 on garbage and has
 * undefined behaviour on overflow; strtoull accepts "-1" by wrapping
 * it to 2^64-1. Both bug classes have shipped in this repo's CLIs, so
 * the project lint (tools/lint/acdse_lint.py) bans those functions
 * outside this file and routes all parsing through here.
 *
 * The strict core functions return std::nullopt unless the *entire*
 * string is a valid in-range number: no leading/trailing whitespace or
 * garbage, no overflow, no '-' for unsigned. The *OrDie wrappers are
 * for CLI/environment parsing where a bad value should stop the
 * process with a message naming the offending input.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace acdse
{

/** Parse a full string as u64; nullopt on garbage/overflow/sign. */
std::optional<std::uint64_t> parseU64(std::string_view text);

/** Parse a full string as i64; nullopt on garbage or overflow. */
std::optional<std::int64_t> parseI64(std::string_view text);

/** Parse a full string as a finite double; nullopt otherwise. */
std::optional<double> parseF64(std::string_view text);

/**
 * @name Fatal-on-error wrappers.
 * @p what names the input's source ("--batch", "ACDSE_THREADS") in the
 * error message. fatal(), not panic(): bad flags and environment are
 * user errors, not library bugs.
 */
/** @{ */
std::uint64_t parseU64OrDie(std::string_view what, std::string_view text);
std::int64_t parseI64OrDie(std::string_view what, std::string_view text);
double parseF64OrDie(std::string_view what, std::string_view text);
/** @} */

} // namespace acdse
