#include "base/rng.hh"

#include <cmath>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : spareGaussian(0.0), hasSpare(false)
{
    std::uint64_t state = seed;
    for (auto &word : s)
        word = splitMix64(state);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    ACDSE_CHECK(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    ACDSE_CHECK(lo <= hi, "nextRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spareGaussian;
    }
    double u, v, r2;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        r2 = u * u + v * v;
    } while (r2 >= 1.0 || r2 == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(r2) / r2);
    spareGaussian = v * factor;
    hasSpare = true;
    return u * factor;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    ACDSE_CHECK(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return 1;
    // Success probability so that E[X] = mean for X in {1, 2, ...}.
    const double p = 1.0 / mean;
    const double u = nextDouble();
    const double x = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    return static_cast<std::uint64_t>(x);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextDiscrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    ACDSE_CHECK(total > 0.0, "discrete distribution needs positive mass");
    double target = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace acdse
