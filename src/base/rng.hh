/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (design-space sampling, trace
 * generation, ANN weight initialisation, SGD shuffling) draw from Rng so
 * that every experiment is exactly reproducible from its seed.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace acdse
{

/**
 * xoshiro256** generator seeded via SplitMix64.
 *
 * Small, fast, and good enough statistically for simulation workloads;
 * crucially it is fully deterministic across platforms, unlike
 * std::default_random_engine / std::uniform_int_distribution whose
 * behaviour is implementation-defined.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal deviate (Box-Muller, cached spare). */
    double nextGaussian();

    /** Geometric-ish positive integer with the given mean (>= 1). */
    std::uint64_t nextGeometric(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Draw an index according to a discrete distribution given by
     * non-negative weights (need not be normalised).
     */
    std::size_t nextDiscrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index-addressable container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(c[i - 1], c[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s[4];
    double spareGaussian;
    bool hasSpare;
};

} // namespace acdse

