/**
 * @file
 * Portable fixed-width lane kernels for batched model inference.
 *
 * The batched predict path vectorises *across design points*: a block
 * of kLanes points travels through the network together, one point per
 * lane, with every feature-loop iteration applying the same operation
 * to all lanes. Because each lane performs exactly the scalar path's
 * operation sequence (same additions, in the same order, on the same
 * values), batched results are bit-identical to per-point prediction
 * -- vectorisation is a scheduling decision, never a numerical one,
 * matching the thread-pool determinism contract.
 *
 * On GCC and Clang the kernels work in Chunk, a compiler
 * vector-extension type of machine-register width (SSE2 xmm, NEON q):
 * element i of a vector multiply/add is the *same* IEEE operation the
 * scalar path performs, so the bit-exact contract is unaffected, and
 * an explicit vector type pins the codegen the design depends on --
 * accumulators stay in registers across a whole dot product, one
 * packed op per chunk. (Plain fixed-trip loops express the same
 * thing, but the autovectoriser is free to transpose the loop nest
 * into a shuffle-heavy form slower than scalar code.) Other compilers
 * fall back to plain per-lane loops with identical element-wise
 * semantics.
 *
 * Configure with -DACDSE_SIMD=OFF (which defines ACDSE_NO_SIMD) to
 * collapse the lane width to 1; the batch APIs keep working and, by
 * the bit-exact contract, keep returning the same doubles -- the
 * switch is an escape hatch for compilers that mis-handle the wide
 * kernels, not a numerics knob.
 *
 * Why lanes win even without wide registers: the scalar dot product
 * `acc += w[i] * x[i]` is a serial dependency chain through acc, so a
 * per-point forward pass is latency-bound on floating-point addition.
 * A block carries kLanes independent accumulator chains, which pipeline
 * and vectorise; the speedup is ILP first, SIMD second.
 */

#pragma once

#include <cstddef>
#include <cstring>

namespace acdse::simd
{

#ifdef ACDSE_NO_SIMD
/** Lane width with SIMD disabled: scalar-shaped batch kernels. */
inline constexpr std::size_t kLanes = 1;
#else
/**
 * Points per batch block: 8 doubles = four SSE2 / two AVX2 vectors,
 * enough independent chains to hide FP-add latency without spilling
 * the accumulator block out of registers.
 */
inline constexpr std::size_t kLanes = 8;
#endif

#if !defined(ACDSE_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))

/**
 * Defined when the vector-extension Chunk type below is available;
 * kernels key off this to pick the chunk-wise implementation (see
 * ml/mlp.cc and the block activation in base/fast_math.hh).
 */
#define ACDSE_SIMD_VECTOR 1

/**
 * One machine vector of doubles. 16 bytes is the portable native
 * width (SSE2 xmm, NEON q registers): a register-sized chunk is the
 * unit the compiler will actually keep in a register, so a block is
 * handled as kChunks of these rather than one oversized vector type
 * (which GCC lowers through stack slots -- putting the accumulators
 * back in memory, the exact thing the block design exists to avoid).
 *
 * Deliberately 16 bytes even when the build targets AVX/AVX-512
 * (ACDSE_NATIVE): at a fixed 8-point block, wider chunks mean fewer
 * independent accumulator chains -- 64-byte chunks leave a single
 * latency-bound chain per neuron and measured ~30% *slower* than
 * four 16-byte chains on an AVX-512 host; 32-byte chunks measured
 * neutral. The chains, not the vector width, carry the speedup.
 */
typedef double Chunk __attribute__((vector_size(16)));

/** Lanes per machine vector. */
inline constexpr std::size_t kChunkLanes = sizeof(Chunk) / sizeof(double);

/** Machine vectors per block. */
inline constexpr std::size_t kChunks = kLanes / kChunkLanes;
static_assert(kLanes % kChunkLanes == 0,
              "block width must be a whole number of machine vectors");

/** Load one chunk from @p p (no alignment requirement). */
inline Chunk
chunkLoad(const double *p)
{
    Chunk c;
    std::memcpy(&c, p, sizeof c);
    return c;
}

/** Store one chunk to @p p (no alignment requirement). */
inline void
chunkStore(double *p, Chunk c)
{
    std::memcpy(p, &c, sizeof c);
}

/** A chunk with every lane set to @p v. */
inline Chunk
chunkBroadcast(double v)
{
    Chunk c;
    for (std::size_t l = 0; l < kChunkLanes; ++l)
        c[l] = v;
    return c;
}

#endif // vector-extension path

/**
 * Transpose one block of @p kLanes row-major points (point l starts at
 * rows + l * d) into a feature-major block: soa[i * kLanes + l] =
 * feature i of point l. Pure data movement -- done once per block and
 * shared by every consumer of the block (e.g. each member of an
 * ensemble), instead of each of them re-gathering the same strided
 * rows.
 */
inline void
transposeBlock(const double *__restrict rows, std::size_t d,
               double *__restrict soa)
{
    for (std::size_t l = 0; l < kLanes; ++l)
        for (std::size_t i = 0; i < d; ++i)
            soa[i * kLanes + l] = rows[l * d + i];
}

} // namespace acdse::simd
