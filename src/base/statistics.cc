#include "base/statistics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{
namespace stats
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double total = 0.0;
    for (double x : xs)
        total += (x - mu) * (x - mu);
    return total / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
covariance(std::span<const double> xs, std::span<const double> ys)
{
    ACDSE_CHECK(xs.size() == ys.size(), "covariance needs equal sizes");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        total += (xs[i] - mx) * (ys[i] - my);
    return total / static_cast<double>(xs.size());
}

double
correlation(std::span<const double> xs, std::span<const double> ys)
{
    const double sx = stddev(xs);
    const double sy = stddev(ys);
    if (sx == 0.0 || sy == 0.0)
        return 0.0;
    return covariance(xs, ys) / (sx * sy);
}

double
rmae(std::span<const double> predictions, std::span<const double> actuals)
{
    ACDSE_CHECK(predictions.size() == actuals.size(),
                 "rmae needs equal sizes");
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < actuals.size(); ++i) {
        if (actuals[i] == 0.0)
            continue;
        total += std::abs((predictions[i] - actuals[i]) / actuals[i]);
        ++counted;
    }
    return counted ? 100.0 * total / static_cast<double>(counted) : 0.0;
}

double
quantile(std::span<const double> xs, double q)
{
    ACDSE_CHECK(!xs.empty(), "quantile of empty sample");
    ACDSE_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction out of range");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

FiveNumberSummary
fiveNumberSummary(std::span<const double> xs)
{
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    std::span<const double> s{sorted};
    return {sorted.front(), quantile(s, 0.25), quantile(s, 0.5),
            quantile(s, 0.75), sorted.back()};
}

RunningStats::RunningStats()
    : n(0), mu(0.0), m2(0.0),
      lo(std::numeric_limits<double>::infinity()),
      hi(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::add(double x)
{
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
euclideanDistance(std::span<const double> xs, std::span<const double> ys)
{
    ACDSE_CHECK(xs.size() == ys.size(), "distance needs equal sizes");
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double d = xs[i] - ys[i];
        total += d * d;
    }
    return std::sqrt(total);
}

} // namespace stats
} // namespace acdse
