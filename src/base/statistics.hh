/**
 * @file
 * Descriptive statistics used throughout the evaluation harness.
 *
 * The paper's two headline quality measures are implemented here:
 * relative mean absolute error (rmae, Section 6.1) and the Pearson
 * correlation coefficient.
 */

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acdse
{
namespace stats
{

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Population variance; 0 for fewer than two elements. */
double variance(std::span<const double> xs);

/** Population standard deviation. */
double stddev(std::span<const double> xs);

/** Covariance of two equally-sized samples. */
double covariance(std::span<const double> xs, std::span<const double> ys);

/**
 * Pearson correlation coefficient in [-1, 1].
 *
 * Returns 0 when either sample is constant (no linear relation can be
 * established), matching the paper's usage where corr = 0 means "no
 * linear relation".
 */
double correlation(std::span<const double> xs, std::span<const double> ys);

/**
 * Relative mean absolute error, in percent:
 * mean(|pred - actual| / |actual|) * 100.
 *
 * Elements whose actual value is zero are skipped (cannot contribute a
 * relative error).
 */
double rmae(std::span<const double> predictions,
            std::span<const double> actuals);

/**
 * Linear-interpolated quantile of a sample, q in [0, 1].
 * The input need not be sorted; a sorted copy is made internally.
 */
double quantile(std::span<const double> xs, double q);

/** Convenience five-number summary used by the Fig. 4 reproduction. */
struct FiveNumberSummary
{
    double min;      //!< smallest observation
    double q25;      //!< lower quartile
    double median;   //!< median
    double q75;      //!< upper quartile
    double max;      //!< largest observation
};

/** Compute the five-number summary of a sample. */
FiveNumberSummary fiveNumberSummary(std::span<const double> xs);

/**
 * Single-pass accumulator for mean / variance (Welford) plus min/max.
 * Used where materialising the full sample would be wasteful.
 */
class RunningStats
{
  public:
    RunningStats();

    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n; }
    /** Mean of the observations so far (0 if empty). */
    double mean() const { return n ? mu : 0.0; }
    /** Population variance so far. */
    double variance() const { return n > 1 ? m2 / n : 0.0; }
    /** Population standard deviation so far. */
    double stddev() const;
    /** Smallest observation (+inf if empty). */
    double min() const { return lo; }
    /** Largest observation (-inf if empty). */
    double max() const { return hi; }

  private:
    std::size_t n;
    double mu;
    double m2;
    double lo;
    double hi;
};

/** Euclidean distance between two equally-sized vectors. */
double euclideanDistance(std::span<const double> xs,
                         std::span<const double> ys);

} // namespace stats
} // namespace acdse

