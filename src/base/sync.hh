/**
 * @file
 * Compile-time lock discipline: Clang capability annotations and the
 * annotated mutex wrappers every subsystem locks through.
 *
 * Clang's thread-safety analysis (-Wthread-safety) proves, on every
 * build, that state declared ACDSE_GUARDED_BY(m) is only touched with
 * m held, that functions declared ACDSE_REQUIRES(m) are only called
 * with m held, and that shared (reader) holds are never used to
 * write -- for every path, not just the interleavings a TSan run
 * happens to execute. TSan remains the dynamic complement (it sees
 * atomics, lock-free code and wrong *orderings*; the analysis sees
 * neither) -- see DESIGN.md "Static vs dynamic race coverage".
 *
 * Rules:
 *
 *  - No raw std::mutex / std::shared_mutex / std::condition_variable
 *    outside this header (lint rule acdse-raw-mutex). The std types
 *    carry no capability attributes, so locking through them is
 *    invisible to the analysis.
 *
 *  - Annotate what the mutex protects, not just the mutex:
 *    `std::deque<Task> queue_ ACDSE_GUARDED_BY(mutex_);`. An
 *    unannotated member is unproven, not safe.
 *
 *  - Lock with the scoped types (MutexLock, ReaderLock, WriterLock);
 *    call CondVar::wait(mutex) in a while loop around the predicate
 *    instead of passing a predicate lambda -- the analysis does not
 *    propagate lock state into lambda bodies, so a predicate lambda
 *    reading guarded state would warn spuriously.
 *
 * Off Clang (GCC builds) every macro expands to nothing and the
 * wrappers compile to the exact std primitives they hold; the
 * negative-compile ctest suite (tests/negative_compile) proves the
 * Clang gate actually fires.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define ACDSE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ACDSE_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define ACDSE_CAPABILITY(x) ACDSE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define ACDSE_SCOPED_CAPABILITY ACDSE_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be read/written with the capability held. */
#define ACDSE_GUARDED_BY(x) ACDSE_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched with the capability held. */
#define ACDSE_PT_GUARDED_BY(x) ACDSE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the capability exclusively. */
#define ACDSE_REQUIRES(...) \
    ACDSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define ACDSE_REQUIRES_SHARED(...) \
    ACDSE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability exclusively (and does not release). */
#define ACDSE_ACQUIRE(...) \
    ACDSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared. */
#define ACDSE_ACQUIRE_SHARED(...) \
    ACDSE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability (exclusive or shared). */
#define ACDSE_RELEASE(...) \
    ACDSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases a shared hold of the capability. */
#define ACDSE_RELEASE_SHARED(...) \
    ACDSE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p ... (first arg). */
#define ACDSE_TRY_ACQUIRE(...) \
    ACDSE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock / reentrancy guard). */
#define ACDSE_EXCLUDES(...) \
    ACDSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define ACDSE_RETURN_CAPABILITY(x) \
    ACDSE_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis of one function (comment why). */
#define ACDSE_NO_THREAD_SAFETY_ANALYSIS \
    ACDSE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace acdse
{

/**
 * An annotated exclusive mutex. Prefer the scoped MutexLock; the bare
 * lock()/unlock() members exist for the RAII types and the rare
 * split-scope pattern, and carry the acquire/release annotations so
 * the analysis tracks them wherever they are called.
 */
class ACDSE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACDSE_ACQUIRE() { raw_.lock(); }
    void unlock() ACDSE_RELEASE() { raw_.unlock(); }
    bool tryLock() ACDSE_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex raw_;
};

/**
 * An annotated reader/writer mutex: exclusive for writers
 * (WriterLock), shared for readers (ReaderLock).
 */
class ACDSE_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ACDSE_ACQUIRE() { raw_.lock(); }
    void unlock() ACDSE_RELEASE() { raw_.unlock(); }
    void lockShared() ACDSE_ACQUIRE_SHARED() { raw_.lock_shared(); }
    void unlockShared() ACDSE_RELEASE_SHARED()
    {
        raw_.unlock_shared();
    }

  private:
    std::shared_mutex raw_;
};

/** RAII exclusive hold of a Mutex for the enclosing scope. */
class ACDSE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACDSE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() ACDSE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/** RAII exclusive (writer) hold of a SharedMutex. */
class ACDSE_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mutex) ACDSE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~WriterLock() ACDSE_RELEASE() { mutex_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mutex_;
};

/** RAII shared (reader) hold of a SharedMutex. */
class ACDSE_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mutex) ACDSE_ACQUIRE_SHARED(mutex)
        : mutex_(mutex)
    {
        mutex_.lockShared();
    }

    ~ReaderLock() ACDSE_RELEASE() { mutex_.unlockShared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mutex_;
};

/**
 * A condition variable bound to Mutex. wait() must be called with the
 * mutex held (enforced by ACDSE_REQUIRES) and returns with it held
 * again; callers loop on their predicate:
 *
 *     MutexLock lock(mutex_);
 *     while (!ready_)
 *         cv_.wait(mutex_);
 *
 * There is deliberately no predicate-taking overload: the thread-
 * safety analysis does not see through lambda boundaries, so a
 * predicate lambda reading ACDSE_GUARDED_BY state would warn.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, and reacquire it. */
    void wait(Mutex &mutex) ACDSE_REQUIRES(mutex)
    {
        // The caller already holds mutex (typically via MutexLock), so
        // adopt it for the duration of the wait and release the
        // unique_lock before it can unlock on destruction.
        std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    /**
     * wait() with a deadline: release @p mutex, sleep until notified
     * or @p nanos elapsed, reacquire. Returns true when notified
     * before the deadline. The bounded sleep is what lets a consumer
     * park without a watertight producer-side wakeup protocol: a
     * missed notify costs at most one deadline, not a hang (the
     * prediction service's drainer idles this way).
     */
    bool waitFor(Mutex &mutex, std::uint64_t nanos)
        ACDSE_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
        const std::cv_status status =
            cv_.wait_for(lock, std::chrono::nanoseconds(nanos));
        lock.release();
        return status == std::cv_status::no_timeout;
    }

    void notifyOne() noexcept { cv_.notify_one(); }
    void notifyAll() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace acdse
