#include "base/table.hh"

#include <algorithm>
#include <cstdio>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

Table::Table(std::vector<std::string> header) : header(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    ACDSE_CHECK(row.size() == header.size(),
                 "row width ", row.size(), " != header width ",
                 header.size());
    rows.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::num(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    print_row(header);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows)
        print_row(row);
}

} // namespace acdse
