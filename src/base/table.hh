/**
 * @file
 * Aligned console table printer for the figure/table reproduction
 * binaries. Each bench prints the rows/series of the corresponding
 * paper table or figure through this helper so the output format is
 * uniform across experiments.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace acdse
{

/**
 * Simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"program", "rmae (%)", "corr"});
 *   t.addRow({"applu", Table::num(7.2), Table::num(0.95)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format an integer. */
    static std::string num(long long value);

    /** Render the table, column-aligned, to the given stream. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace acdse

