#include "base/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "base/check.hh"
#include "base/parse.hh"
#include "obs/metrics.hh"

namespace acdse
{

namespace
{

// Set for the lifetime of every spawned worker; parallelFor() uses it
// to detect nesting and degrade to an inline loop instead of blocking
// a worker on other workers (which can deadlock a pool of one).
thread_local bool tl_pool_worker = false;

/**
 * The pool's metrics, shared by every ThreadPool instance. References
 * into the leaked global registry, so workers of static pools can
 * still record during process teardown.
 */
struct PoolMetrics
{
    obs::Counter &tasksRun;
    obs::Gauge &queueDepth;
    obs::Histogram &queueWaitNs;
};

PoolMetrics &
poolMetrics()
{
    // Written once at init (magic-static guarded); only the
    // referenced wait-free metrics mutate after.
    static PoolMetrics metrics{ // NOLINT(acdse-local-static)
        obs::Registry::global().counter("pool/tasks-run"),
        obs::Registry::global().gauge("pool/queue-depth"),
        obs::Registry::global().histogram("pool/queue-wait-ns")};
    return metrics;
}

/** Enqueue timestamp; 0 (and no clock read) when obs is off. */
std::uint64_t
stampNs()
{
    if constexpr (obs::kEnabled)
        return obs::nowNs();
    else
        return 0;
}

} // namespace

/**
 * Shared state of one parallelFor call. Helpers hold it via shared_ptr
 * so a worker that wakes only after the loop completed finds the range
 * exhausted and exits without touching the caller's (gone) frame: the
 * body pointer is only dereferenced after a successful claim, and the
 * caller cannot return while any claimed index is unfinished.
 */
struct ThreadPool::ForJob
{
    std::size_t begin = 0;
    std::size_t total = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};      //!< next unclaimed offset
    std::atomic<std::size_t> completed{0}; //!< finished (or skipped)
    std::atomic<bool> abort{false};        //!< a task threw; wind down
    Mutex mutex;
    CondVar done;
    bool hasException ACDSE_GUARDED_BY(mutex) = false;
    std::size_t exceptionIndex ACDSE_GUARDED_BY(mutex) = 0;
    std::exception_ptr exception ACDSE_GUARDED_BY(mutex);
};

std::size_t
ThreadPool::defaultThreads()
{
    if (const char *value = std::getenv("ACDSE_THREADS");
        value && *value) {
        const auto parsed = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_THREADS", value));
        if (parsed)
            return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    return requested ? requested : defaultThreads();
}

ThreadPool &
ThreadPool::global()
{
    // The process-wide pool singleton: init is magic-static guarded
    // and the pool is internally locked.
    static ThreadPool pool(defaultThreads()); // NOLINT(acdse-local-static)
    return pool;
}

bool
ThreadPool::onWorkerThread()
{
    return tl_pool_worker;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t size = resolveThreads(threads);
    workers_.reserve(size - 1);
    for (std::size_t i = 0; i + 1 < size; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    workCv_.notifyAll();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(Task{std::move(task), stampNs()});
        poolMetrics().queueDepth.set(
            static_cast<std::int64_t>(queue_.size()));
    }
    workCv_.notifyOne();
}

void
ThreadPool::workerLoop()
{
    tl_pool_worker = true;
    for (;;) {
        Task task;
        {
            MutexLock lock(mutex_);
            // A predicate lambda would be invisible to the thread-
            // safety analysis (see base/sync.hh), so loop explicitly.
            while (!stop_ && queue_.empty())
                workCv_.wait(mutex_);
            if (queue_.empty())
                return; // stop_ set and nothing left: drained teardown
            task = std::move(queue_.front());
            queue_.pop_front();
            poolMetrics().queueDepth.set(
                static_cast<std::int64_t>(queue_.size()));
        }
        if constexpr (obs::kEnabled) {
            PoolMetrics &metrics = poolMetrics();
            metrics.tasksRun.add(1);
            metrics.queueWaitNs.record(obs::nowNs() -
                                       task.enqueuedNs);
        }
        task.fn();
    }
}

void
ThreadPool::drain(ForJob &job)
{
    for (;;) {
        const std::size_t lo = job.next.fetch_add(job.grain);
        if (lo >= job.total)
            return;
        const std::size_t hi = std::min(lo + job.grain, job.total);
        for (std::size_t i = lo; i < hi; ++i) {
            if (job.abort.load(std::memory_order_relaxed))
                continue;
            try {
                (*job.body)(job.begin + i);
            } catch (...) {
                MutexLock lock(job.mutex);
                if (!job.hasException || i < job.exceptionIndex) {
                    job.hasException = true;
                    job.exceptionIndex = i;
                    job.exception = std::current_exception();
                }
                job.abort.store(true, std::memory_order_relaxed);
            }
        }
        const std::size_t before = job.completed.fetch_add(hi - lo);
        if (before + (hi - lo) == job.total) {
            // Last block: wake the caller. Taking the mutex orders the
            // notify after the caller's predicate check.
            MutexLock lock(job.mutex);
            job.done.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    ACDSE_CHECK(begin <= end, "parallelFor range is inverted");
    ACDSE_CHECK(grain > 0, "parallelFor grain must be positive");
    if (begin == end)
        return;
    const std::size_t total = end - begin;

    // Serial paths: a pool of one, a loop of one, or a nested call
    // from inside a worker (the outer loop owns the parallelism).
    if (workers_.empty() || total == 1 || tl_pool_worker) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->begin = begin;
    job->total = total;
    job->grain = grain;
    job->body = &body;

    const std::size_t blocks = (total + grain - 1) / grain;
    const std::size_t helpers = std::min(workers_.size(), blocks);
    {
        const std::uint64_t stamp = stampNs();
        MutexLock lock(mutex_);
        for (std::size_t h = 0; h < helpers; ++h)
            queue_.push_back(Task{[job] { drain(*job); }, stamp});
        poolMetrics().queueDepth.set(
            static_cast<std::int64_t>(queue_.size()));
    }
    workCv_.notifyAll();

    drain(*job);
    MutexLock lock(job->mutex);
    while (job->completed.load(std::memory_order_acquire) != total)
        job->done.wait(job->mutex);
    if (job->hasException)
        std::rethrow_exception(job->exception);
}

} // namespace acdse
