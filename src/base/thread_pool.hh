/**
 * @file
 * The shared work scheduler: one fixed pool of worker threads that
 * every heavy loop in the library runs on -- campaign simulation fill,
 * per-program ANN training, ensemble forward passes, evaluation
 * sweeps, and batched prediction serving.
 *
 * Design rules (see README "Parallel execution"):
 *
 *  - Determinism. The pool never changes results. parallelFor() gives
 *    every index to exactly one task, tasks write to caller-indexed
 *    slots, and any reduction happens in index order on the caller.
 *    Code that draws randomness derives a per-index seed (base/rng
 *    splitting) instead of sharing a generator, so a 1-thread and an
 *    N-thread run of the same loop are bit-identical
 *    (tests/test_parallel_determinism.cc enforces this).
 *
 *  - Sizing. A pool of size N is N-1 spawned workers plus the calling
 *    thread, which always participates in parallelFor(). Size 0 means
 *    "resolve the default": the ACDSE_THREADS environment variable
 *    (parsed with base/parse, value 0 = auto) and otherwise the
 *    hardware concurrency. A pool of size 1 spawns no threads at all
 *    and runs everything inline -- the single-thread fallback.
 *
 *  - Nesting. parallelFor() called from inside any pool worker runs
 *    the whole loop serially inline on that worker (supported, not
 *    rejected): the outermost loop owns the parallelism, inner loops
 *    degrade to plain loops, and no combination of nested calls can
 *    deadlock or oversubscribe. submit() from a worker enqueues
 *    normally; blocking on the returned future from inside a worker of
 *    the same pool is the one pattern that can deadlock and is
 *    documented as forbidden.
 *
 *  - Exceptions. A throwing task aborts the remaining (unstarted)
 *    indices of its parallelFor and the lowest-indexed exception
 *    observed is rethrown on the caller. submit() carries exceptions
 *    through the returned future.
 *
 *  - Teardown. The destructor completes all queued submit() work, then
 *    joins; nothing is silently dropped.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "base/sync.hh"

namespace acdse
{

/**
 * A fixed-size worker pool with deterministic parallel loops.
 *
 * Construction spins the workers up, destruction drains the queue and
 * joins them. One process-wide instance (global()) is shared by the
 * library's heavy loops; code that needs an explicit width (tests,
 * benchmarks, the prediction service) constructs its own.
 */
class ThreadPool
{
  public:
    /**
     * The sizing rule shared by every subsystem: ACDSE_THREADS if set
     * and non-zero (parsed strictly; garbage is fatal), otherwise the
     * hardware concurrency, never less than 1.
     */
    static std::size_t defaultThreads();

    /** @p requested if non-zero, otherwise defaultThreads(). */
    static std::size_t resolveThreads(std::size_t requested);

    /** The process-wide shared pool (sized by defaultThreads()). */
    static ThreadPool &global();

    /** True on a thread spawned by any ThreadPool. */
    static bool onWorkerThread();

    /** @param threads total parallelism; 0 resolves the default. */
    explicit ThreadPool(std::size_t threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism: spawned workers plus the calling thread. */
    std::size_t threads() const { return workers_.size() + 1; }

    /** Spawned worker threads (threads() - 1). */
    std::size_t workers() const { return workers_.size(); }

    /**
     * Run @p body(i) for every i in [begin, end), spread across the
     * pool, and return when all of them finished. The caller
     * participates; indices are claimed in blocks of @p grain rising
     * monotonically. Blocks until completion; rethrows the
     * lowest-indexed exception observed (later indices may then be
     * skipped). Safe to call from inside a worker: the loop then runs
     * serially inline (see file comment).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

    /**
     * Enqueue one task and return its future. On a pool with no
     * workers the task runs inline before submit() returns (the future
     * is already ready). Exceptions propagate through the future.
     */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        enqueue([task] { (*task)(); });
        return future;
    }

  private:
    struct ForJob;

    /**
     * One queued unit of work. The enqueue timestamp feeds the
     * pool/queue-wait-ns histogram (src/obs); it is 0 when
     * observability is compiled out.
     */
    struct Task
    {
        std::function<void()> fn;
        std::uint64_t enqueuedNs = 0;
    };

    /** Push one type-erased task and wake a worker. */
    void enqueue(std::function<void()> task);

    /** Worker main loop: pop tasks until stopped and drained. */
    void workerLoop();

    /** Claim and run blocks of @p job until its range is exhausted. */
    static void drain(ForJob &job);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar workCv_;
    std::deque<Task> queue_ ACDSE_GUARDED_BY(mutex_);
    bool stop_ ACDSE_GUARDED_BY(mutex_) = false;
};

} // namespace acdse
