#include "core/architecture_centric_predictor.hh"

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "base/simd.hh"
#include "base/statistics.hh"
#include "base/thread_pool.hh"
#include "obs/trace_span.hh"

namespace acdse
{

ArchitectureCentricPredictor::ArchitectureCentricPredictor(
    ArchCentricOptions options)
    : options_(options)
{
}

void
ArchitectureCentricPredictor::trainOffline(
    const std::vector<ProgramTrainingSet> &trainingSets)
{
    ACDSE_CHECK(!trainingSets.empty(),
                 "need at least one offline training program");
    // One ANN per training program, trained across the shared pool.
    // Every model trains from its own options (weight-init RNG seeded
    // per model) into its own slot, so the parallel result is
    // bit-identical to the serial one.
    const obs::TraceSpan offlineSpan(obs::Registry::global(),
                                     "train/offline");
    // Intern the per-program stages before fanning out so the worker
    // lambdas only touch already-registered (wait-free) stages.
    std::vector<obs::Stage *> stages(trainingSets.size());
    for (std::size_t i = 0; i < trainingSets.size(); ++i) {
        stages[i] = &obs::Registry::global().stage(
            "train/program/" + std::to_string(i));
    }
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models(
        trainingSets.size());
    ThreadPool::global().parallelFor(
        0, trainingSets.size(), [&](std::size_t i) {
            const obs::TraceSpan span(*stages[i]);
            auto model = std::make_shared<ProgramSpecificPredictor>(
                options_.programModel);
            model->train(trainingSets[i].configs,
                         trainingSets[i].values);
            models[i] = std::move(model);
        });
    programNames_.clear();
    for (const auto &set : trainingSets)
        programNames_.push_back(set.name);
    programModels_ = std::move(models);
    offlineTrained_ = true;
    responsesFitted_ = false;
}

void
ArchitectureCentricPredictor::useModels(
    std::vector<std::string> names,
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models)
{
    ACDSE_CHECK(!models.empty(), "need at least one program model");
    ACDSE_CHECK(names.size() == models.size(),
                 "names/models size mismatch");
    for (const auto &model : models)
        ACDSE_CHECK(model && model->trained(), "model not trained");
    programNames_ = std::move(names);
    programModels_ = std::move(models);
    offlineTrained_ = true;
    responsesFitted_ = false;
}

void
ArchitectureCentricPredictor::fitResponses(
    const std::vector<MicroarchConfig> &configs,
    const std::vector<double> &values)
{
    ACDSE_CHECK(offlineTrained_, "fitResponses before trainOffline");
    ACDSE_CHECK(configs.size() == values.size(),
                 "configs/values size mismatch");
    ACDSE_CHECK(!configs.empty(), "need at least one response");
    const obs::TraceSpan span(obs::Registry::global(),
                              "fit/responses");

    // Feature assembly is one ensemble forward pass per (response,
    // model) pair -- the expensive part of the fit. Each model runs
    // its batched kernel over all responses at once (no per-point
    // scratch allocation) into its own model-major slot, so thread
    // count cannot change the matrix handed to the (serial,
    // deterministic) regression solve below.
    const std::size_t n = configs.size();
    const std::size_t m = programModels_.size();
    const std::size_t dim = featureDim();
    ACDSE_CHECK(dim == kNumParams, "ensemble expects ", dim,
                " features, configurations carry ", kNumParams);
    std::vector<double> rows(n * dim);
    for (std::size_t i = 0; i < n; ++i)
        configs[i].featuresInto(&rows[i * dim]);
    std::vector<double> ensemble(m * n);
    ThreadPool::global().parallelFor(0, m, [&](std::size_t j) {
        MlpBatchScratch scratch;
        programModels_[j]->predictBatchFromFeatures(
            rows.data(), n, &ensemble[j * n], scratch);
    });
    std::vector<std::vector<double>> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i].resize(m);
        for (std::size_t j = 0; j < m; ++j)
            xs[i][j] = ensemble[j * n + i];
    }
    regressor_.fit(xs, values, options_.ridge, options_.intercept);
    responsesFitted_ = true;

    std::vector<double> fitted(xs.size());
    ThreadPool::global().parallelFor(
        0, xs.size(),
        [&](std::size_t i) { fitted[i] = regressor_.predict(xs[i]); },
        /*grain=*/16);
    trainingError_ = stats::rmae(fitted, values);
}

double
ArchitectureCentricPredictor::predict(const MicroarchConfig &config) const
{
    PredictScratch scratch;
    return predictFromFeatures(config.asFeatureVector(), scratch);
}

double
ArchitectureCentricPredictor::predictFromFeatures(
    const std::vector<double> &features, PredictScratch &scratch) const
{
    ACDSE_DCHECK(ready(), "predict before training/responses");
    scratch.ensemble.resize(programModels_.size());
    for (std::size_t i = 0; i < programModels_.size(); ++i) {
        scratch.ensemble[i] =
            programModels_[i]->predictFromFeatures(features,
                                                   scratch.scaled);
    }
    return regressor_.predict(scratch.ensemble);
}

void
ArchitectureCentricPredictor::predictBatchFromFeatures(
    const double *features, std::size_t count, double *out,
    BatchPredictScratch &scratch) const
{
    ACDSE_DCHECK(ready(), "predict before training/responses");
    const std::size_t m = programModels_.size();
    const std::size_t d = featureDim();
    // Transpose each full block to feature-major once and run the
    // block entry point on it; remainder points run each model's
    // ordinary batch path (the scalar path on a sub-block count) into
    // a model-major slab for one regressor pass. Per-point arithmetic
    // is identical either way, so out[] is bit-identical to the scalar
    // predict at any count.
    const std::size_t full = count - count % simd::kLanes;
    scratch.soa.resize(d * simd::kLanes);
    for (std::size_t base = 0; base < full; base += simd::kLanes) {
        simd::transposeBlock(features + base * d, d, scratch.soa.data());
        predictBlockSoaFromFeatures(scratch.soa.data(), out + base,
                                    scratch);
    }
    if (full < count) {
        const std::size_t rem = count - full;
        scratch.ensemble.resize(m * rem);
        for (std::size_t j = 0; j < m; ++j) {
            programModels_[j]->predictBatchFromFeatures(
                features + full * d, rem,
                scratch.ensemble.data() + j * rem, scratch.mlp);
        }
        regressor_.predictSoa(scratch.ensemble.data(), rem, out + full);
    }
}

void
ArchitectureCentricPredictor::predictBlockSoaFromFeatures(
    const double *soa, double *out, BatchPredictScratch &scratch) const
{
    ACDSE_DCHECK(ready(), "predict before training/responses");
    const std::size_t m = programModels_.size();
    scratch.ensemble.resize(m * simd::kLanes);
    // Every member model consumes the shared feature-major block
    // directly; the model-major outputs are exactly a feature-major
    // block for the regressor, combined lane-wise in the same
    // ascending-model order as the scalar predict.
    for (std::size_t j = 0; j < m; ++j) {
        programModels_[j]->predictBlockSoaFromFeatures(
            soa, scratch.ensemble.data() + j * simd::kLanes,
            scratch.mlp);
    }
    regressor_.predictSoa(scratch.ensemble.data(), simd::kLanes, out);
}

void
ArchitectureCentricPredictor::save(BinaryWriter &w) const
{
    ACDSE_CHECK(offlineTrained_,
                 "cannot save before the offline phase");
    w.f64(options_.ridge);
    w.u8(options_.intercept ? 1 : 0);
    w.u8(responsesFitted_ ? 1 : 0);
    w.f64(trainingError_);
    w.u64(programModels_.size());
    for (std::size_t i = 0; i < programModels_.size(); ++i) {
        w.str(programNames_[i]);
        programModels_[i]->save(w);
    }
    if (responsesFitted_)
        regressor_.save(w);
}

void
ArchitectureCentricPredictor::load(BinaryReader &r)
{
    options_.ridge = r.f64();
    options_.intercept = r.u8() != 0;
    const bool fitted = r.u8() != 0;
    trainingError_ = r.f64();
    const std::uint64_t count = r.u64();
    if (count == 0)
        throw SerializationError("predictor with no program models");

    programNames_.clear();
    programModels_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        programNames_.push_back(r.str());
        auto model = std::make_shared<ProgramSpecificPredictor>();
        model->load(r);
        programModels_.push_back(std::move(model));
    }
    if (fitted) {
        regressor_.load(r);
        if (regressor_.weights().size() != programModels_.size())
            throw SerializationError(
                "regression arity does not match the model count");
    } else {
        regressor_ = LinearRegression();
    }
    offlineTrained_ = true;
    responsesFitted_ = fitted;
}

const std::vector<double> &
ArchitectureCentricPredictor::weights() const
{
    ACDSE_CHECK(responsesFitted_, "weights before fitResponses");
    return regressor_.weights();
}

} // namespace acdse
