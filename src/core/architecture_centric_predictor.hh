/**
 * @file
 * The paper's contribution: the architecture-centric predictor
 * (Section 5, Fig. 6).
 *
 * Offline, one program-specific ANN is trained per training program
 * (T = 512 simulations each). To predict a *new* program, only R = 32
 * simulations of it ("responses") are needed: a linear regressor is
 * fitted so that a weighted combination of the trained ANNs' outputs
 * matches the responses, and that combination then predicts the whole
 * 13-parameter design space for the new program.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/microarch_config.hh"
#include "core/program_specific_predictor.hh"
#include "ml/linear_regression.hh"

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Options for the architecture-centric model. */
struct ArchCentricOptions
{
    ProgramSpecificOptions programModel; //!< per-program ANN settings
    /**
     * Relative ridge strength for the response regression. With ~25
     * highly-correlated ANN features and only 32 responses, the paper's
     * plain normal equations (5) are badly conditioned and overfit the
     * responses; shrinking the weights markedly improves generalisation
     * (on our substrate: cycles rmae 12.6% -> 6.0% and correlation
     * 0.76 -> 0.94 at lambda = 2e-2 -- see bench_ablation for the
     * sweep). Set to 0 for the paper's exact ordinary least squares.
     */
    double ridge = 2e-2;
    /** Fit the regressor's intercept beta_0. */
    bool intercept = true;
};

/**
 * Reusable buffers for ArchitectureCentricPredictor::predictFromFeatures.
 * One instance per serving thread keeps the prediction hot path free of
 * heap allocations after the first call.
 */
struct PredictScratch
{
    std::vector<double> scaled;    //!< per-ANN scaled-input buffer
    std::vector<double> ensemble;  //!< the ANN outputs (regressor input)
};

/**
 * Reusable buffers for
 * ArchitectureCentricPredictor::predictBatchFromFeatures. Grows to
 * O(ensemble size x batch count); callers stream fixed-size blocks
 * (the evaluator scores 256-point blocks, the service predicts one
 * worker chunk at a time) so the footprint stays cache-sized.
 */
struct BatchPredictScratch
{
    MlpBatchScratch mlp;           //!< shared per-ANN kernel buffers
    std::vector<double> ensemble;  //!< model-major ANN outputs
    std::vector<double> soa;       //!< one feature-major transposed block
};

/** Training data for one offline training program. */
struct ProgramTrainingSet
{
    std::string name;                       //!< program name
    std::vector<MicroarchConfig> configs;   //!< its T simulated configs
    std::vector<double> values;             //!< measured metric values
};

/** The architecture-centric predictor for one target metric. */
class ArchitectureCentricPredictor
{
  public:
    /** Construct with hyper-parameters. */
    explicit ArchitectureCentricPredictor(ArchCentricOptions options = {});

    /**
     * Offline phase: train one program-specific ANN per training
     * program. Expensive, but done once, before any new program is
     * seen.
     */
    void trainOffline(const std::vector<ProgramTrainingSet> &trainingSets);

    /**
     * Alternative offline phase: adopt already-trained program models
     * (shared, e.g. from an evaluation cache -- in leave-one-out cross
     * validation the same per-program ANN appears in many folds).
     */
    void useModels(
        std::vector<std::string> names,
        std::vector<std::shared_ptr<const ProgramSpecificPredictor>>
            models);

    /**
     * Online phase: fit the linear combination from R responses of the
     * new program. Cheap; call again for each new program.
     */
    void fitResponses(const std::vector<MicroarchConfig> &configs,
                      const std::vector<double> &values);

    /** Predict the metric of the new program at any configuration. */
    double predict(const MicroarchConfig &config) const;

    /**
     * Predict from a precomputed feature vector
     * (MicroarchConfig::asFeatureVector()), reusing @p scratch across
     * calls. Identical arithmetic to predict(); lets a caller that
     * evaluates several metrics of one configuration -- the prediction
     * service serves cycles, energy, ED and EDD per query -- build the
     * feature vector once and keep the hot path allocation-free.
     */
    double predictFromFeatures(const std::vector<double> &features,
                               PredictScratch &scratch) const;

    /**
     * Predict @p count design points at once: point c occupies
     * features[c * featureDim() .. (c+1) * featureDim()) row-major and
     * its prediction lands in out[c]. Each simd::kLanes-wide block is
     * transposed to feature-major once and every ensemble ANN runs its
     * vectorised block kernel on that shared layout, then the fitted
     * linear combination folds the model-major outputs lane-wise
     * (LinearRegression::predictSoa). out[c] is bit-identical to
     * predictFromFeatures on point c at any count and thread count.
     */
    void predictBatchFromFeatures(const double *features,
                                  std::size_t count, double *out,
                                  BatchPredictScratch &scratch) const;

    /**
     * Predict one full simd::kLanes-wide block already transposed to
     * feature-major layout (soa[f * kLanes + lane]); out receives
     * kLanes predictions, bit-identical to predictFromFeatures per
     * lane. This is the engine-facing entry point: a caller scoring
     * several metrics of the same points -- the exploration engine
     * runs one ensemble per metric -- transposes each block once and
     * hands the shared layout to every ensemble.
     */
    void predictBlockSoaFromFeatures(const double *soa, double *out,
                                     BatchPredictScratch &scratch) const;

    /**
     * Error of the fit on its own responses (the "training error" of
     * Figs. 11/12, which the paper shows is a usable proxy for the
     * testing error and so flags programs with unique behaviour).
     */
    double trainingErrorPercent() const { return trainingError_; }

    /** Names of the offline training programs. */
    const std::vector<std::string> &trainingPrograms() const
    {
        return programNames_;
    }

    /** The fitted combination weights (one per training program). */
    const std::vector<double> &weights() const;

    /** Whether both phases have completed. */
    bool ready() const { return offlineTrained_ && responsesFitted_; }

    /**
     * Feature-vector width the ensemble expects (0 before the offline
     * phase). Boundary code -- the prediction service -- checks this
     * against kNumParams once per artifact, so the per-point predict
     * path can keep its width checks as debug-only DCHECKs.
     */
    std::size_t featureDim() const
    {
        return programModels_.empty() ? 0
                                      : programModels_.front()->inputDim();
    }

    /** Whether the offline phase has completed. */
    bool offlineTrained() const { return offlineTrained_; }

    /**
     * Serialise the full predictor state: options, the per-program ANN
     * ensemble and (if fitted) the response regression. A loaded
     * predictor predicts bit-identically and can fitResponses() again
     * for further new programs.
     */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    ArchCentricOptions options_;
    std::vector<std::string> programNames_;
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>>
        programModels_;
    LinearRegression regressor_;
    double trainingError_ = 0.0;
    bool offlineTrained_ = false;
    bool responsesFitted_ = false;
};

} // namespace acdse

