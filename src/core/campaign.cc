#include "core/campaign.hh"

#include <array>
#include <atomic>
#include <span>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "arch/design_space.hh"
#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/csv.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "base/thread_pool.hh"
#include "obs/trace_span.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{

namespace
{

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return static_cast<std::size_t>(parseU64OrDie(name, value));
}

/**
 * This worker thread's lane components, reused across fill tiles so
 * steady-state campaign fill performs no per-simulation allocation.
 * Thread-local, so never shared -- parallelFor gives no stable worker
 * index to key a scratch pool by, and a SimScratch is pure storage
 * (results never depend on what ran through it), so per-thread reuse
 * cannot affect determinism.
 */
SimScratch &
fillScratch()
{
    thread_local SimScratch scratch; // NOLINT(acdse-local-static)
    return scratch;
}

} // namespace

CampaignOptions
CampaignOptions::fromEnvironment()
{
    CampaignOptions options;
    options.numConfigs = envSize("ACDSE_CONFIGS", options.numConfigs);
    options.traceLength =
        envSize("ACDSE_TRACE_LEN", options.traceLength);
    options.warmupInstructions =
        envSize("ACDSE_WARMUP", options.warmupInstructions);
    // threads stays 0 here: the ThreadPool sizing rule (which itself
    // honours ACDSE_THREADS) resolves it, the same way every other
    // subsystem sizes its parallelism.
    if (const char *dir = std::getenv("ACDSE_CACHE_DIR"); dir && *dir)
        options.cacheDir = dir;
    return options;
}

Campaign::Campaign(std::vector<std::string> programs,
                   CampaignOptions options)
    : options_(std::move(options)), programs_(std::move(programs))
{
    ACDSE_CHECK(!programs_.empty(), "campaign needs programs");
    for (const auto &name : programs_)
        profileByName(name); // validates the name
    configs_ = DesignSpace::sampleValidConfigs(options_.numConfigs,
                                               options_.configSeed);
    results_.resize(programs_.size() * configs_.size());
    computed_.assign(results_.size(), false);
    traces_.resize(programs_.size());
}

Campaign
Campaign::standard()
{
    std::vector<std::string> names;
    for (const auto &profile : allProfiles())
        names.push_back(profile.name);
    return Campaign(std::move(names), CampaignOptions::fromEnvironment());
}

std::size_t
Campaign::programIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < programs_.size(); ++i) {
        if (programs_[i] == name)
            return i;
    }
    panic("program '", name, "' is not part of this campaign");
}

const Trace &
Campaign::trace(std::size_t programIdx)
{
    ACDSE_CHECK(programIdx < programs_.size(), "bad program index");
    auto &slot = traces_[programIdx];
    if (!slot) {
        TraceGenerator generator(profileByName(programs_[programIdx]));
        slot = std::make_unique<Trace>(generator.generate(
            options_.traceLength + options_.warmupInstructions));
    }
    return *slot;
}

std::string
Campaign::cacheKeyFor(const std::vector<std::string> &programs,
                      const CampaignOptions &options)
{
    // Hash the program set: names are validated suite identifiers
    // (no commas), so ','-joining is an unambiguous encoding.
    std::string joined;
    for (const auto &name : programs) {
        joined += name;
        joined += ',';
    }
    char programsHex[17];
    std::snprintf(programsHex, sizeof(programsHex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(joined)));

    std::ostringstream os;
    os << "c" << options.numConfigs << "_t" << options.traceLength
       << "_w" << options.warmupInstructions << "_s" << std::hex
       << options.configSeed << std::dec << "_p" << programsHex;
    return os.str();
}

std::string
Campaign::cacheKey() const
{
    return cacheKeyFor(programs_, options_);
}

std::string
Campaign::cachePath() const
{
    std::ostringstream os;
    // The version tag invalidates caches across simulator-model
    // changes; bump it whenever simulation results change. Unlike
    // cacheKey() this name deliberately omits the program set: the
    // cache file is shared and merged across program subsets.
    os << options_.cacheDir << "/acdse_campaign_v2_c"
       << options_.numConfigs << "_t" << options_.traceLength << "_w"
       << options_.warmupInstructions << "_s" << std::hex
       << options_.configSeed << ".csv";
    return os.str();
}

std::size_t
Campaign::loadCacheRowsFrom(const std::string &path)
{
    CsvFile file;
    if (!readCsv(path, file))
        return 0;
    if (file.header !=
        std::vector<std::string>{"program", "config", "cycles",
                                 "energy_nj"}) {
        warn("ignoring campaign cache with unexpected header: ", path);
        return 0;
    }

    // Index configurations by key for O(1) row placement.
    std::unordered_map<std::string, std::size_t> config_index;
    for (std::size_t c = 0; c < configs_.size(); ++c)
        config_index.emplace(configs_[c].key(), c);
    std::unordered_map<std::string, std::size_t> program_index;
    for (std::size_t p = 0; p < programs_.size(); ++p)
        program_index.emplace(programs_[p], p);

    std::size_t loaded = 0;
    for (const auto &row : file.rows) {
        auto pit = program_index.find(row[0]);
        auto cit = config_index.find(row[1]);
        if (pit == program_index.end() || cit == config_index.end())
            continue;
        // Malformed numbers are skipped, not fatal: a cache row is a
        // disposable memo and the simulation can always be redone.
        const auto cycles = parseF64(row[2]);
        const auto energy = parseF64(row[3]);
        if (!cycles || !energy || *cycles <= 0.0 || *energy <= 0.0)
            continue;
        const std::size_t cell =
            pit->second * configs_.size() + cit->second;
        results_[cell] = Metrics::fromCyclesEnergy(*cycles, *energy);
        computed_[cell] = true;
        ++loaded;
    }
    return loaded;
}

bool
Campaign::loadCache()
{
    const std::size_t loaded = loadCacheRowsFrom(cachePath());
    if (!options_.quiet && loaded) {
        inform("campaign cache: loaded ", loaded, " of ",
               results_.size(), " simulations from ", cachePath());
    }
    return loaded == results_.size();
}

CsvFile
Campaign::cacheRows(const std::vector<std::size_t> &cells) const
{
    CsvFile file;
    file.header = {"program", "config", "cycles", "energy_nj"};
    char buf[64];
    for (const std::size_t cell : cells) {
        ACDSE_CHECK(cell < results_.size(), "bad cell index");
        if (!computed_[cell])
            continue;
        std::vector<std::string> row;
        row.push_back(programs_[cell / configs_.size()]);
        row.push_back(configs_[cell % configs_.size()].key());
        std::snprintf(buf, sizeof(buf), "%.17g",
                      results_[cell].cycles);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.17g",
                      results_[cell].energyNj);
        row.push_back(buf);
        file.rows.push_back(std::move(row));
    }
    return file;
}

void
Campaign::saveCache() const
{
    std::vector<std::size_t> all(results_.size());
    for (std::size_t cell = 0; cell < all.size(); ++cell)
        all[cell] = cell;
    CsvFile file = cacheRows(all);

    // Merge with any existing cache so that a campaign over a subset
    // of programs never drops other programs' rows from the shared
    // file. Foreign rows sort first, ours after, matching the
    // pre-refactor row order byte for byte.
    CsvFile existing;
    if (readCsv(cachePath(), existing) &&
        existing.header == file.header) {
        std::unordered_set<std::string> ours;
        for (const auto &name : programs_)
            ours.insert(name);
        std::vector<std::vector<std::string>> merged;
        for (auto &row : existing.rows) {
            if (!ours.contains(row[0]))
                merged.push_back(std::move(row));
        }
        for (auto &row : file.rows)
            merged.push_back(std::move(row));
        file.rows = std::move(merged);
    }

    // Atomic replace: two experiment binaries racing on the same
    // ACDSE_CACHE_DIR may both save, but neither can leave a truncated
    // cache for the other (or a later run) to trip over.
    writeCsvAtomic(cachePath(), file);
}

void
Campaign::ensureComputed()
{
    if (allComputed_)
        return;
    if (loadCache()) {
        allComputed_ = true;
        return;
    }

    // Collect pending work.
    std::vector<std::size_t> pending;
    for (std::size_t cell = 0; cell < results_.size(); ++cell) {
        if (!computed_[cell])
            pending.push_back(cell);
    }
    if (pending.empty()) {
        allComputed_ = true;
        return;
    }
    if (!options_.quiet) {
        inform("campaign: simulating ", pending.size(), " of ",
               results_.size(), " (programs=", programs_.size(),
               ", configs=", configs_.size(), ")");
    }

    computeCells(pending);

    saveCache();
    allComputed_ = true;
}

void
Campaign::computeCells(const std::vector<std::size_t> &cells,
                       const std::function<void(std::size_t)> &progress)
{
    // Filter to genuinely pending work (idempotent re-execution: a
    // resumed job may ask for cells a checkpoint already restored).
    std::vector<std::size_t> pending;
    pending.reserve(cells.size());
    for (const std::size_t cell : cells) {
        ACDSE_CHECK(cell < results_.size(), "bad cell index");
        if (!computed_[cell])
            pending.push_back(cell);
    }
    if (pending.empty())
        return;

    // Pre-generate the needed traces serially (cheap) so workers
    // share them.
    for (std::size_t p = 0; p < programs_.size(); ++p) {
        for (const std::size_t cell : pending) {
            if (cell / configs_.size() == p) {
                trace(p);
                break;
            }
        }
    }

    // The shared pool unless the campaign pins an explicit width (as
    // the determinism tests do, comparing 1-thread vs N-thread runs).
    ThreadPool *pool = &ThreadPool::global();
    std::unique_ptr<ThreadPool> pinned;
    if (options_.threads && options_.threads != pool->threads()) {
        pinned = std::make_unique<ThreadPool>(options_.threads);
        pool = pinned.get();
    }

    // Tile pending cells into lane groups: cells of one program are
    // replayed kSimLanes configurations at a time against that
    // program's trace, decoded once and shared read-only by every
    // worker. Cells are independent, so the tiling (and the thread
    // count) cannot change any result -- and the batched replay itself
    // is bit-identical to scalar simulate().
    struct Tile
    {
        std::size_t program; //!< program index
        std::size_t first;   //!< offset into `pending`
        std::size_t count;   //!< cells in this tile (<= kSimLanes)
    };
    std::vector<Tile> tiles;
    std::vector<std::unique_ptr<DecodedTrace>> decoded(
        programs_.size());
    for (std::size_t first = 0; first < pending.size();) {
        const std::size_t p = pending[first] / configs_.size();
        std::size_t count = 1;
        while (count < kSimLanes && first + count < pending.size() &&
               pending[first + count] / configs_.size() == p)
            ++count;
        tiles.push_back({p, first, count});
        if (!decoded[p])
            decoded[p] = std::make_unique<DecodedTrace>(*traces_[p]);
        first += count;
    }

    const obs::TraceSpan span(obs::Registry::global(),
                              "campaign/fill");
    obs::Registry::global().counter("campaign/sims-run")
        .add(pending.size());
    std::atomic<std::size_t> done{0};
    pool->parallelFor(0, tiles.size(), [&](std::size_t t) {
        SimulationOptions sim_options;
        sim_options.warmupInstructions = options_.warmupInstructions;
        const Tile &tile = tiles[t];
        std::array<MicroarchConfig, kSimLanes> group;
        std::array<SimulationResult, kSimLanes> group_results;
        for (std::size_t i = 0; i < tile.count; ++i) {
            const std::size_t cell = pending[tile.first + i];
            group[i] = configs_[cell % configs_.size()];
        }
        simulateBatch(
            std::span<const MicroarchConfig>(group.data(), tile.count),
            *decoded[tile.program], sim_options,
            std::span<SimulationResult>(group_results.data(),
                                        tile.count),
            fillScratch());
        for (std::size_t i = 0; i < tile.count; ++i) {
            const std::size_t cell = pending[tile.first + i];
            results_[cell] = group_results[i].metrics;
            computed_[cell] = true;
        }
        const std::size_t completed =
            done.fetch_add(tile.count) + tile.count;
        if (!options_.quiet &&
            completed /
                    std::max<std::size_t>(1, pending.size() / 10) !=
                (completed - tile.count) /
                    std::max<std::size_t>(1, pending.size() / 10)) {
            inform("campaign: ", completed, "/", pending.size(),
                   " simulations done");
        }
        if (progress)
            progress(completed);
    });
}

bool
Campaign::cellComputed(std::size_t cell) const
{
    ACDSE_CHECK(cell < results_.size(), "bad cell index");
    return computed_[cell] != 0;
}

const Metrics &
Campaign::cellResult(std::size_t cell) const
{
    ACDSE_CHECK(cell < results_.size(), "bad cell index");
    ACDSE_CHECK(computed_[cell], "cell accessed before computation");
    return results_[cell];
}

void
Campaign::storeCell(std::size_t cell, const Metrics &metrics)
{
    ACDSE_CHECK(cell < results_.size(), "bad cell index");
    results_[cell] = metrics;
    computed_[cell] = true;
}

const Metrics &
Campaign::result(std::size_t programIdx, std::size_t configIdx) const
{
    ACDSE_CHECK(programIdx < programs_.size(), "bad program index");
    ACDSE_CHECK(configIdx < configs_.size(), "bad config index");
    const std::size_t cell = programIdx * configs_.size() + configIdx;
    ACDSE_CHECK(computed_[cell],
                 "result accessed before ensureComputed()");
    return results_[cell];
}

std::vector<double>
Campaign::metricRow(std::size_t programIdx, Metric metric) const
{
    std::vector<double> row;
    row.reserve(configs_.size());
    for (std::size_t c = 0; c < configs_.size(); ++c)
        row.push_back(result(programIdx, c).get(metric));
    return row;
}

std::vector<double>
Campaign::metricAt(std::size_t programIdx, Metric metric,
                   const std::vector<std::size_t> &idx) const
{
    std::vector<double> values;
    values.reserve(idx.size());
    for (std::size_t c : idx)
        values.push_back(result(programIdx, c).get(metric));
    return values;
}

std::vector<MicroarchConfig>
Campaign::configsAt(const std::vector<std::size_t> &idx) const
{
    std::vector<MicroarchConfig> subset;
    subset.reserve(idx.size());
    for (std::size_t c : idx) {
        ACDSE_CHECK(c < configs_.size(), "bad config index");
        subset.push_back(configs_[c]);
    }
    return subset;
}

} // namespace acdse
