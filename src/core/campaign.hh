/**
 * @file
 * The simulation campaign: the paper's 3,000 uniformly-sampled
 * configurations simulated for every benchmark (Section 3.3), here with
 * a configurable sample count, multithreaded execution and a disk cache
 * so every experiment binary reuses one set of simulations.
 *
 * Scaling knobs (environment variables, all optional):
 *  - ACDSE_CONFIGS     sampled configurations   (default 800)
 *  - ACDSE_TRACE_LEN   timed instructions       (default 16000)
 *  - ACDSE_WARMUP      warm-up instructions     (default 4000)
 *  - ACDSE_CACHE_DIR   cache file directory     (default ".")
 *  - ACDSE_THREADS     worker threads           (default hw parallelism)
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/microarch_config.hh"
#include "base/csv.hh"
#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Campaign parameters. */
struct CampaignOptions
{
    std::size_t numConfigs = 800;      //!< sampled configurations
    std::size_t traceLength = 16000;   //!< timed instructions / program
    std::size_t warmupInstructions = 4000; //!< untimed warm-up prefix
    std::uint64_t configSeed = 0xac5e'0001; //!< sampling seed
    std::string cacheDir = ".";        //!< where the cache file lives
    /**
     * Explicit worker count; 0 uses the shared ThreadPool sizing rule
     * (ACDSE_THREADS, else hardware concurrency -- base/thread_pool).
     */
    std::size_t threads = 0;
    bool quiet = false;                //!< suppress progress messages

    /** Defaults with any ACDSE_* environment overrides applied. */
    static CampaignOptions fromEnvironment();
};

/**
 * A (programs x configurations) matrix of simulated Metrics.
 *
 * Results are computed lazily on first access (all missing cells in one
 * parallel batch) and persisted to a CSV cache keyed by the campaign
 * parameters, so repeated bench/example runs cost seconds, not minutes.
 */
class Campaign
{
  public:
    /**
     * @param programs benchmark names (must exist in the suites).
     * @param options  sampling/simulation parameters.
     */
    Campaign(std::vector<std::string> programs, CampaignOptions options);

    /** Campaign over both full suites with environment options. */
    static Campaign standard();

    /** The sampled configurations (same for every program). */
    const std::vector<MicroarchConfig> &configs() const
    {
        return configs_;
    }

    /** The benchmark names, in row order. */
    const std::vector<std::string> &programs() const { return programs_; }

    /** Index of a program by name; panics if absent. */
    std::size_t programIndex(const std::string &name) const;

    /** Simulate/load everything that is still missing. */
    void ensureComputed();

    /** Metrics of one (program, configuration) cell. */
    const Metrics &result(std::size_t programIdx,
                          std::size_t configIdx) const;

    /** One metric across all configurations for one program. */
    std::vector<double> metricRow(std::size_t programIdx,
                                  Metric metric) const;

    /**
     * One metric for a subset of configurations (by index) -- used to
     * assemble training sets and responses.
     */
    std::vector<double> metricAt(std::size_t programIdx, Metric metric,
                                 const std::vector<std::size_t> &idx) const;

    /** Configurations for a subset of indices. */
    std::vector<MicroarchConfig> configsAt(
        const std::vector<std::size_t> &idx) const;

    /** The options this campaign runs with. */
    const CampaignOptions &options() const { return options_; }

    /** The generated trace for one program (cached). */
    const Trace &trace(std::size_t programIdx);

    // -- Cell-level interface (used by the job system, src/jobs) -----
    //
    // A cell is one (program, configuration) pair, row-major:
    // cell = program * configs().size() + config. The job runner
    // shards the cell range, computes shards in worker processes and
    // feeds results back through storeCell()/loadCacheRowsFrom(), so
    // everything here must keep bit-identical semantics with
    // ensureComputed()'s own fill path.

    /** Total number of (program, configuration) cells. */
    std::size_t numCells() const { return results_.size(); }

    /** Whether one cell has a computed/loaded result. */
    bool cellComputed(std::size_t cell) const;

    /** The metrics of one computed cell. */
    const Metrics &cellResult(std::size_t cell) const;

    /** Store an externally computed result for one cell. */
    void storeCell(std::size_t cell, const Metrics &metrics);

    /**
     * Simulate exactly the given cells (already-computed ones are
     * skipped). Tiling, batching and thread count cannot change any
     * result, so computing the full pending set in one call or cell
     * subsets across many calls/processes yields identical metrics.
     *
     * @param progress if set, called after each completed tile with
     *        the cumulative number of cells finished by this call.
     *        Invoked from worker threads (possibly concurrently);
     *        keep it cheap and thread-safe.
     */
    void computeCells(const std::vector<std::size_t> &cells,
                      const std::function<void(std::size_t)> &progress =
                          {});

    /**
     * The campaign identity string: every sampling/simulation
     * parameter plus a hash of the program set. Two campaigns agree on
     * every cell's meaning iff their keys are equal, so job-system
     * artifacts (journal, shard checkpoints, plans) embed this key in
     * their file names to keep concurrent runs with different
     * parameters in one ACDSE_CACHE_DIR from colliding.
     */
    std::string cacheKey() const;

    /** The shared campaign cache CSV path for these options. */
    std::string cachePath() const;

    /**
     * Load result rows from any campaign-cache-format CSV at @p path
     * (the shared cache or a shard checkpoint). Rows for unknown
     * programs/configs and malformed rows are skipped -- cache rows
     * are disposable memos. @return the number of cells filled in.
     */
    std::size_t loadCacheRowsFrom(const std::string &path);

    /**
     * Cache-format rows (header + %.17g formatting, byte-identical to
     * what saveCache() writes) for the computed cells among @p cells,
     * in the given order. Shard checkpoints are written through this
     * so a cache assembled from shards matches an uninterrupted run
     * byte for byte.
     */
    CsvFile cacheRows(const std::vector<std::size_t> &cells) const;

    /** Merge all computed cells into the shared cache, atomically. */
    void saveCache() const;

    /** See campaignCacheKey() -- the static form of cacheKey(). */
    static std::string cacheKeyFor(
        const std::vector<std::string> &programs,
        const CampaignOptions &options);

  private:
    bool loadCache();

    CampaignOptions options_;
    std::vector<std::string> programs_;
    std::vector<MicroarchConfig> configs_;
    std::vector<Metrics> results_;      //!< row-major [program][config]
    // Per-cell validity. Deliberately vector<char>, not vector<bool>:
    // worker threads write distinct cells concurrently, and
    // vector<bool> packs bits into shared words (a data race).
    std::vector<char> computed_;
    std::vector<std::unique_ptr<Trace>> traces_;
    bool allComputed_ = false;
};

} // namespace acdse

