#include "core/characterisation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "arch/design_space.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "sim/simulator.hh"

namespace acdse
{

namespace
{

/** Default to all campaign programs when no subset is given. */
std::vector<std::size_t>
resolvePrograms(const Campaign &campaign,
                const std::vector<std::size_t> &programIdx)
{
    if (!programIdx.empty())
        return programIdx;
    std::vector<std::size_t> all(campaign.programs().size());
    for (std::size_t p = 0; p < all.size(); ++p)
        all[p] = p;
    return all;
}

} // namespace

std::vector<ParamValueFrequency>
extremeValueFrequencies(const Campaign &campaign, Metric metric,
                        double fraction,
                        const std::vector<std::size_t> &programIdx)
{
    const std::vector<std::size_t> programs =
        resolvePrograms(campaign, programIdx);
    ACDSE_CHECK(fraction > 0.0 && fraction <= 0.5,
                 "extreme fraction out of range");
    const std::size_t num_configs = campaign.configs().size();
    const std::size_t extreme = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * num_configs)));

    std::vector<ParamValueFrequency> freqs;
    for (const auto &spec : paramSpecs()) {
        ParamValueFrequency f;
        f.param = spec.id;
        f.values.assign(spec.values.begin(), spec.values.end());
        f.bestFreq.assign(spec.count(), 0.0);
        f.worstFreq.assign(spec.count(), 0.0);
        freqs.push_back(std::move(f));
    }

    std::size_t pooled = 0;
    for (std::size_t p : programs) {
        std::vector<double> row = campaign.metricRow(p, metric);
        std::vector<std::size_t> order(num_configs);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return row[a] < row[b];
                  });
        auto tally = [&](std::size_t config_idx, bool best) {
            const MicroarchConfig &config =
                campaign.configs()[config_idx];
            for (auto &f : freqs) {
                const std::size_t slot =
                    paramSpec(f.param).indexOf(config.get(f.param));
                (best ? f.bestFreq : f.worstFreq)[slot] += 1.0;
            }
        };
        for (std::size_t k = 0; k < extreme; ++k) {
            tally(order[k], true);
            tally(order[num_configs - 1 - k], false);
        }
        pooled += extreme;
    }

    for (auto &f : freqs) {
        for (double &x : f.bestFreq)
            x /= static_cast<double>(pooled);
        for (double &x : f.worstFreq)
            x /= static_cast<double>(pooled);
    }
    return freqs;
}

std::vector<Metrics>
baselineMetrics(Campaign &campaign)
{
    SimulationOptions sim_options;
    sim_options.warmupInstructions =
        campaign.options().warmupInstructions;
    std::vector<Metrics> baselines;
    baselines.reserve(campaign.programs().size());
    for (std::size_t p = 0; p < campaign.programs().size(); ++p) {
        baselines.push_back(simulate(DesignSpace::baseline(),
                                     campaign.trace(p), sim_options)
                                .metrics);
    }
    return baselines;
}

std::vector<ProgramSpaceSummary>
perProgramSummaries(Campaign &campaign, Metric metric,
                    double phaseInstructions,
                    const std::vector<std::size_t> &programIdx)
{
    campaign.ensureComputed();
    const double timed =
        static_cast<double>(campaign.options().traceLength);
    const std::vector<Metrics> baselines = baselineMetrics(campaign);

    std::vector<ProgramSpaceSummary> summaries;
    for (std::size_t p : resolvePrograms(campaign, programIdx)) {
        std::vector<double> row;
        row.reserve(campaign.configs().size());
        for (std::size_t c = 0; c < campaign.configs().size(); ++c) {
            row.push_back(campaign.result(p, c)
                              .scaledToInstructions(timed,
                                                    phaseInstructions)
                              .get(metric));
        }
        ProgramSpaceSummary s;
        s.program = campaign.programs()[p];
        s.range = stats::fiveNumberSummary(row);
        s.baseline = baselines[p]
                         .scaledToInstructions(timed, phaseInstructions)
                         .get(metric);
        summaries.push_back(std::move(s));
    }
    return summaries;
}

std::vector<std::vector<double>>
programDistanceMatrix(Campaign &campaign, Metric metric,
                      const std::vector<std::size_t> &programIdx)
{
    campaign.ensureComputed();
    const std::vector<std::size_t> programs =
        resolvePrograms(campaign, programIdx);
    const std::size_t n = programs.size();
    const std::vector<Metrics> baselines = baselineMetrics(campaign);

    std::vector<std::vector<double>> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t p = programs[i];
        rows[i] = campaign.metricRow(p, metric);
        const double norm = baselines[p].get(metric);
        ACDSE_CHECK(norm > 0.0, "baseline metric must be positive");
        for (double &x : rows[i])
            x /= norm;
    }

    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = stats::euclideanDistance(rows[i], rows[j]);
            dist[i][j] = dist[j][i] = d;
        }
    }
    return dist;
}

Dendrogram
programSimilarityDendrogram(Campaign &campaign, Metric metric,
                            const std::vector<std::size_t> &programIdx)
{
    return hierarchicalCluster(
        programDistanceMatrix(campaign, metric, programIdx));
}

} // namespace acdse
