/**
 * @file
 * Design-space characterisation helpers behind the paper's analysis
 * figures: parameter impact on the extremes of the space (Figs. 2-3),
 * per-program variation (Fig. 4) and program similarity (Fig. 5).
 */

#pragma once

#include <vector>

#include "base/statistics.hh"
#include "core/campaign.hh"
#include "ml/hierarchical.hh"

namespace acdse
{

/**
 * How often each value of one parameter appears among the extreme
 * configurations of the space (Figs. 2 and 3).
 */
struct ParamValueFrequency
{
    Param param;                    //!< which parameter
    std::vector<int> values;        //!< its legal values
    std::vector<double> bestFreq;   //!< frequency in the best fraction
    std::vector<double> worstFreq;  //!< frequency in the worst fraction
};

/**
 * For every parameter, the frequency of each of its values among the
 * best/worst @p fraction of sampled configurations, pooled over all
 * campaign programs (the paper pools the per-benchmark extreme 1%).
 * "Best" means the smallest metric value (fewer cycles / less energy).
 */
std::vector<ParamValueFrequency> extremeValueFrequencies(
    const Campaign &campaign, Metric metric, double fraction = 0.01,
    const std::vector<std::size_t> &programIdx = {});

/** Per-program summary of the design space (Fig. 4). */
struct ProgramSpaceSummary
{
    std::string program;            //!< benchmark name
    stats::FiveNumberSummary range; //!< min/quartiles/max over configs
    double baseline;                //!< value at the baseline config
};

/**
 * Five-number summary of one metric per program, rescaled to a phase of
 * @p phaseInstructions instructions as the paper does (Section 4.1),
 * plus the baseline architecture's value (simulated on demand).
 */
std::vector<ProgramSpaceSummary> perProgramSummaries(
    Campaign &campaign, Metric metric, double phaseInstructions = 10e6,
    const std::vector<std::size_t> &programIdx = {});

/**
 * Pairwise euclidean distances between program design spaces over the
 * sampled configurations, each program's row first normalised by its
 * baseline-architecture value (Section 4.2, footnote 1).
 */
std::vector<std::vector<double>> programDistanceMatrix(
    Campaign &campaign, Metric metric,
    const std::vector<std::size_t> &programIdx = {});

/** Fig. 5: average-linkage dendrogram over the distance matrix. */
Dendrogram programSimilarityDendrogram(
    Campaign &campaign, Metric metric,
    const std::vector<std::size_t> &programIdx = {});

/** The baseline-architecture metrics for each program (simulated). */
std::vector<Metrics> baselineMetrics(Campaign &campaign);

} // namespace acdse

