#include "core/evaluation.hh"

#include <algorithm>
#include <numeric>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "obs/trace_span.hh"

namespace acdse
{

namespace
{

/**
 * Block size for batched scoring. Large enough to amortise the per-call
 * scaler transform and keep the lane kernels fed; small enough that the
 * feature block plus the ensemble scratch stay cache-resident.
 */
constexpr std::size_t kScoreBlock = 256;

/**
 * Stream configs @p idx through @p predictBlock in kScoreBlock chunks
 * and score the predictions. The actual/predicted vectors are filled in
 * the same index order as the per-point scorePredictions template, so
 * the rmae/correlation sums accumulate identically.
 */
template <typename BatchFn>
PredictionQuality
scoreBlocks(const Campaign &campaign, std::size_t programIdx,
            Metric metric, const std::vector<std::size_t> &idx,
            BatchFn &&predictBlock)
{
    std::vector<double> actual(idx.size());
    std::vector<double> predicted(idx.size());
    std::vector<double> features(
        std::min(kScoreBlock, idx.size()) * kNumParams);
    for (std::size_t base = 0; base < idx.size(); base += kScoreBlock) {
        const std::size_t n = std::min(kScoreBlock, idx.size() - base);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = idx[base + i];
            campaign.configs()[c].featuresInto(&features[i * kNumParams]);
            actual[base + i] =
                campaign.result(programIdx, c).get(metric);
        }
        predictBlock(features.data(), n, &predicted[base]);
    }
    PredictionQuality quality;
    quality.rmaePercent = stats::rmae(predicted, actual);
    quality.correlation = stats::correlation(predicted, actual);
    return quality;
}

} // namespace

PredictionQuality
scorePredictionsBatched(const Campaign &campaign, std::size_t programIdx,
                        Metric metric,
                        const std::vector<std::size_t> &idx,
                        const ArchitectureCentricPredictor &predictor)
{
    BatchPredictScratch scratch;
    return scoreBlocks(
        campaign, programIdx, metric, idx,
        [&](const double *xs, std::size_t n, double *out) {
            predictor.predictBatchFromFeatures(xs, n, out, scratch);
        });
}

PredictionQuality
scorePredictionsBatched(const Campaign &campaign, std::size_t programIdx,
                        Metric metric,
                        const std::vector<std::size_t> &idx,
                        const ProgramSpecificPredictor &predictor)
{
    MlpBatchScratch scratch;
    return scoreBlocks(
        campaign, programIdx, metric, idx,
        [&](const double *xs, std::size_t n, double *out) {
            predictor.predictBatchFromFeatures(xs, n, out, scratch);
        });
}

std::vector<std::size_t>
sampleIndices(std::size_t limit, std::size_t count, std::uint64_t seed)
{
    ACDSE_CHECK(count <= limit, "cannot sample ", count, " of ", limit);
    std::vector<std::size_t> all(limit);
    std::iota(all.begin(), all.end(), 0);
    Rng rng(seed);
    // Partial Fisher-Yates: shuffle only the prefix we keep.
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t j = i + rng.nextBounded(limit - i);
        std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
}

Evaluator::Evaluator(Campaign &campaign, ArchCentricOptions options,
                     std::size_t threads)
    : campaign_(campaign), options_(options)
{
    if (threads)
        ownedPool_ = std::make_unique<ThreadPool>(threads);
    campaign_.ensureComputed();
}

Evaluator::~Evaluator() = default;

ThreadPool &
Evaluator::pool()
{
    return ownedPool_ ? *ownedPool_ : ThreadPool::global();
}

std::shared_ptr<const ProgramSpecificPredictor>
Evaluator::trainProgramModel(std::size_t programIdx, Metric metric,
                             std::size_t t, std::uint64_t seed) const
{
    // Per-program training sets use a seed derived from (seed, program)
    // so different programs see different configurations, as with
    // independent random selection in the paper. The derivation is
    // also what makes parallel training deterministic: a model's
    // stream depends only on (seed, program), never on which worker
    // trains it or in what order.
    const std::uint64_t derived =
        seed ^ (0x9e3779b97f4a7c15ULL * (programIdx + 1));
    const auto idx =
        sampleIndices(campaign_.configs().size(), t, derived);

    auto opts = options_.programModel;
    opts.mlp.seed = derived ^ 0xdecafbadULL;
    auto model = std::make_shared<ProgramSpecificPredictor>(opts);
    model->train(campaign_.configsAt(idx),
                 campaign_.metricAt(programIdx, metric, idx));
    return model;
}

std::shared_ptr<const ProgramSpecificPredictor>
Evaluator::programModel(std::size_t programIdx, Metric metric,
                        std::size_t t, std::uint64_t seed)
{
    const ModelKey key = std::make_tuple(programIdx, metric, t, seed);
    {
        MutexLock lock(cacheMutex_);
        auto it = modelCache_.find(key);
        if (it != modelCache_.end())
            return it->second;
    }
    auto model = trainProgramModel(programIdx, metric, t, seed);
    MutexLock lock(cacheMutex_);
    // Two folds can race to train the same model; both train it
    // identically (deterministic derivation), so keeping whichever
    // inserted first changes nothing.
    return modelCache_.emplace(key, std::move(model)).first->second;
}

void
Evaluator::warmProgramModels(const std::vector<std::size_t> &programs,
                             Metric metric, std::size_t t,
                             std::uint64_t seed)
{
    std::vector<std::size_t> missing;
    {
        MutexLock lock(cacheMutex_);
        for (std::size_t p : programs) {
            if (!modelCache_.contains(
                    std::make_tuple(p, metric, t, seed)))
                missing.push_back(p);
        }
    }
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()),
                  missing.end());
    if (missing.empty())
        return;

    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models(
        missing.size());
    pool().parallelFor(0, missing.size(), [&](std::size_t i) {
        models[i] = trainProgramModel(missing[i], metric, t, seed);
    });
    MutexLock lock(cacheMutex_);
    for (std::size_t i = 0; i < missing.size(); ++i) {
        modelCache_.emplace(std::make_tuple(missing[i], metric, t, seed),
                            std::move(models[i]));
    }
}

PredictionQuality
Evaluator::evaluateProgramSpecific(std::size_t programIdx, Metric metric,
                                   std::size_t numSims,
                                   std::uint64_t seed)
{
    const std::size_t total = campaign_.configs().size();
    const auto train_idx = sampleIndices(total, numSims, seed);
    std::vector<char> is_train(total, 0);
    for (std::size_t c : train_idx)
        is_train[c] = 1;

    auto opts = options_.programModel;
    opts.mlp.seed = seed ^ 0xabcdef12ULL;
    ProgramSpecificPredictor model(opts);
    model.train(campaign_.configsAt(train_idx),
                campaign_.metricAt(programIdx, metric, train_idx));

    std::vector<std::size_t> test_idx;
    test_idx.reserve(total - numSims);
    for (std::size_t c = 0; c < total; ++c) {
        if (!is_train[c])
            test_idx.push_back(c);
    }
    PredictionQuality quality = scorePredictionsBatched(
        campaign_, programIdx, metric, test_idx, model);

    // Training error: the model scored on its own training points.
    PredictionQuality train_quality = scorePredictionsBatched(
        campaign_, programIdx, metric, train_idx, model);
    quality.trainingErrorPercent = train_quality.rmaePercent;
    return quality;
}

std::vector<std::size_t>
Evaluator::leaveOneOut(std::size_t testProgramIdx,
                       std::size_t poolSize) const
{
    const std::size_t limit =
        poolSize ? poolSize : campaign_.programs().size();
    std::vector<std::size_t> training;
    for (std::size_t p = 0; p < limit; ++p) {
        if (p != testProgramIdx)
            training.push_back(p);
    }
    return training;
}

ArchitectureCentricPredictor
Evaluator::makeOfflinePredictor(
    const std::vector<std::size_t> &trainingPrograms, Metric metric,
    std::size_t t, std::uint64_t seed)
{
    std::vector<std::string> names;
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models;
    for (std::size_t p : trainingPrograms) {
        names.push_back(campaign_.programs()[p]);
        models.push_back(programModel(p, metric, t, seed));
    }
    ArchitectureCentricPredictor predictor(options_);
    predictor.useModels(std::move(names), std::move(models));
    return predictor;
}

PredictionQuality
Evaluator::evaluateArchCentric(
    std::size_t testProgramIdx, Metric metric,
    const std::vector<std::size_t> &trainingPrograms, std::size_t t,
    std::size_t r, std::uint64_t seed)
{
    for (std::size_t p : trainingPrograms) {
        ACDSE_CHECK(p != testProgramIdx,
                     "test program must not be in the training set");
    }
    ArchitectureCentricPredictor predictor =
        makeOfflinePredictor(trainingPrograms, metric, t, seed);

    const std::size_t total = campaign_.configs().size();
    const auto response_idx =
        sampleIndices(total, r, seed ^ 0x5eed'0002ULL);
    predictor.fitResponses(
        campaign_.configsAt(response_idx),
        campaign_.metricAt(testProgramIdx, metric, response_idx));

    std::vector<char> is_response(total, 0);
    for (std::size_t c : response_idx)
        is_response[c] = 1;
    std::vector<std::size_t> test_idx;
    test_idx.reserve(total - r);
    for (std::size_t c = 0; c < total; ++c) {
        if (!is_response[c])
            test_idx.push_back(c);
    }

    PredictionQuality quality = scorePredictionsBatched(
        campaign_, testProgramIdx, metric, test_idx, predictor);
    quality.trainingErrorPercent = predictor.trainingErrorPercent();
    return quality;
}

std::vector<PredictionQuality>
Evaluator::evaluateProgramSpecificSweep(
    const std::vector<std::size_t> &programs, Metric metric,
    std::size_t numSims, std::uint64_t seed)
{
    std::vector<PredictionQuality> results(programs.size());
    obs::Stage &blockStage =
        obs::Registry::global().stage("sweep/block");
    pool().parallelFor(0, programs.size(), [&](std::size_t i) {
        const obs::TraceSpan span(blockStage);
        results[i] = evaluateProgramSpecific(programs[i], metric,
                                             numSims, seed);
    });
    return results;
}

std::vector<PredictionQuality>
Evaluator::evaluateArchCentricSweep(
    const std::vector<std::size_t> &testPrograms, Metric metric,
    std::size_t t, std::size_t r, std::uint64_t seed,
    const std::vector<std::size_t> &trainingPool)
{
    const std::vector<std::size_t> &poolPrograms =
        trainingPool.empty() ? testPrograms : trainingPool;
    // Train every ANN a fold could need up front, in parallel; the
    // folds below then only read the model cache.
    warmProgramModels(poolPrograms, metric, t, seed);

    std::vector<PredictionQuality> results(testPrograms.size());
    obs::Stage &blockStage =
        obs::Registry::global().stage("sweep/block");
    pool().parallelFor(0, testPrograms.size(), [&](std::size_t i) {
        const obs::TraceSpan span(blockStage);
        const std::size_t p = testPrograms[i];
        std::vector<std::size_t> training;
        training.reserve(poolPrograms.size());
        for (std::size_t q : poolPrograms) {
            if (q != p)
                training.push_back(q);
        }
        results[i] =
            evaluateArchCentric(p, metric, training, t, r, seed);
    });
    return results;
}

} // namespace acdse
