/**
 * @file
 * Evaluation harness implementing the paper's methodology (Sections 6
 * and 7): N-fold / leave-one-out cross validation over the sampled
 * design space, scored with rmae and the correlation coefficient.
 */

#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "base/statistics.hh"
#include "base/sync.hh"
#include "core/architecture_centric_predictor.hh"
#include "core/campaign.hh"

namespace acdse
{

class ThreadPool;

/** Quality of one prediction experiment. */
struct PredictionQuality
{
    double rmaePercent = 0.0;       //!< relative mean absolute error (%)
    double correlation = 0.0;       //!< Pearson correlation coefficient
    double trainingErrorPercent = 0.0; //!< error on the fit's own inputs
};

/** Draw @p count distinct indices from [0, limit) (order randomised). */
std::vector<std::size_t> sampleIndices(std::size_t limit,
                                       std::size_t count,
                                       std::uint64_t seed);

/**
 * Runs the paper's experiments against a Campaign. Program-specific
 * ANNs are cached per (program, metric, T, seed): leave-one-out folds
 * share them, cutting evaluation cost by ~N x.
 *
 * The sweep entry points (evaluateProgramSpecificSweep,
 * evaluateArchCentricSweep) spread their per-program folds across the
 * thread pool; results are written to index-ordered slots and every
 * fold derives its randomness from (seed, program), so sweeps are
 * bit-identical at any thread count and to the equivalent serial loop
 * of single-fold calls (tests/test_parallel_determinism.cc).
 */
class Evaluator
{
  public:
    /**
     * @param campaign a computed (or computable) campaign.
     * @param options  predictor hyper-parameters.
     * @param threads  explicit sweep parallelism; 0 uses the shared
     *                 pool (ACDSE_THREADS sizing rule).
     */
    explicit Evaluator(Campaign &campaign,
                       ArchCentricOptions options = {},
                       std::size_t threads = 0);

    ~Evaluator();

    /** The underlying campaign. */
    Campaign &campaign() { return campaign_; }

    /**
     * Evaluate the program-specific baseline: train an ANN on
     * @p numSims random configurations of the program, test on all
     * remaining sampled configurations.
     */
    PredictionQuality evaluateProgramSpecific(std::size_t programIdx,
                                              Metric metric,
                                              std::size_t numSims,
                                              std::uint64_t seed);

    /**
     * Evaluate the architecture-centric model: offline-train on
     * @p trainingPrograms (T simulations each), draw R responses of the
     * test program, and test on all configurations not used as
     * responses. The test program must not be in the training set.
     */
    PredictionQuality evaluateArchCentric(
        std::size_t testProgramIdx, Metric metric,
        const std::vector<std::size_t> &trainingPrograms, std::size_t t,
        std::size_t r, std::uint64_t seed);

    /**
     * Program-specific baseline for every program in @p programs, in
     * parallel across the pool. Element i is exactly what
     * evaluateProgramSpecific(programs[i], ...) returns.
     */
    std::vector<PredictionQuality> evaluateProgramSpecificSweep(
        const std::vector<std::size_t> &programs, Metric metric,
        std::size_t numSims, std::uint64_t seed);

    /**
     * Architecture-centric evaluation of every program in
     * @p testPrograms, in parallel across the pool. Fold i tests
     * testPrograms[i] against a training set of @p trainingPool minus
     * the test program (when @p trainingPool is empty: the other
     * members of @p testPrograms -- classic leave-one-out). Element i
     * is exactly what the equivalent single evaluateArchCentric call
     * returns.
     */
    std::vector<PredictionQuality> evaluateArchCentricSweep(
        const std::vector<std::size_t> &testPrograms, Metric metric,
        std::size_t t, std::size_t r, std::uint64_t seed,
        const std::vector<std::size_t> &trainingPool = {});

    /**
     * Train (and cache) the per-program ANNs for @p programs in
     * parallel. Sweeps call this first so their folds only read the
     * cache; benches may call it to front-load the offline phase.
     */
    void warmProgramModels(const std::vector<std::size_t> &programs,
                           Metric metric, std::size_t t,
                           std::uint64_t seed);

    /**
     * Leave-one-out convenience: all campaign programs except the test
     * program (optionally restricted to the first @p suiteSize programs,
     * for SPEC-only training as in Section 7.3).
     */
    std::vector<std::size_t> leaveOneOut(std::size_t testProgramIdx,
                                         std::size_t poolSize = 0) const;

    /**
     * Build an architecture-centric predictor (offline phase only) from
     * cached models -- used by benches that then fit responses
     * themselves (e.g. Fig. 1).
     */
    ArchitectureCentricPredictor makeOfflinePredictor(
        const std::vector<std::size_t> &trainingPrograms, Metric metric,
        std::size_t t, std::uint64_t seed);

    /** A trained per-program ANN from the cache (training on miss). */
    std::shared_ptr<const ProgramSpecificPredictor> programModel(
        std::size_t programIdx, Metric metric, std::size_t t,
        std::uint64_t seed);

  private:
    using ModelKey =
        std::tuple<std::size_t, Metric, std::size_t, std::uint64_t>;

    /** Train one per-program ANN (no cache involvement). */
    std::shared_ptr<const ProgramSpecificPredictor> trainProgramModel(
        std::size_t programIdx, Metric metric, std::size_t t,
        std::uint64_t seed) const;

    /** The pool sweeps run on (shared or explicitly sized). */
    ThreadPool &pool();

    Campaign &campaign_;
    ArchCentricOptions options_;
    std::unique_ptr<ThreadPool> ownedPool_; //!< set iff threads != 0
    // Guards modelCache_: sweep folds running on pool workers hit the
    // cache concurrently (warmProgramModels makes those reads, but a
    // cold fold may still insert).
    Mutex cacheMutex_;
    std::map<ModelKey,
             std::shared_ptr<const ProgramSpecificPredictor>>
        modelCache_ ACDSE_GUARDED_BY(cacheMutex_);
};

/**
 * Score a batch-capable predictor over configs @p idx of a program,
 * streaming fixed-size feature blocks through the vectorised
 * predictBatchFromFeatures kernels instead of one predict call per
 * point. Bit-identical to the equivalent per-point scorePredictions
 * loop (the batch kernels are lane-exact against scalar prediction and
 * the score accumulates in the same index order).
 */
PredictionQuality scorePredictionsBatched(
    const Campaign &campaign, std::size_t programIdx, Metric metric,
    const std::vector<std::size_t> &idx,
    const ArchitectureCentricPredictor &predictor);

/** Batched scoring of a program-specific model; see above. */
PredictionQuality scorePredictionsBatched(
    const Campaign &campaign, std::size_t programIdx, Metric metric,
    const std::vector<std::size_t> &idx,
    const ProgramSpecificPredictor &predictor);

/** Score predictions of @p predict over configs @p idx of a program. */
template <typename PredictFn>
PredictionQuality
scorePredictions(const Campaign &campaign, std::size_t programIdx,
                 Metric metric, const std::vector<std::size_t> &idx,
                 PredictFn &&predict)
{
    std::vector<double> actual;
    std::vector<double> predicted;
    actual.reserve(idx.size());
    predicted.reserve(idx.size());
    for (std::size_t c : idx) {
        actual.push_back(campaign.result(programIdx, c).get(metric));
        predicted.push_back(predict(campaign.configs()[c]));
    }
    PredictionQuality quality;
    quality.rmaePercent = stats::rmae(predicted, actual);
    quality.correlation = stats::correlation(predicted, actual);
    return quality;
}

} // namespace acdse

