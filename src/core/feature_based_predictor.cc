#include "core/feature_based_predictor.hh"

#include <cmath>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

std::vector<double>
programFeatureVector(const Trace &trace)
{
    const TraceStats &s = trace.stats();
    std::vector<double> f;
    // Instruction mix.
    for (std::size_t c = 0; c < kNumInstClasses; ++c)
        f.push_back(s.classFraction[c]);
    // Dependence / control structure.
    f.push_back(s.meanDepDistance);
    f.push_back(s.takenFraction);
    // Footprints on a log scale (they span orders of magnitude).
    f.push_back(std::log2(1.0 + static_cast<double>(s.distinctLines)));
    f.push_back(std::log2(1.0 + static_cast<double>(s.distinctPcs)));
    return f;
}

FeatureBasedPredictor::FeatureBasedPredictor(FeatureBasedOptions options)
    : options_(options)
{
    ACDSE_CHECK(options_.bandwidth > 0.0, "bandwidth must be positive");
}

void
FeatureBasedPredictor::trainOffline(
    const std::vector<FeatureTrainingSet> &sets)
{
    ACDSE_CHECK(!sets.empty(), "need at least one training program");
    names_.clear();
    features_.clear();
    models_.clear();
    for (const auto &set : sets) {
        ACDSE_CHECK(!set.features.empty(), "missing program features");
        auto model = std::make_shared<ProgramSpecificPredictor>(
            options_.programModel);
        model->train(set.configs, set.values);
        names_.push_back(set.name);
        features_.push_back(set.features);
        models_.push_back(std::move(model));
    }

    // z-score normalisation of the feature space, fitted on the
    // training programs.
    const std::size_t dims = features_.front().size();
    featureMean_.assign(dims, 0.0);
    featureScale_.assign(dims, 1.0);
    for (const auto &f : features_) {
        ACDSE_CHECK(f.size() == dims, "inconsistent feature widths");
        for (std::size_t d = 0; d < dims; ++d)
            featureMean_[d] += f[d];
    }
    for (double &m : featureMean_)
        m /= static_cast<double>(features_.size());
    std::vector<double> var(dims, 0.0);
    for (const auto &f : features_) {
        for (std::size_t d = 0; d < dims; ++d)
            var[d] += (f[d] - featureMean_[d]) * (f[d] - featureMean_[d]);
    }
    for (std::size_t d = 0; d < dims; ++d) {
        const double sd = std::sqrt(
            var[d] / static_cast<double>(features_.size()));
        featureScale_[d] = sd > 1e-9 ? sd : 1.0;
    }
    trained_ = true;
    targeted_ = false;
}

void
FeatureBasedPredictor::setTargetFeatures(
    const std::vector<double> &features)
{
    ACDSE_CHECK(trained_, "setTargetFeatures before trainOffline");
    ACDSE_CHECK(features.size() == featureMean_.size(),
                 "feature width mismatch");

    weights_.assign(models_.size(), 0.0);
    double total = 0.0;
    for (std::size_t j = 0; j < models_.size(); ++j) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < features.size(); ++d) {
            const double a =
                (features[d] - featureMean_[d]) / featureScale_[d];
            const double b = (features_[j][d] - featureMean_[d]) /
                             featureScale_[d];
            d2 += (a - b) * (a - b);
        }
        weights_[j] = std::exp(
            -d2 / (2.0 * options_.bandwidth * options_.bandwidth));
        total += weights_[j];
    }
    ACDSE_CHECK(total > 0.0, "degenerate kernel weights");
    for (double &w : weights_)
        w /= total;
    targeted_ = true;
}

double
FeatureBasedPredictor::predict(const MicroarchConfig &config) const
{
    ACDSE_CHECK(ready(), "predict before training/targeting");
    // Build the feature vector once and share one scaled-input scratch
    // across the ensemble instead of re-deriving both per model.
    const std::vector<double> features = config.asFeatureVector();
    std::vector<double> scratch;
    double acc = 0.0;
    for (std::size_t j = 0; j < models_.size(); ++j) {
        if (weights_[j] > 1e-9) {
            acc += weights_[j] *
                   models_[j]->predictFromFeatures(features, scratch);
        }
    }
    return acc;
}

} // namespace acdse
