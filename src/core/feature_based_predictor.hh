/**
 * @file
 * Feature-based trans-program predictor, in the style of Hoste et al.
 * (PACT'06) -- the related approach the paper discusses in Section 9.5.
 *
 * Instead of fitting combination weights from responses (simulations
 * of the new program), this model weights the trained program-specific
 * ANNs by *similarity of microarchitecture-independent program
 * features* (instruction mix, dependence distances, footprints,
 * branch behaviour). It therefore needs ZERO simulations of the new
 * program -- but, as the paper argues, features are a weaker signal
 * than responses; bench_feature_based quantifies the gap.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/microarch_config.hh"
#include "core/program_specific_predictor.hh"
#include "trace/trace.hh"

namespace acdse
{

/**
 * Microarchitecture-independent feature vector of a program, derived
 * from its trace alone (no simulation).
 */
std::vector<double> programFeatureVector(const Trace &trace);

/** Options for the feature-based predictor. */
struct FeatureBasedOptions
{
    ProgramSpecificOptions programModel; //!< per-program ANN settings
    /**
     * Kernel bandwidth in (z-scored) feature space: smaller focuses on
     * the nearest training program, larger blends more broadly.
     */
    double bandwidth = 1.0;
};

/** One training program: its name, models inputs and trace features. */
struct FeatureTrainingSet
{
    std::string name;                      //!< program name
    std::vector<MicroarchConfig> configs;  //!< simulated configs
    std::vector<double> values;            //!< measured metric values
    std::vector<double> features;          //!< programFeatureVector()
};

/** The feature-based (zero-response) trans-program predictor. */
class FeatureBasedPredictor
{
  public:
    /** Construct with hyper-parameters. */
    explicit FeatureBasedPredictor(FeatureBasedOptions options = {});

    /** Offline phase: train one ANN per training program. */
    void trainOffline(const std::vector<FeatureTrainingSet> &sets);

    /**
     * Target a new program by its features only (no simulations):
     * computes Gaussian-kernel weights over the training programs.
     */
    void setTargetFeatures(const std::vector<double> &features);

    /** Predict the metric of the targeted program at a configuration. */
    double predict(const MicroarchConfig &config) const;

    /** The kernel weights over the training programs (sum to 1). */
    const std::vector<double> &weights() const { return weights_; }

    /** Names of the training programs. */
    const std::vector<std::string> &trainingPrograms() const
    {
        return names_;
    }

    /** Whether both phases completed. */
    bool ready() const { return trained_ && targeted_; }

  private:
    FeatureBasedOptions options_;
    std::vector<std::string> names_;
    std::vector<std::vector<double>> features_;
    std::vector<double> featureMean_;
    std::vector<double> featureScale_;
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models_;
    std::vector<double> weights_;
    bool trained_ = false;
    bool targeted_ = false;
};

} // namespace acdse

