#include "core/program_specific_predictor.hh"

#include <cmath>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "base/simd.hh"

namespace acdse
{

ProgramSpecificPredictor::ProgramSpecificPredictor(
    ProgramSpecificOptions options)
    : options_(options), mlp_(options.mlp)
{
}

void
ProgramSpecificPredictor::train(const std::vector<MicroarchConfig> &configs,
                                const std::vector<double> &values)
{
    ACDSE_CHECK(configs.size() == values.size(),
                 "configs/values size mismatch");
    ACDSE_CHECK(!configs.empty(), "cannot train on no simulations");
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    xs.reserve(configs.size());
    ys.reserve(values.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        xs.push_back(configs[i].asFeatureVector());
        if (options_.logTarget) {
            ACDSE_CHECK(values[i] > 0.0,
                         "log-target training needs positive metrics");
            ys.push_back(std::log(values[i]));
        } else {
            ys.push_back(values[i]);
        }
    }
    mlp_.train(xs, ys);
}

void
ProgramSpecificPredictor::save(BinaryWriter &w) const
{
    w.u8(options_.logTarget ? 1 : 0);
    mlp_.save(w);
}

void
ProgramSpecificPredictor::load(BinaryReader &r)
{
    options_.logTarget = r.u8() != 0;
    mlp_.load(r);
    options_.mlp = mlp_.options();
}

double
ProgramSpecificPredictor::predict(const MicroarchConfig &config) const
{
    std::vector<double> scratch;
    return predictFromFeatures(config.asFeatureVector(), scratch);
}

double
ProgramSpecificPredictor::predictFromFeatures(
    const std::vector<double> &features,
    std::vector<double> &scratch) const
{
    ACDSE_CHECK(trained(), "predict before train");
    const double raw = mlp_.predict(features, scratch);
    return options_.logTarget ? std::exp(raw) : raw;
}

void
ProgramSpecificPredictor::predictBatchFromFeatures(
    const double *features, std::size_t count, double *out,
    MlpBatchScratch &scratch) const
{
    ACDSE_CHECK(trained(), "predict before train");
    mlp_.predictBatch(features, count, out, scratch);
    if (options_.logTarget) {
        for (std::size_t c = 0; c < count; ++c)
            out[c] = std::exp(out[c]);
    }
}

void
ProgramSpecificPredictor::predictBlockSoaFromFeatures(
    const double *soa, double *out, MlpBatchScratch &scratch) const
{
    ACDSE_DCHECK(trained(), "predict before train");
    mlp_.predictBlockSoa(soa, out, scratch);
    if (options_.logTarget) {
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            out[l] = std::exp(out[l]);
    }
}

} // namespace acdse
