/**
 * @file
 * Program-specific performance predictor (Ipek et al., ASPLOS'06 --
 * the paper's reference [7] and its main comparison point, Fig. 13).
 *
 * An artificial neural network maps the 13-parameter configuration
 * vector to one target metric for one program. The architecture-centric
 * model trains N of these offline (one per training program) and
 * combines them; the standalone predictor is also evaluated on its own
 * as the state-of-the-art baseline.
 */

#pragma once

#include <vector>

#include "arch/microarch_config.hh"
#include "ml/mlp.hh"

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Options for a program-specific predictor. */
struct ProgramSpecificOptions
{
    MlpOptions mlp;         //!< network hyper-parameters (paper: 10 hidden)
    /**
     * Learn log(metric) instead of the raw metric. Design-space metrics
     * span orders of magnitude, and relative (rmae) error is what is
     * evaluated, so a log target conditions the regression on exactly
     * the quantity being scored. Disable to ablate.
     */
    bool logTarget = true;
};

/** One trained program-specific model for one (program, metric) pair. */
class ProgramSpecificPredictor
{
  public:
    /** Construct with hyper-parameters; train() does the work. */
    explicit ProgramSpecificPredictor(ProgramSpecificOptions options = {});

    /**
     * Train on T simulated configurations of one program.
     * @param configs the simulated design points.
     * @param values  the measured metric at each point (all > 0).
     */
    void train(const std::vector<MicroarchConfig> &configs,
               const std::vector<double> &values);

    /** Predict the metric for an arbitrary configuration. */
    double predict(const MicroarchConfig &config) const;

    /**
     * Predict from a precomputed feature vector
     * (MicroarchConfig::asFeatureVector()), using @p scratch for the
     * network's scaled input. Identical arithmetic to predict(); lets
     * callers that evaluate many models on one configuration -- the
     * architecture-centric ensemble, the prediction service -- build
     * the feature vector once and keep the hot path allocation-free.
     */
    double predictFromFeatures(const std::vector<double> &features,
                               std::vector<double> &scratch) const;

    /**
     * Predict @p count points at once: point c occupies
     * features[c * inputDim() .. (c+1) * inputDim()) row-major and its
     * prediction lands in out[c]. Runs the vectorised Mlp::predictBatch
     * kernel (plus the batched log-target inversion); out[c] is
     * bit-identical to predictFromFeatures on point c at any count.
     */
    void predictBatchFromFeatures(const double *features,
                                  std::size_t count, double *out,
                                  MlpBatchScratch &scratch) const;

    /**
     * Predict one full simd::kLanes-wide block already transposed to
     * feature-major layout (see Mlp::predictBlockSoa); out receives
     * kLanes predictions, bit-identical to predictFromFeatures per
     * lane. The ensemble transposes each block once and hands it to
     * every member through this entry point.
     */
    void predictBlockSoaFromFeatures(const double *soa, double *out,
                                     MlpBatchScratch &scratch) const;

    /** Whether train() has been called. */
    bool trained() const { return mlp_.trained(); }

    /** Width of the feature vectors the network expects. */
    std::size_t inputDim() const { return mlp_.inputDim(); }

    /** Serialise the trained model (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    ProgramSpecificOptions options_;
    Mlp mlp_;
};

} // namespace acdse

