#include "core/search.hh"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "arch/design_space.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace acdse
{

std::vector<MicroarchConfig>
validNeighbours(const MicroarchConfig &config)
{
    std::vector<MicroarchConfig> neighbours;
    for (const auto &spec : paramSpecs()) {
        const std::size_t idx = spec.indexOf(config.get(spec.id));
        for (int direction : {-1, +1}) {
            const std::ptrdiff_t next =
                static_cast<std::ptrdiff_t>(idx) + direction;
            if (next < 0 ||
                next >= static_cast<std::ptrdiff_t>(spec.count())) {
                continue;
            }
            MicroarchConfig candidate = config;
            candidate.set(spec.id,
                          spec.values[static_cast<std::size_t>(next)]);
            if (DesignSpace::isValid(candidate))
                neighbours.push_back(std::move(candidate));
        }
    }
    return neighbours;
}

std::vector<ScoredConfig>
findBestPredicted(const PredictorFn &predict,
                  const SearchOptions &options)
{
    ACDSE_CHECK(options.sweepSize > 0, "sweep must be non-empty");
    ACDSE_CHECK(options.keepTop > 0, "must keep at least one seed");

    // Random sweep.
    Rng rng(options.seed);
    std::vector<ScoredConfig> sweep;
    sweep.reserve(options.sweepSize);
    std::unordered_set<std::string> seen;
    while (sweep.size() < options.sweepSize) {
        MicroarchConfig config = DesignSpace::sampleValid(rng);
        if (!seen.insert(config.key()).second)
            continue;
        const double score = predict(config);
        sweep.push_back({std::move(config), score});
    }
    std::sort(sweep.begin(), sweep.end(),
              [](const ScoredConfig &a, const ScoredConfig &b) {
                  return a.predicted < b.predicted;
              });
    sweep.resize(std::min(options.keepTop, sweep.size()));

    // Greedy hill climbing from each seed.
    std::vector<ScoredConfig> results;
    for (auto &seed_point : sweep) {
        ScoredConfig current = seed_point;
        for (std::size_t step = 0; step < options.maxClimbSteps;
             ++step) {
            ScoredConfig best = current;
            for (auto &neighbour : validNeighbours(current.config)) {
                const double score = predict(neighbour);
                if (score < best.predicted)
                    best = {std::move(neighbour), score};
            }
            if (best.config == current.config)
                break; // local optimum
            current = std::move(best);
        }
        results.push_back(std::move(current));
    }

    // Deduplicate and sort best-first.
    std::sort(results.begin(), results.end(),
              [](const ScoredConfig &a, const ScoredConfig &b) {
                  return a.predicted < b.predicted;
              });
    std::vector<ScoredConfig> unique;
    std::unordered_set<std::string> keys;
    for (auto &r : results) {
        if (keys.insert(r.config.key()).second)
            unique.push_back(std::move(r));
    }
    return unique;
}

std::vector<MicroarchConfig>
predictedParetoFrontier(const PredictorFn &objectiveA,
                        const PredictorFn &objectiveB,
                        std::size_t sweepSize, std::uint64_t seed)
{
    ACDSE_CHECK(sweepSize > 0, "sweep must be non-empty");
    Rng rng(seed);

    struct Point
    {
        MicroarchConfig config;
        double a;
        double b;
    };
    std::vector<Point> points;
    points.reserve(sweepSize);
    std::unordered_set<std::string> seen;
    while (points.size() < sweepSize) {
        MicroarchConfig config = DesignSpace::sampleValid(rng);
        if (!seen.insert(config.key()).second)
            continue;
        const double a = objectiveA(config);
        const double b = objectiveB(config);
        points.push_back({std::move(config), a, b});
    }

    // Sort by objective A; sweep keeping strictly-improving B.
    std::sort(points.begin(), points.end(),
              [](const Point &x, const Point &y) {
                  return x.a < y.a || (x.a == y.a && x.b < y.b);
              });
    std::vector<MicroarchConfig> frontier;
    double best_b = std::numeric_limits<double>::infinity();
    for (auto &point : points) {
        if (point.b < best_b) {
            best_b = point.b;
            frontier.push_back(std::move(point.config));
        }
    }
    return frontier;
}

} // namespace acdse
