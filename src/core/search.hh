/**
 * @file
 * Predictor-guided design-space search -- what the paper's models are
 * *for*: locating sweet spots in an 18-billion-point space without
 * simulating it (Section 1: "the identification of sweet spots where
 * performance and power are optimally balanced").
 *
 * Two search primitives over any predictor function:
 *  - a random sweep + greedy hill climbing over single-parameter
 *    neighbours, returning the best-predicted configurations;
 *  - a predicted Pareto frontier over two metrics (e.g. cycles vs
 *    energy).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/microarch_config.hh"

namespace acdse
{

/** A scalar predictor over configurations (lower is better). */
using PredictorFn = std::function<double(const MicroarchConfig &)>;

/** Options for findBestPredicted(). */
struct SearchOptions
{
    std::size_t sweepSize = 4096;   //!< random configurations scored
    std::size_t keepTop = 16;       //!< seeds taken into hill climbing
    std::size_t maxClimbSteps = 64; //!< per-seed greedy step budget
    std::uint64_t seed = 0x5ea4c;   //!< sweep RNG seed
};

/** One scored design point. */
struct ScoredConfig
{
    MicroarchConfig config;     //!< the design point
    double predicted;           //!< the predictor's score
};

/**
 * All single-parameter neighbours of a configuration (one step up or
 * down each parameter's value list) that satisfy the validity rules.
 */
std::vector<MicroarchConfig> validNeighbours(
    const MicroarchConfig &config);

/**
 * Find the configurations with the lowest predicted metric: random
 * sweep, then greedy hill climbing from the best seeds. Returns the
 * resulting points sorted by predicted value (best first, distinct).
 */
std::vector<ScoredConfig> findBestPredicted(
    const PredictorFn &predict, const SearchOptions &options = {});

/**
 * Predicted Pareto frontier over two objectives (both minimised):
 * sweeps random configurations and keeps the non-dominated set,
 * sorted by the first objective.
 */
std::vector<MicroarchConfig> predictedParetoFrontier(
    const PredictorFn &objectiveA, const PredictorFn &objectiveB,
    std::size_t sweepSize = 4096, std::uint64_t seed = 0x9a7e70);

} // namespace acdse

