#include "explore/explorer.hh"

#include <algorithm>
#include <memory>

#include "arch/design_space.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/simd.hh"
#include "base/thread_pool.hh"
#include "obs/trace_span.hh"

namespace acdse::explore
{

namespace
{

/** Per-tile RNG seed derivation (the evaluation.cc idiom). */
std::uint64_t
tileSeed(std::uint64_t seed, std::size_t tile)
{
    return seed ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(tile) + 1));
}

/** Validity rules on raw values (DesignSpace::isValid, no config). */
bool
validValues(const PointValues &values)
{
    const int rob = values[static_cast<std::size_t>(Param::RobSize)];
    if (values[static_cast<std::size_t>(Param::IqSize)] > rob)
        return false;
    if (values[static_cast<std::size_t>(Param::LsqSize)] > rob)
        return false;
    return values[static_cast<std::size_t>(Param::RfWritePorts)] <=
           values[static_cast<std::size_t>(Param::RfReadPorts)];
}

} // namespace

TileGenerator::TileGenerator(const SubSpace &space, Mode mode,
                             std::size_t tileSize, std::uint64_t samples,
                             std::uint64_t seed)
    : space_(space), mode_(mode), tileSize_(tileSize), samples_(samples),
      seed_(seed), raw_(space.rawPoints())
{
    ACDSE_CHECK(tileSize_ > 0, "tile size must be positive");
    if (mode_ == Mode::Sample) {
        ACDSE_CHECK(samples_ > 0, "sample count must be positive");
        ACDSE_CHECK(space_.validPoints() > 0,
                    "sub-space has no valid points to sample");
    }
    const std::uint64_t stream =
        mode_ == Mode::Enumerate ? raw_ : samples_;
    tiles_ = static_cast<std::size_t>((stream + tileSize_ - 1) /
                                      tileSize_);

    // Feature values are looked up per (parameter, value), built once
    // through featuresInto itself so enumerated feature rows are
    // bit-identical to MicroarchConfig::asFeatureVector on the same
    // point (featuresInto applies log2 to the capacity parameters).
    const MicroarchConfig baseline = DesignSpace::baseline();
    double row[kNumParams];
    for (std::size_t i = 0; i < kNumParams; ++i) {
        const Param p = static_cast<Param>(i);
        for (int value : space_.values(p)) {
            MicroarchConfig probe = baseline;
            probe.set(p, value);
            probe.featuresInto(row);
            featureOf_[i].push_back(row[i]);
        }
    }
}

void
TileGenerator::emit(const std::array<std::size_t, kNumParams> &idx,
                    std::vector<PointValues> &values,
                    std::vector<double> &features) const
{
    PointValues point;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        point[i] = space_.values(static_cast<Param>(i))[idx[i]];
        features.push_back(featureOf_[i][idx[i]]);
    }
    values.push_back(point);
}

TileGenerator::TileStats
TileGenerator::generate(std::size_t tile,
                        std::vector<PointValues> &values,
                        std::vector<double> &features) const
{
    ACDSE_CHECK(tile < tiles_, "tile ", tile, " out of range");
    values.clear();
    features.clear();
    TileStats stats;
    std::array<std::size_t, kNumParams> idx{};
    if (mode_ == Mode::Enumerate) {
        const std::uint64_t start =
            static_cast<std::uint64_t>(tile) * tileSize_;
        const std::uint64_t end =
            std::min<std::uint64_t>(start + tileSize_, raw_);
        // Decode the tile's first mixed-radix index (last parameter
        // fastest), then advance odometer-style: no per-point divides.
        std::uint64_t rem = start;
        for (std::size_t i = kNumParams; i-- > 0;) {
            const std::uint64_t count =
                space_.values(static_cast<Param>(i)).size();
            idx[i] = static_cast<std::size_t>(rem % count);
            rem /= count;
        }
        PointValues point;
        for (std::uint64_t at = start; at < end; ++at) {
            for (std::size_t i = 0; i < kNumParams; ++i)
                point[i] = space_.values(static_cast<Param>(i))[idx[i]];
            if (validValues(point))
                emit(idx, values, features);
            for (std::size_t i = kNumParams; i-- > 0;) {
                if (++idx[i] <
                    space_.values(static_cast<Param>(i)).size())
                    break;
                idx[i] = 0;
            }
        }
        stats.generated = end - start;
    } else {
        const std::uint64_t start =
            static_cast<std::uint64_t>(tile) * tileSize_;
        const std::uint64_t quota =
            std::min<std::uint64_t>(tileSize_, samples_ - start);
        // The RNG derives from (seed, tile), never from the worker
        // thread, so tile contents are schedule-independent.
        Rng rng(tileSeed(seed_, tile));
        PointValues point;
        while (stats.valid < quota) {
            for (std::size_t i = 0; i < kNumParams; ++i) {
                const auto &subset =
                    space_.values(static_cast<Param>(i));
                idx[i] = static_cast<std::size_t>(
                    rng.nextBounded(subset.size()));
                point[i] = subset[idx[i]];
            }
            ++stats.generated;
            if (!validValues(point))
                continue;
            emit(idx, values, features);
            ++stats.valid;
        }
        return stats;
    }
    stats.valid = values.size();
    return stats;
}

const std::vector<ScoredConfig> &
ExploreResult::topkFor(Metric metric) const
{
    for (std::size_t k = 0; k < metrics.size(); ++k) {
        if (metrics[k] == metric)
            return topk[k];
    }
    panic("metric '", metricName(metric), "' was not explored");
}

namespace
{

/** Partial reduction of one tile, merged serially in tile order. */
struct TileReduction
{
    ParetoFront front;
    std::vector<TopK> topk;
    TileGenerator::TileStats stats;
};

/**
 * Score one tile's feature rows with every ensemble. Full SIMD blocks
 * are transposed to feature-major once and shared across all metric
 * ensembles; the remainder runs each ensemble's ordinary batch path.
 */
void
predictTile(std::span<const MetricEnsemble> ensembles,
            const std::vector<double> &features, std::size_t count,
            std::vector<std::vector<double>> &outs,
            std::vector<BatchPredictScratch> &scratch,
            std::vector<double> &soa)
{
    const std::size_t full = count - count % simd::kLanes;
    soa.resize(kNumParams * simd::kLanes);
    for (std::size_t base = 0; base < full; base += simd::kLanes) {
        simd::transposeBlock(features.data() + base * kNumParams,
                             kNumParams, soa.data());
        for (std::size_t k = 0; k < ensembles.size(); ++k) {
            ensembles[k].predictor->predictBlockSoaFromFeatures(
                soa.data(), outs[k].data() + base, scratch[k]);
        }
    }
    if (full < count) {
        for (std::size_t k = 0; k < ensembles.size(); ++k) {
            ensembles[k].predictor->predictBatchFromFeatures(
                features.data() + full * kNumParams, count - full,
                outs[k].data() + full, scratch[k]);
        }
    }
}

} // namespace

ExploreResult
explore(std::span<const MetricEnsemble> ensembles,
        const ExploreOptions &options)
{
    ACDSE_CHECK(!ensembles.empty(), "need at least one metric ensemble");
    for (const auto &ensemble : ensembles) {
        ACDSE_CHECK(ensemble.predictor && ensemble.predictor->ready(),
                    "ensemble for '", metricName(ensemble.metric),
                    "' is not fitted");
        ACDSE_CHECK(ensemble.predictor->featureDim() == kNumParams,
                    "ensemble for '", metricName(ensemble.metric),
                    "' expects ", ensemble.predictor->featureDim(),
                    " features, the design space has ", kNumParams);
    }
    const std::size_t m = ensembles.size();
    std::size_t pareto_x = m, pareto_y = m;
    for (std::size_t k = 0; k < m; ++k) {
        if (ensembles[k].metric == options.paretoX)
            pareto_x = k;
        if (ensembles[k].metric == options.paretoY)
            pareto_y = k;
    }
    ACDSE_CHECK(pareto_x < m && pareto_y < m,
                "the Pareto objectives must be among the scored metrics");

    ThreadPool &pool =
        options.pool ? *options.pool : ThreadPool::global();
    const TileGenerator generator(options.space, options.mode,
                                  options.tileSize, options.samples,
                                  options.seed);
    const std::size_t tiles = generator.tiles();

    // Intern every stage and counter before fanning out; workers then
    // only touch wait-free instruments.
    obs::Registry &registry = obs::Registry::global();
    obs::Stage &tile_stage = registry.stage("explore/tile");
    obs::Stage &reduce_stage = registry.stage("explore/reduce");
    obs::Counter &generated_ctr =
        registry.counter("explore/points-generated");
    obs::Counter &filtered_ctr =
        registry.counter("explore/points-filtered");
    obs::Counter &predicted_ctr =
        registry.counter("explore/points-predicted");
    obs::Counter &tiles_ctr = registry.counter("explore/tiles");

    ParetoFront front;
    std::vector<TopK> topk(m, TopK(options.topK));
    ExploreStats totals;

    // Tiles run in waves: each wave fans out across the pool into
    // caller-indexed slots, then merges serially in tile order. The
    // reducers are order-independent set functions, so the wave split
    // only bounds peak memory; results are bit-identical at any thread
    // count.
    constexpr std::size_t kWave = 1024;
    std::vector<std::unique_ptr<TileReduction>> wave(
        std::min(kWave, tiles));
    std::size_t wave_begin = 0;

    // Pool task for one tile: generate, predict, reduce locally. The
    // span covers a whole tile (thousands of points) -- stage-granular.
    const auto run_tile = [&](std::size_t tile) {
        const obs::TraceSpan span(tile_stage);
        auto reduction = std::make_unique<TileReduction>();
        reduction->topk.assign(m, TopK(options.topK));

        std::vector<PointValues> values;
        std::vector<double> features;
        reduction->stats = generator.generate(tile, values, features);
        const std::size_t n = values.size();

        std::vector<std::vector<double>> outs(m, std::vector<double>(n));
        std::vector<BatchPredictScratch> scratch(m);
        std::vector<double> soa;
        if (n > 0)
            predictTile(ensembles, features, n, outs, scratch, soa);

        for (std::size_t i = 0; i < n; ++i) {
            reduction->front.add(values[i], outs[pareto_x][i],
                                 outs[pareto_y][i]);
        }
        for (std::size_t k = 0; k < m; ++k) {
            for (std::size_t i = 0; i < n; ++i)
                reduction->topk[k].add(values[i], outs[k][i]);
        }

        generated_ctr.add(reduction->stats.generated);
        filtered_ctr.add(reduction->stats.generated -
                         reduction->stats.valid);
        predicted_ctr.add(n);
        tiles_ctr.add(1);
        wave[tile - wave_begin] = std::move(reduction);
    };

    // Serial in-order merge of one completed wave.
    const auto merge_wave = [&](std::size_t count) {
        const obs::TraceSpan span(reduce_stage);
        for (std::size_t slot = 0; slot < count; ++slot) {
            TileReduction &reduction = *wave[slot];
            front.merge(reduction.front);
            for (std::size_t k = 0; k < m; ++k)
                topk[k].merge(reduction.topk[k]);
            totals.generated += reduction.stats.generated;
            totals.filtered += reduction.stats.generated -
                               reduction.stats.valid;
            totals.predicted += reduction.stats.valid;
            ++totals.tiles;
            wave[slot].reset();
        }
    };

    for (std::size_t begin = 0; begin < tiles; begin += kWave) {
        const std::size_t end = std::min(begin + kWave, tiles);
        wave_begin = begin;
        pool.parallelFor(begin, end, run_tile);
        merge_wave(end - begin);
    }

    ExploreResult result;
    result.stats = totals;
    for (const auto &entry : front.entries())
        result.frontier.push_back(
            {MicroarchConfig(entry.values), entry.x, entry.y});
    for (std::size_t k = 0; k < m; ++k) {
        result.metrics.push_back(ensembles[k].metric);
        std::vector<ScoredConfig> best;
        for (const auto &entry : topk[k].sorted())
            best.push_back({MicroarchConfig(entry.values), entry.value});
        result.topk.push_back(std::move(best));
    }
    return result;
}

} // namespace acdse::explore
