/**
 * @file
 * The streaming exploration engine -- what the paper's predictor is
 * *for*: "the identification of sweet spots where performance and
 * power are optimally balanced" over the ~18-billion-point valid
 * design space (Section 1), without simulating it.
 *
 * A TileGenerator cuts the space into fixed-size tiles of valid design
 * points -- deterministic enumeration of a (reduced) grid, or seeded
 * uniform sampling of the full space -- with the validity rules fused
 * into production so invalid points are never materialised. Each tile
 * is packed into the SIMD feature-block layout, pushed through every
 * requested metric ensemble with one shared transpose per block
 * (ArchitectureCentricPredictor::predictBlockSoaFromFeatures), and
 * folded into streaming reducers: an exact cycles-vs-energy Pareto
 * frontier and a bounded top-k per metric. Tiles run in parallel on
 * the shared ThreadPool; per-tile RNG derivation and index-ordered
 * merges keep the result bit-identical at any thread count.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/microarch_config.hh"
#include "core/architecture_centric_predictor.hh"
#include "explore/reducers.hh"
#include "explore/subspace.hh"
#include "sim/metrics.hh"

namespace acdse
{
class ThreadPool;
} // namespace acdse

namespace acdse::explore
{

/** How the generator produces design points. */
enum class Mode
{
    Enumerate, //!< visit every valid point of the sub-space once
    Sample,    //!< seeded uniform draws from the valid sub-space
};

/** One scored design point. */
struct ScoredConfig
{
    MicroarchConfig config; //!< the design point
    double predicted;       //!< the predicted metric (lower is better)
};

/** One point of a predicted Pareto frontier. */
struct FrontierConfig
{
    MicroarchConfig config; //!< the design point
    double x;               //!< predicted first objective
    double y;               //!< predicted second objective
};

/** One (metric, fitted predictor) pair the engine scores points with. */
struct MetricEnsemble
{
    Metric metric;                                //!< what it predicts
    const ArchitectureCentricPredictor *predictor; //!< fitted ensemble
};

/** Options for explore(). */
struct ExploreOptions
{
    Mode mode = Mode::Sample;          //!< enumeration vs sampling
    SubSpace space = SubSpace::full(); //!< the grid to explore
    std::uint64_t samples = 1u << 20;  //!< valid draws (Sample mode)
    std::uint64_t seed = 0xd5e5eedULL; //!< sampling seed
    std::size_t tileSize = 2048;       //!< valid points per tile
    Metric paretoX = Metric::Cycles;   //!< frontier's first objective
    Metric paretoY = Metric::Energy;   //!< frontier's second objective
    std::size_t topK = 16;             //!< kept best points per metric
    ThreadPool *pool = nullptr;        //!< null: ThreadPool::global()
};

/** Stream accounting for one explore() run. */
struct ExploreStats
{
    std::uint64_t generated = 0; //!< raw points visited or drawn
    std::uint64_t filtered = 0;  //!< rejected by the validity rules
    std::uint64_t predicted = 0; //!< valid points scored and reduced
    std::uint64_t tiles = 0;     //!< tiles processed
};

/** Result of one explore() run. */
struct ExploreResult
{
    /** Predicted paretoX-vs-paretoY frontier, ascending in x. */
    std::vector<FrontierConfig> frontier;
    /** The scored metrics, in the order the ensembles were given. */
    std::vector<Metric> metrics;
    /** Per metric (parallel to metrics): the top-k points, best first. */
    std::vector<std::vector<ScoredConfig>> topk;
    ExploreStats stats; //!< stream accounting

    /** The top-k list of one metric; panics if it was not scored. */
    const std::vector<ScoredConfig> &topkFor(Metric metric) const;
};

/**
 * Tiled producer of valid design points. Exposed separately from
 * explore() so reduced-space exactness tests can audit the stream
 * itself: in Enumerate mode the tiles partition the raw mixed-radix
 * index range of the sub-space and together visit every valid point
 * exactly once; in Sample mode every tile holds exactly tileSize valid
 * uniform draws (the last tile takes the remainder) from an RNG
 * derived from (seed, tile index), so tile contents are independent of
 * the thread that produces them. Sampling is with replacement, across
 * and within tiles.
 */
class TileGenerator
{
  public:
    TileGenerator(const SubSpace &space, Mode mode, std::size_t tileSize,
                  std::uint64_t samples, std::uint64_t seed);

    /** Number of tiles. */
    std::size_t tiles() const { return tiles_; }

    /** Raw points of the sub-space (Enumerate-mode stream length). */
    std::uint64_t rawPoints() const { return raw_; }

    /** Production accounting for one tile. */
    struct TileStats
    {
        std::uint64_t generated = 0; //!< raw points visited or drawn
        std::uint64_t valid = 0;     //!< points emitted
    };

    /**
     * Produce tile @p tile: @p values receives the raw parameter
     * values of each valid point and @p features the matching
     * row-major feature rows (kNumParams per point, bit-identical to
     * MicroarchConfig::featuresInto). Both are cleared first.
     */
    TileStats generate(std::size_t tile, std::vector<PointValues> &values,
                       std::vector<double> &features) const;

  private:
    void emit(const std::array<std::size_t, kNumParams> &idx,
              std::vector<PointValues> &values,
              std::vector<double> &features) const;

    SubSpace space_;
    Mode mode_;
    std::size_t tileSize_;
    std::uint64_t samples_;
    std::uint64_t seed_;
    std::uint64_t raw_ = 0;
    std::size_t tiles_ = 0;
    /** Per (param, selected-value index): the feature-space value. */
    std::array<std::vector<double>, kNumParams> featureOf_;
};

/**
 * Stream the sub-space through every given metric ensemble and reduce.
 * All ensembles must be ready() and share the kNumParams feature
 * width; options.paretoX/paretoY must be among the given metrics.
 * Bit-identical at any thread count and pool.
 */
ExploreResult explore(std::span<const MetricEnsemble> ensembles,
                      const ExploreOptions &options = {});

} // namespace acdse::explore
