#include "explore/reducers.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"

namespace acdse::explore
{

void
ParetoFront::add(const PointValues &values, double x, double y)
{
    // NaN objectives would corrupt the map's ordering invariant; the
    // predictors only produce finite values.
    ACDSE_DCHECK(std::isfinite(x) && std::isfinite(y),
                 "non-finite objective offered to ParetoFront");
    auto it = front_.lower_bound(x);
    if (it != front_.begin()) {
        // The predecessor has strictly smaller x; if its y is no worse
        // the new point is dominated.
        if (std::prev(it)->second.y <= y)
            return;
    }
    if (it != front_.end() && it->first == x) {
        Node &node = it->second;
        if (node.y < y || (node.y == y && node.values <= values))
            return; // the incumbent at this x is no worse
        node.y = y;
        node.values = values;
        ++it;
    } else {
        it = std::next(front_.emplace_hint(it, x, Node{y, values}));
    }
    // Successors have strictly larger x; any with y >= the new point's
    // is now dominated.
    while (it != front_.end() && it->second.y >= y)
        it = front_.erase(it);
}

void
ParetoFront::merge(const ParetoFront &other)
{
    for (const auto &[x, node] : other.front_)
        add(node.values, x, node.y);
}

std::vector<FrontierEntry>
ParetoFront::entries() const
{
    std::vector<FrontierEntry> out;
    out.reserve(front_.size());
    for (const auto &[x, node] : front_)
        out.push_back({node.values, x, node.y});
    return out;
}

bool
TopK::less(const TopEntry &a, const TopEntry &b)
{
    if (a.value != b.value)
        return a.value < b.value;
    return a.values < b.values;
}

TopK::TopK(std::size_t k) : k_(k)
{
    heap_.reserve(k);
}

void
TopK::add(const PointValues &values, double value)
{
    ACDSE_DCHECK(std::isfinite(value),
                 "non-finite value offered to TopK");
    if (k_ == 0)
        return;
    if (heap_.size() < k_) {
        heap_.push_back({values, value});
        std::push_heap(heap_.begin(), heap_.end(), less);
        return;
    }
    const TopEntry candidate{values, value};
    if (!less(candidate, heap_.front()))
        return; // worse than the current k-th best: the common case
    std::pop_heap(heap_.begin(), heap_.end(), less);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), less);
}

void
TopK::merge(const TopK &other)
{
    for (const auto &entry : other.heap_)
        add(entry.values, entry.value);
}

std::vector<TopEntry>
TopK::sorted() const
{
    std::vector<TopEntry> out = heap_;
    std::sort(out.begin(), out.end(), less);
    return out;
}

} // namespace acdse::explore
