/**
 * @file
 * Streaming reducers for the exploration engine: an exact 2-D Pareto
 * frontier and a bounded top-k heap. Both are pure set functions of
 * the points offered to them -- insertion order never changes the
 * result, ties are broken by the lexicographically smallest raw value
 * array -- so per-tile partial reductions merged in any order produce
 * bit-identical output at any thread count (the PR 3 contract).
 */

#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "arch/parameter.hh"

namespace acdse::explore
{

/** Raw parameter values of one design point, in Param order. */
using PointValues = std::array<int, kNumParams>;

/** One surviving point of a 2-D frontier. */
struct FrontierEntry
{
    PointValues values; //!< raw parameter values
    double x;           //!< first objective (minimised)
    double y;           //!< second objective (minimised)
};

/**
 * Exact streaming 2-D Pareto frontier, both objectives minimised.
 *
 * The frontier is kept as a staircase ordered by strictly increasing x
 * and strictly decreasing y. A point survives iff no other offered
 * point is at least as good in both objectives and strictly better in
 * one; among points with identical (x, y) the lexicographically
 * smallest value array is kept. Insertion is O(log f) amortised in the
 * frontier size f, which stays tiny relative to the stream.
 */
class ParetoFront
{
  public:
    /** Offer one point. */
    void add(const PointValues &values, double x, double y);

    /** Fold another frontier in (set union of the offered points). */
    void merge(const ParetoFront &other);

    /** The surviving points, ascending in x. */
    std::vector<FrontierEntry> entries() const;

    /** Number of surviving points. */
    std::size_t size() const { return front_.size(); }

  private:
    struct Node
    {
        double y;
        PointValues values;
    };

    std::map<double, Node> front_; //!< key: x; y strictly decreasing
};

/** One scored point kept by TopK. */
struct TopEntry
{
    PointValues values; //!< raw parameter values
    double value;       //!< the metric (minimised)
};

/**
 * The k smallest offered points under the total order
 * (value, raw value array); a bounded max-heap, so each offer is one
 * comparison in the common rejected case.
 */
class TopK
{
  public:
    explicit TopK(std::size_t k);

    /** Offer one point. */
    void add(const PointValues &values, double value);

    /** Fold another reducer in (k smallest of the combined stream). */
    void merge(const TopK &other);

    /** The kept points, best (smallest) first. */
    std::vector<TopEntry> sorted() const;

    /** The bound this reducer was built with. */
    std::size_t k() const { return k_; }

  private:
    static bool less(const TopEntry &a, const TopEntry &b);

    std::vector<TopEntry> heap_; //!< max-heap under less()
    std::size_t k_;
};

} // namespace acdse::explore
