#include "explore/refine.hh"

#include <algorithm>
#include <utility>

#include "arch/design_space.hh"
#include "base/check.hh"

namespace acdse::explore
{

BatchScorer
predictorScorer(const ArchitectureCentricPredictor &predictor)
{
    ACDSE_CHECK(predictor.ready(), "scorer over an unfitted predictor");
    ACDSE_CHECK(predictor.featureDim() == kNumParams,
                "predictor expects ", predictor.featureDim(),
                " features, configurations carry ", kNumParams);
    return [&predictor](std::span<const MicroarchConfig> configs,
                        std::span<double> out) {
        ACDSE_CHECK(configs.size() == out.size(),
                    "configs/out size mismatch");
        std::vector<double> rows(configs.size() * kNumParams);
        for (std::size_t i = 0; i < configs.size(); ++i)
            configs[i].featuresInto(&rows[i * kNumParams]);
        BatchPredictScratch scratch;
        predictor.predictBatchFromFeatures(rows.data(), configs.size(),
                                           out.data(), scratch);
    };
}

std::vector<MicroarchConfig>
validNeighbours(const MicroarchConfig &config)
{
    std::vector<MicroarchConfig> neighbours;
    for (const auto &spec : paramSpecs()) {
        const std::size_t idx = spec.indexOf(config.get(spec.id));
        for (int direction : {-1, +1}) {
            const std::ptrdiff_t next =
                static_cast<std::ptrdiff_t>(idx) + direction;
            if (next < 0 ||
                next >= static_cast<std::ptrdiff_t>(spec.count())) {
                continue;
            }
            MicroarchConfig candidate = config;
            candidate.set(spec.id,
                          spec.values[static_cast<std::size_t>(next)]);
            if (DesignSpace::isValid(candidate))
                neighbours.push_back(std::move(candidate));
        }
    }
    return neighbours;
}

std::vector<ScoredConfig>
refine(const BatchScorer &score, std::span<const ScoredConfig> seeds,
       const RefineOptions &options)
{
    std::vector<ScoredConfig> results;
    for (const auto &seed : seeds) {
        ScoredConfig current{seed.config, 0.0};
        score(std::span<const MicroarchConfig>(&current.config, 1),
              std::span<double>(&current.predicted, 1));
        for (std::size_t step = 0; step < options.maxSteps; ++step) {
            const auto neighbours = validNeighbours(current.config);
            std::vector<double> scores(neighbours.size());
            score(neighbours, scores);
            ScoredConfig best = current;
            for (std::size_t i = 0; i < neighbours.size(); ++i) {
                if (scores[i] < best.predicted)
                    best = {neighbours[i], scores[i]};
            }
            if (best.config == current.config)
                break; // local optimum
            current = std::move(best);
        }
        results.push_back(std::move(current));
    }

    // Distinct, best first; raw values break score ties so the order
    // is independent of the seed order.
    std::sort(results.begin(), results.end(),
              [](const ScoredConfig &a, const ScoredConfig &b) {
                  if (a.predicted != b.predicted)
                      return a.predicted < b.predicted;
                  return a.config.raw() < b.config.raw();
              });
    results.erase(std::unique(results.begin(), results.end(),
                              [](const ScoredConfig &a,
                                 const ScoredConfig &b) {
                                  return a.config == b.config;
                              }),
                  results.end());
    return results;
}

} // namespace acdse::explore
