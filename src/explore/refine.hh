/**
 * @file
 * Local refinement of exploration results: greedy hill climbing over
 * single-parameter neighbours, seeded from an explore() top-k list.
 * The successor of the old core/search sweep -- candidates are scored
 * through a *batch* scorer (one call per climb step over all
 * neighbours), so a predictor-backed refinement runs on the same SIMD
 * kernels as the streaming engine instead of the retired scalar
 * PredictorFn path.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "explore/explorer.hh"

namespace acdse::explore
{

/**
 * Scores a batch of configurations (lower is better): fills out[i]
 * with the score of configs[i]. Must be a pure function of the
 * configuration so repeated scoring is consistent.
 */
using BatchScorer = std::function<void(std::span<const MicroarchConfig>,
                                       std::span<double>)>;

/**
 * A BatchScorer over a fitted architecture-centric predictor, running
 * the batched inference kernels. The returned scorer references
 * @p predictor and must not outlive it.
 */
BatchScorer predictorScorer(const ArchitectureCentricPredictor &predictor);

/**
 * All single-parameter neighbours of a configuration (one step up or
 * down each parameter's value list) that satisfy the validity rules.
 */
std::vector<MicroarchConfig> validNeighbours(
    const MicroarchConfig &config);

/** Options for refine(). */
struct RefineOptions
{
    std::size_t maxSteps = 64; //!< per-seed greedy step budget
};

/**
 * Greedy hill climbing from each seed: every step scores all valid
 * neighbours in one batch call and moves to the best strict
 * improvement, stopping at a local optimum or the step budget. Seed
 * scores are recomputed through @p score, so seeds from any source
 * (explore() top-k, hand-picked points) are handled uniformly.
 * Returns the distinct climbed points, best first (ties broken by raw
 * parameter values); deterministic for a deterministic scorer.
 */
std::vector<ScoredConfig> refine(const BatchScorer &score,
                                 std::span<const ScoredConfig> seeds,
                                 const RefineOptions &options = {});

} // namespace acdse::explore
