#include "explore/subspace.hh"

#include "base/check.hh"

namespace acdse::explore
{

SubSpace
SubSpace::full()
{
    SubSpace space;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        const ParamSpec &spec = paramSpecs()[i];
        space.values_[i].assign(spec.values.begin(), spec.values.end());
    }
    return space;
}

SubSpace
SubSpace::strided(std::size_t stride)
{
    ACDSE_CHECK(stride >= 1, "stride must be positive");
    SubSpace space;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        const ParamSpec &spec = paramSpecs()[i];
        for (std::size_t v = 0; v < spec.count(); v += stride)
            space.values_[i].push_back(spec.values[v]);
    }
    return space;
}

void
SubSpace::fix(Param p, int value)
{
    ACDSE_CHECK(paramSpec(p).contains(value), value,
                " is not a legal value for ", paramSpec(p).name);
    values_[static_cast<std::size_t>(p)] = {value};
}

void
SubSpace::setValues(Param p, std::vector<int> values)
{
    ACDSE_CHECK(!values.empty(), "empty value subset for ",
                paramSpec(p).name);
    for (std::size_t v = 0; v < values.size(); ++v) {
        ACDSE_CHECK(paramSpec(p).contains(values[v]), values[v],
                    " is not a legal value for ", paramSpec(p).name);
        ACDSE_CHECK(v == 0 || values[v - 1] < values[v],
                    "value subset for ", paramSpec(p).name,
                    " must be strictly ascending");
    }
    values_[static_cast<std::size_t>(p)] = std::move(values);
}

std::uint64_t
SubSpace::rawPoints() const
{
    std::uint64_t total = 1;
    for (const auto &values : values_)
        total *= values.size();
    return total;
}

std::uint64_t
SubSpace::validPoints() const
{
    // Identical factorisation to DesignSpace::totalValidPoints(), but
    // over the selected subsets: the constraints couple only
    // {ROB, IQ, LSQ} and {read ports, write ports}, every other
    // parameter contributes its subset size as a free factor.
    const auto &rob = values(Param::RobSize);
    const auto &iq = values(Param::IqSize);
    const auto &lsq = values(Param::LsqSize);
    std::uint64_t triples = 0;
    for (int rob_v : rob) {
        std::uint64_t iq_count = 0;
        for (int iq_v : iq)
            iq_count += iq_v <= rob_v;
        std::uint64_t lsq_count = 0;
        for (int lsq_v : lsq)
            lsq_count += lsq_v <= rob_v;
        triples += iq_count * lsq_count;
    }

    std::uint64_t port_pairs = 0;
    for (int rd_v : values(Param::RfReadPorts))
        for (int wr_v : values(Param::RfWritePorts))
            port_pairs += wr_v <= rd_v;

    std::uint64_t rest = 1;
    for (std::size_t i = 0; i < kNumParams; ++i) {
        switch (static_cast<Param>(i)) {
          case Param::RobSize:
          case Param::IqSize:
          case Param::LsqSize:
          case Param::RfReadPorts:
          case Param::RfWritePorts:
            break;
          default:
            rest *= values_[i].size();
        }
    }
    return triples * port_pairs * rest;
}

} // namespace acdse::explore
