/**
 * @file
 * Rectangular sub-grids of the paper's 13-parameter design space.
 *
 * A SubSpace selects, for every parameter, an ascending subset of its
 * Table-1 values. The exploration engine enumerates or samples the
 * cross product of those subsets; the validity rules of DesignSpace
 * (IQ/LSQ bounded by ROB, write ports bounded by read ports) are
 * applied on top. validPoints() counts the constrained grid exactly
 * with the same coupling factorisation DesignSpace::totalValidPoints()
 * uses, so exhaustive enumeration can be cross-checked point-for-point
 * on reduced grids before trusting the same machinery on the full
 * ~18-billion-point space.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/parameter.hh"

namespace acdse::explore
{

/** An ascending subset of legal values for each of the 13 parameters. */
class SubSpace
{
  public:
    /** The full Table-1 grid: every legal value of every parameter. */
    static SubSpace full();

    /**
     * A coarsened grid keeping every @p stride-th value of each
     * parameter (the first value is always kept). stride 1 is full().
     */
    static SubSpace strided(std::size_t stride);

    /** Pin one parameter to a single legal value. */
    void fix(Param p, int value);

    /** Replace one parameter's subset (ascending, legal, non-empty). */
    void setValues(Param p, std::vector<int> values);

    /** The selected values of one parameter, ascending. */
    const std::vector<int> &values(Param p) const
    {
        return values_[static_cast<std::size_t>(p)];
    }

    /** Points in the raw cross product of the selected subsets. */
    std::uint64_t rawPoints() const;

    /** Exact number of raw points satisfying DesignSpace validity. */
    std::uint64_t validPoints() const;

  private:
    SubSpace() = default;

    std::array<std::vector<int>, kNumParams> values_;
};

} // namespace acdse::explore
