#include "jobs/campaign_jobs.hh"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/csv.hh"
#include "base/json.hh"
#include "base/parse.hh"
#include "core/architecture_centric_predictor.hh"
#include "obs/trace_span.hh"

namespace acdse::jobs
{

namespace
{

constexpr std::string_view kPlanFormat = "acdse-jobs-plan-v1";

std::string
joinList(const std::vector<std::string> &items)
{
    std::string out;
    for (const auto &item : items) {
        if (!out.empty())
            out += ';';
        out += item;
    }
    return out;
}

std::string
joinIndices(const std::vector<std::size_t> &items)
{
    std::string out;
    for (const std::size_t item : items) {
        if (!out.empty())
            out += ';';
        out += std::to_string(item);
    }
    return out;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t sep = text.find(';', start);
        const std::size_t end =
            sep == std::string::npos ? text.size() : sep;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (sep == std::string::npos)
            break;
        start = sep + 1;
    }
    return out;
}

std::vector<std::size_t>
splitIndices(const std::string &text, const char *what)
{
    std::vector<std::size_t> out;
    for (const auto &item : splitList(text)) {
        const auto value = parseU64(item);
        if (!value)
            throw JobError(std::string("bad ") + what +
                           " entry in plan file: '" + item + "'");
        out.push_back(static_cast<std::size_t>(*value));
    }
    return out;
}

/** Whole-file read; nullopt when the file does not exist. */
std::optional<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Whether a saved model/predictor artifact loads cleanly. */
template <typename ModelT>
bool
artifactLoads(const std::string &path)
{
    const auto bytes = readFileBytes(path);
    if (!bytes)
        return false;
    try {
        BinaryReader reader(*bytes);
        ModelT probe;
        probe.load(reader);
        return reader.exhausted();
    } catch (const SerializationError &) {
        return false;
    }
}

/**
 * The mid-job kill injection point (ACDSE_JOBS_KILL_IN="<id>@<cells>"):
 * raise SIGKILL once the running job @p jobId has completed that many
 * cells. Exercises crashes *inside* a shard, between the checkpoint
 * and the journal record.
 */
std::function<void(std::size_t)>
killInHook(const std::string &jobId)
{
    const char *spec = std::getenv("ACDSE_JOBS_KILL_IN");
    if (!spec || !*spec)
        return {};
    const std::string text(spec);
    const std::size_t at = text.find('@');
    if (at == std::string::npos || text.substr(0, at) != jobId)
        return {};
    const auto cells = parseU64(text.substr(at + 1));
    if (!cells)
        return {};
    const std::size_t threshold = static_cast<std::size_t>(*cells);
    return [threshold](std::size_t completed) {
        if (completed >= threshold)
            ::raise(SIGKILL);
    };
}

} // namespace

std::vector<std::string>
CampaignJobPlan::trainPrograms() const
{
    std::vector<std::string> out;
    for (const auto &name : programs) {
        if (name != newProgram)
            out.push_back(name);
    }
    return out;
}

std::string
CampaignJobPlan::key() const
{
    return Campaign::cacheKeyFor(programs, options);
}

std::string
CampaignJobPlan::planHash() const
{
    // Canonical encoding: everything that defines the job set and its
    // artifacts. Cosmetic settings (quiet, threads, cacheDir) are
    // deliberately excluded so a resume under different parallelism
    // or verbosity still matches the journal.
    std::string canon(kPlanFormat);
    canon += '|';
    canon += key();
    canon += "|shard=" + std::to_string(shardCells);
    canon += "|train=" + joinIndices(trainIdx);
    canon += "|resp=" + joinIndices(responseIdx);
    canon += "|metrics=" + joinIndices(metrics);
    canon += "|new=" + newProgram;
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(canon)));
    return buf;
}

std::size_t
CampaignJobPlan::numShards() const
{
    return (numCells() + shardCells - 1) / shardCells;
}

std::vector<std::size_t>
CampaignJobPlan::shardCellsOf(std::size_t shard) const
{
    ACDSE_CHECK(shard < numShards(), "bad shard index");
    const std::size_t first = shard * shardCells;
    const std::size_t last =
        std::min(first + shardCells, numCells());
    std::vector<std::size_t> cells;
    cells.reserve(last - first);
    for (std::size_t cell = first; cell < last; ++cell)
        cells.push_back(cell);
    return cells;
}

std::vector<JobSpec>
CampaignJobPlan::jobs() const
{
    std::vector<JobSpec> out;
    for (std::size_t s = 0; s < numShards(); ++s) {
        out.push_back({"sim" + std::to_string(s), "simulate-shard", 0,
                       std::to_string(s)});
    }
    for (const auto &program : trainPrograms()) {
        for (const std::size_t m : metrics) {
            out.push_back({"train_" + program + "_m" +
                               std::to_string(m),
                           "train-program", 1,
                           program + ":" + std::to_string(m)});
        }
    }
    for (const std::size_t m : metrics) {
        out.push_back({"fit_m" + std::to_string(m), "fit-responses", 2,
                       std::to_string(m)});
    }
    return out;
}

std::string
CampaignJobPlan::prefix() const
{
    return options.cacheDir + "/acdse_jobs_" + key();
}

std::string
CampaignJobPlan::planPath() const
{
    return prefix() + ".plan.csv";
}

std::string
CampaignJobPlan::journalName() const
{
    return "acdse_jobs_" + key();
}

std::string
CampaignJobPlan::shardPath(std::size_t shard) const
{
    return prefix() + ".shard" + std::to_string(shard) + ".csv";
}

std::string
CampaignJobPlan::modelPath(const std::string &program,
                           std::size_t metric) const
{
    return prefix() + ".model_" + program + "_m" +
           std::to_string(metric) + ".bin";
}

std::string
CampaignJobPlan::predictorPath(std::size_t metric) const
{
    return prefix() + ".predictor_m" + std::to_string(metric) + ".bin";
}

void
CampaignJobPlan::save() const
{
    validate();
    CsvFile file;
    file.header = {"key", "value"};
    auto put = [&](std::string k, std::string v) {
        file.rows.push_back({std::move(k), std::move(v)});
    };
    put("format", std::string(kPlanFormat));
    put("campaign", key());
    put("programs", joinList(programs));
    put("configs", std::to_string(options.numConfigs));
    put("trace_len", std::to_string(options.traceLength));
    put("warmup", std::to_string(options.warmupInstructions));
    put("seed", std::to_string(options.configSeed));
    put("threads", std::to_string(options.threads));
    put("quiet", options.quiet ? "1" : "0");
    put("shard_cells", std::to_string(shardCells));
    put("train_idx", joinIndices(trainIdx));
    put("response_idx", joinIndices(responseIdx));
    put("metrics", joinIndices(metrics));
    put("new_program", newProgram.empty() ? "-" : newProgram);
    writeCsvAtomic(planPath(), file);
}

CampaignJobPlan
CampaignJobPlan::load(const std::string &path)
{
    CsvFile file;
    if (!readCsv(path, file))
        throw JobError("cannot read plan file '" + path + "'");
    if (file.header != std::vector<std::string>{"key", "value"})
        throw JobError("plan file '" + path + "' has a bad header");
    std::unordered_map<std::string, std::string> kv;
    for (const auto &row : file.rows) {
        if (row.size() != 2 || !kv.emplace(row[0], row[1]).second)
            throw JobError("plan file '" + path + "' has bad rows");
    }
    auto get = [&](const char *k) -> const std::string & {
        auto it = kv.find(k);
        if (it == kv.end())
            throw JobError("plan file '" + path + "' misses key '" +
                           k + "'");
        return it->second;
    };
    auto getU64 = [&](const char *k) -> std::uint64_t {
        const auto value = parseU64(get(k));
        if (!value)
            throw JobError("plan file '" + path + "' has a bad '" +
                           k + "' value");
        return *value;
    };
    if (get("format") != kPlanFormat)
        throw JobError("plan file '" + path +
                       "' has an unsupported format tag");

    CampaignJobPlan plan;
    plan.programs = splitList(get("programs"));
    plan.options.numConfigs =
        static_cast<std::size_t>(getU64("configs"));
    plan.options.traceLength =
        static_cast<std::size_t>(getU64("trace_len"));
    plan.options.warmupInstructions =
        static_cast<std::size_t>(getU64("warmup"));
    plan.options.configSeed = getU64("seed");
    plan.options.threads = static_cast<std::size_t>(getU64("threads"));
    plan.options.quiet = getU64("quiet") != 0;
    // Rebind the artifact directory to wherever the plan actually
    // lives, so a run directory can be moved or mounted elsewhere.
    plan.options.cacheDir =
        std::filesystem::path(path).parent_path().string();
    if (plan.options.cacheDir.empty())
        plan.options.cacheDir = ".";
    plan.shardCells = static_cast<std::size_t>(getU64("shard_cells"));
    plan.trainIdx = splitIndices(get("train_idx"), "train_idx");
    plan.responseIdx =
        splitIndices(get("response_idx"), "response_idx");
    plan.metrics = splitIndices(get("metrics"), "metrics");
    const std::string &newProgram = get("new_program");
    plan.newProgram = newProgram == "-" ? "" : newProgram;
    if (get("campaign") != plan.key())
        throw JobError("plan file '" + path +
                       "' campaign key does not match its parameters");
    plan.validate();
    return plan;
}

void
CampaignJobPlan::validate() const
{
    auto require = [](bool ok, const std::string &why) {
        if (!ok)
            throw JobError("invalid campaign job plan: " + why);
    };
    require(!programs.empty(), "no programs");
    std::unordered_set<std::string> seen;
    for (const auto &name : programs)
        require(seen.insert(name).second,
                "duplicate program '" + name + "'");
    require(options.numConfigs > 0, "no configurations");
    require(shardCells > 0, "shard_cells must be positive");
    for (const std::size_t m : metrics)
        require(m < kNumMetrics, "bad metric index");
    std::unordered_set<std::size_t> metricSet(metrics.begin(),
                                              metrics.end());
    require(metricSet.size() == metrics.size(), "duplicate metric");
    for (const std::size_t i : trainIdx)
        require(i < options.numConfigs, "train index out of range");
    for (const std::size_t i : responseIdx)
        require(i < options.numConfigs, "response index out of range");
    if (trains()) {
        require(!trainIdx.empty(), "training plan without train_idx");
        require(!responseIdx.empty(),
                "training plan without response_idx");
        require(seen.contains(newProgram),
                "new_program is not in the program set");
        require(!trainPrograms().empty(),
                "no training programs besides new_program");
    }
}

CampaignJobRunner::CampaignJobRunner(CampaignJobPlan plan)
    : plan_(std::move(plan))
{
    plan_.validate();
}

CampaignJobRunner::~CampaignJobRunner() = default;

Campaign &
CampaignJobRunner::campaign()
{
    if (!campaign_)
        campaign_ = std::make_unique<Campaign>(plan_.programs,
                                               plan_.options);
    return *campaign_;
}

void
CampaignJobRunner::execute(const JobSpec &spec, int attempt)
{
    // Fault injection (tests only): fail the first attempt of one
    // job to exercise the retry path.
    if (const char *failOnce = std::getenv("ACDSE_JOBS_FAIL_ONCE");
        failOnce && spec.id == failOnce && attempt == 1) {
        throw JobError("injected failure for job '" + spec.id + "'");
    }

    const obs::TraceSpan span(obs::Registry::global(),
                              "jobs/execute");
    if (spec.kind == "simulate-shard") {
        const auto shard = parseU64(spec.arg);
        if (!shard || *shard >= plan_.numShards())
            throw JobError("bad simulate-shard argument '" + spec.arg +
                           "'");
        runSimulateShard(static_cast<std::size_t>(*shard), spec.id);
    } else if (spec.kind == "train-program") {
        const std::size_t sep = spec.arg.rfind(':');
        const auto metric = sep == std::string::npos
                                ? std::nullopt
                                : parseU64(spec.arg.substr(sep + 1));
        if (!metric || *metric >= kNumMetrics)
            throw JobError("bad train-program argument '" + spec.arg +
                           "'");
        runTrainProgram(spec.arg.substr(0, sep),
                        static_cast<std::size_t>(*metric));
    } else if (spec.kind == "fit-responses") {
        const auto metric = parseU64(spec.arg);
        if (!metric || *metric >= kNumMetrics)
            throw JobError("bad fit-responses argument '" + spec.arg +
                           "'");
        runFitResponses(static_cast<std::size_t>(*metric));
    } else {
        throw JobError("unknown job kind '" + spec.kind + "'");
    }
}

void
CampaignJobRunner::runSimulateShard(std::size_t shard,
                                    const std::string &jobId)
{
    const std::vector<std::size_t> cells = plan_.shardCellsOf(shard);
    Campaign &c = campaign();

    // Idempotence: a complete checkpoint means a previous attempt
    // finished the work (the journal record may have been lost to a
    // crash between rename and append). Its bytes are already the
    // deterministic ground truth -- do not rewrite them.
    c.loadCacheRowsFrom(plan_.shardPath(shard));
    const bool complete =
        std::all_of(cells.begin(), cells.end(), [&](std::size_t cell) {
            return c.cellComputed(cell);
        });
    if (complete)
        return;

    c.computeCells(cells, killInHook(jobId));
    writeCsvAtomic(plan_.shardPath(shard), c.cacheRows(cells));
}

void
CampaignJobRunner::runTrainProgram(const std::string &program,
                                   std::size_t metric)
{
    const std::string path = plan_.modelPath(program, metric);
    if (artifactLoads<ProgramSpecificPredictor>(path))
        return; // idempotent re-execution

    loadAllShards();
    const std::size_t programIdx = campaign().programIndex(program);
    requireCells(programIdx, plan_.trainIdx, "train-program");

    // The same per-program model construction trainOffline performs,
    // so the checkpointed ensemble is bit-identical to the in-process
    // one.
    ProgramSpecificPredictor model(ArchCentricOptions{}.programModel);
    model.train(campaign().configsAt(plan_.trainIdx),
                campaign().metricAt(programIdx,
                                    static_cast<Metric>(metric),
                                    plan_.trainIdx));
    BinaryWriter writer;
    model.save(writer);
    writeTextAtomic(path, writer.buffer());
}

void
CampaignJobRunner::runFitResponses(std::size_t metric)
{
    const std::string path = plan_.predictorPath(metric);
    if (artifactLoads<ArchitectureCentricPredictor>(path))
        return; // idempotent re-execution

    loadAllShards();
    std::vector<std::string> names = plan_.trainPrograms();
    std::vector<std::shared_ptr<const ProgramSpecificPredictor>> models;
    for (const auto &name : names) {
        const auto bytes = readFileBytes(plan_.modelPath(name, metric));
        if (!bytes) {
            throw JobError("missing trained model for '" + name +
                           "' (metric " + std::to_string(metric) + ")");
        }
        auto model = std::make_shared<ProgramSpecificPredictor>();
        try {
            BinaryReader reader(*bytes);
            model->load(reader);
            if (!reader.exhausted())
                throw SerializationError("trailing bytes");
        } catch (const SerializationError &e) {
            throw JobError("corrupt trained model for '" + name +
                           "': " + e.what());
        }
        models.push_back(std::move(model));
    }

    ArchitectureCentricPredictor predictor;
    predictor.useModels(std::move(names), std::move(models));
    const std::size_t newIdx =
        campaign().programIndex(plan_.newProgram);
    requireCells(newIdx, plan_.responseIdx, "fit-responses");
    predictor.fitResponses(
        campaign().configsAt(plan_.responseIdx),
        campaign().metricAt(newIdx, static_cast<Metric>(metric),
                            plan_.responseIdx));
    BinaryWriter writer;
    predictor.save(writer);
    writeTextAtomic(path, writer.buffer());
}

void
CampaignJobRunner::loadAllShards()
{
    Campaign &c = campaign();
    for (std::size_t s = 0; s < plan_.numShards(); ++s)
        c.loadCacheRowsFrom(plan_.shardPath(s));
}

void
CampaignJobRunner::requireCells(
    std::size_t programIdx, const std::vector<std::size_t> &configIdx,
    const char *what) const
{
    ACDSE_CHECK(campaign_, "requireCells before campaign()");
    for (const std::size_t config : configIdx) {
        const std::size_t cell =
            programIdx * plan_.options.numConfigs + config;
        if (!campaign_->cellComputed(cell)) {
            throw JobError(std::string(what) +
                           " needs cell " + std::to_string(cell) +
                           " but no shard checkpoint provides it");
        }
    }
}

void
CampaignJobRunner::finalize()
{
    loadAllShards();
    Campaign &c = campaign();
    for (std::size_t cell = 0; cell < c.numCells(); ++cell) {
        if (!c.cellComputed(cell)) {
            throw JobError("campaign incomplete: cell " +
                           std::to_string(cell) +
                           " has no shard checkpoint");
        }
    }
    c.saveCache();
    for (const std::size_t m : plan_.metrics) {
        if (!artifactLoads<ArchitectureCentricPredictor>(
                plan_.predictorPath(m))) {
            throw JobError("missing or corrupt predictor artifact " +
                           plan_.predictorPath(m));
        }
    }
}

void
CampaignJobRunner::runInProcess()
{
    Campaign &c = campaign();
    c.ensureComputed();
    if (!plan_.trains())
        return;

    const std::vector<std::string> names = plan_.trainPrograms();
    const std::size_t newIdx = c.programIndex(plan_.newProgram);
    for (const std::size_t m : plan_.metrics) {
        const Metric metric = static_cast<Metric>(m);
        std::vector<ProgramTrainingSet> sets;
        for (const auto &name : names) {
            const std::size_t programIdx = c.programIndex(name);
            sets.push_back({name, c.configsAt(plan_.trainIdx),
                            c.metricAt(programIdx, metric,
                                       plan_.trainIdx)});
        }
        ArchitectureCentricPredictor predictor;
        predictor.trainOffline(sets);
        predictor.fitResponses(
            c.configsAt(plan_.responseIdx),
            c.metricAt(newIdx, metric, plan_.responseIdx));
        BinaryWriter writer;
        predictor.save(writer);
        writeTextAtomic(plan_.predictorPath(m), writer.buffer());
    }
}

} // namespace acdse::jobs
