/**
 * @file
 * The campaign job server: campaign fill and offline training
 * restructured as typed, idempotent, crash-safe jobs over the
 * JobQueue (jobs/job_queue.hh).
 *
 * A CampaignJobPlan is the complete, persisted description of one
 * run: the campaign parameters, the cell sharding, and the training/
 * response split. It expands to three phases of jobs:
 *
 *   phase 0  simulate-shard   one job per contiguous cell shard;
 *                             writes `<prefix>.shard<i>.csv`
 *   phase 1  train-program    one job per (training program, metric);
 *                             writes `<prefix>.model_<prog>_m<m>.bin`
 *   phase 2  fit-responses    one job per metric; writes
 *                             `<prefix>.predictor_m<m>.bin`
 *
 * Every artifact lands via atomic rename and every handler first
 * checks whether its artifact already exists and is loadable, so jobs
 * are idempotent: a SIGKILL at *any* point loses at most in-flight
 * work, and re-executing after resume reproduces the same bytes
 * (simulation and training are deterministic).
 *
 * `<prefix>` embeds the campaign cache key -- every sampling
 * parameter plus a hash of the program set -- so concurrent runs with
 * different seeds or program sets in one ACDSE_CACHE_DIR can never
 * collide on shards, journal, plan or models.
 *
 * Bit-identity contract, enforced by the crash suite: the campaign
 * cache CSV and the per-metric predictor artifacts produced by (a) an
 * uninterrupted job run, (b) a killed-and-resumed job run, and (c)
 * CampaignJobRunner::runInProcess() (the pre-existing in-process
 * Campaign::ensureComputed + trainOffline path) are byte-identical.
 */

#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "jobs/job_queue.hh"

namespace acdse::jobs
{

/** Thrown on unexecutable jobs (missing inputs, bad plan files). */
class JobError : public std::runtime_error
{
  public:
    explicit JobError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The persisted description of one campaign job run. */
struct CampaignJobPlan
{
    std::vector<std::string> programs; //!< all simulated programs
    CampaignOptions options;           //!< campaign parameters
    std::size_t shardCells = 64;       //!< cells per simulate shard
    std::vector<std::size_t> trainIdx; //!< training config indices
    std::vector<std::size_t> responseIdx; //!< response config indices
    std::vector<std::size_t> metrics;  //!< metric indices to model
    std::string newProgram; //!< program whose responses are fitted

    /** Whether the plan trains models (else it is simulate-only). */
    bool trains() const { return !metrics.empty(); }

    /** The training programs: every program except newProgram. */
    std::vector<std::string> trainPrograms() const;

    /** The campaign identity key (Campaign::cacheKeyFor). */
    std::string key() const;

    /** FNV-1a hash of the canonical plan encoding, as hex. */
    std::string planHash() const;

    /** Total (program, configuration) cells. */
    std::size_t numCells() const
    {
        return programs.size() * options.numConfigs;
    }

    /** Number of simulate shards. */
    std::size_t numShards() const;

    /** The cell indices of one shard (contiguous, in order). */
    std::vector<std::size_t> shardCellsOf(std::size_t shard) const;

    /** The full job set, in claim order. */
    std::vector<JobSpec> jobs() const;

    /** @name Artifact paths (all under options.cacheDir). */
    /** @{ */
    std::string prefix() const;
    std::string planPath() const;
    std::string journalName() const; //!< JobQueue name (not a path)
    std::string shardPath(std::size_t shard) const;
    std::string modelPath(const std::string &program,
                          std::size_t metric) const;
    std::string predictorPath(std::size_t metric) const;
    /** @} */

    /** Persist to planPath() atomically. */
    void save() const;

    /**
     * Load a plan saved by save(). The plan's cacheDir is rebound to
     * the directory @p path lives in, so a run directory can be
     * relocated wholesale. @throws JobError on a malformed file.
     */
    static CampaignJobPlan load(const std::string &path);

    /** Validate invariants (index ranges, program names, sharding). */
    void validate() const;
};

/**
 * Executes a plan's jobs. One runner per worker process; the held
 * Campaign accumulates loaded shard results across jobs, which only
 * ever skips recomputation (handlers stay idempotent).
 */
class CampaignJobRunner
{
  public:
    explicit CampaignJobRunner(CampaignJobPlan plan);
    ~CampaignJobRunner();

    const CampaignJobPlan &plan() const { return plan_; }

    /**
     * Execute one claimed job. Applies the fault-injection hooks
     * (ACDSE_JOBS_FAIL_ONCE, ACDSE_JOBS_KILL_IN) before/while running
     * the handler. @throws JobError (and anything the handlers throw)
     * on failure; the caller records fail() and retries.
     */
    void execute(const JobSpec &spec, int attempt);

    /**
     * After the queue drains: assemble every shard into the shared
     * campaign cache (Campaign::saveCache) and verify the trained
     * artifacts all load. @throws JobError if anything is missing.
     */
    void finalize();

    /**
     * The equivalent computation without the job system: plain
     * Campaign::ensureComputed + ArchitectureCentricPredictor
     * trainOffline/fitResponses, writing the same predictor artifact
     * paths. Produces byte-identical artifacts to a drained job run.
     */
    void runInProcess();

    /** The runner's lazily-constructed campaign. */
    Campaign &campaign();

  private:
    void runSimulateShard(std::size_t shard, const std::string &jobId);
    void runTrainProgram(const std::string &program, std::size_t metric);
    void runFitResponses(std::size_t metric);

    /** Load every shard checkpoint into the campaign. */
    void loadAllShards();

    /** Require cells (program x configIdx) to be computed. */
    void requireCells(std::size_t programIdx,
                      const std::vector<std::size_t> &configIdx,
                      const char *what) const;

    CampaignJobPlan plan_;
    std::unique_ptr<Campaign> campaign_;
};

} // namespace acdse::jobs
