#include "jobs/job_queue.hh"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "base/check.hh"
#include "base/parse.hh"
#include "obs/metrics.hh"

namespace acdse::jobs
{

namespace
{

/** Parse a journal-recorded integer or report the journal as bad. */
std::uint64_t
parseJournalU64(const std::string &text, const char *what)
{
    const auto value = parseU64(text);
    if (!value)
        throw JournalError(std::string("bad ") + what +
                           " field in job journal: '" + text + "'");
    return *value;
}

} // namespace

std::size_t
QueueSnapshot::countIn(JobState state) const
{
    return static_cast<std::size_t>(
        std::count_if(jobs.begin(), jobs.end(), [&](const JobStatus &j) {
            return j.state == state;
        }));
}

bool
QueueSnapshot::drained() const
{
    return countIn(JobState::Done) == jobs.size();
}

bool
QueueSnapshot::stuck() const
{
    return countIn(JobState::Failed) > 0;
}

JobQueue::JobQueue(const std::string &dir, const std::string &name)
    : journal_(dir + "/" + name + ".journal"),
      lock_(dir + "/" + name + ".lock")
{
}

QueueSnapshot
JobQueue::replayState() const
{
    const JournalReplay replay = journal_.replay();
    QueueSnapshot state;
    std::unordered_map<std::string, std::size_t> index;
    for (const auto &record : replay.records) {
        const std::string &type = record.front();
        auto bad = [&](const char *why) -> JournalError {
            return JournalError("job journal '" + journal_.path() +
                                "': " + why + " ('" + type + "' record)");
        };
        auto jobAt = [&](const std::string &id) -> JobStatus & {
            auto it = index.find(id);
            if (it == index.end())
                throw bad("record references an unregistered job");
            return state.jobs[it->second];
        };
        if (type == "plan") {
            if (record.size() != 2)
                throw bad("wrong field count");
            if (!state.planHash.empty())
                throw bad("duplicate plan record");
            state.planHash = record[1];
        } else if (type == "job") {
            if (record.size() != 5)
                throw bad("wrong field count");
            if (index.contains(record[1]))
                throw bad("duplicate job id");
            JobStatus status;
            status.spec.id = record[1];
            status.spec.kind = record[2];
            status.spec.phase = parseJournalU64(record[3], "phase");
            status.spec.arg = record[4];
            index.emplace(status.spec.id, state.jobs.size());
            state.jobs.push_back(std::move(status));
        } else if (type == "gen") {
            if (record.size() != 2)
                throw bad("wrong field count");
            const std::uint64_t g =
                parseJournalU64(record[1], "generation");
            if (g <= state.generation)
                throw bad("generation went backwards");
            state.generation = g;
        } else if (type == "start") {
            if (record.size() != 4)
                throw bad("wrong field count");
            JobStatus &job = jobAt(record[1]);
            const std::uint64_t g =
                parseJournalU64(record[2], "generation");
            const std::uint64_t attempt =
                parseJournalU64(record[3], "attempt");
            if (g == 0 || g > state.generation)
                throw bad("start under an unknown generation");
            if (job.state == JobState::Done)
                throw bad("start of a completed job");
            if (attempt != static_cast<std::uint64_t>(job.attempts) + 1)
                throw bad("attempt count out of sequence");
            job.state = JobState::Running;
            job.generation = g;
            job.attempts += 1;
        } else if (type == "done" || type == "fail") {
            if (record.size() != 2)
                throw bad("wrong field count");
            JobStatus &job = jobAt(record[1]);
            if (job.state != JobState::Running)
                throw bad("outcome for a job that is not running");
            if (type == "done") {
                job.state = JobState::Done;
            } else {
                job.state = job.attempts >= kMaxAttempts
                                ? JobState::Failed
                                : JobState::Pending;
            }
        } else {
            throw bad("unknown record type");
        }
    }
    if (!replay.records.empty() && state.planHash.empty())
        throw JournalError("job journal '" + journal_.path() +
                           "' does not begin with a plan record");
    return state;
}

std::uint64_t
JobQueue::open(const std::string &planHash,
               const std::vector<JobSpec> &jobs)
{
    ACDSE_CHECK(!jobs.empty(), "a job queue needs jobs");
    const FileLockGuard guard(lock_);
    const JournalReplay replay = journal_.replay();
    journal_.repair(replay); // next append must start a clean line
    QueueSnapshot state = replayState();
    if (state.planHash.empty()) {
        // First open: register the plan and every job.
        journal_.append({"plan", planHash});
        for (const auto &spec : jobs) {
            journal_.append({"job", spec.id, spec.kind,
                             std::to_string(spec.phase), spec.arg});
        }
    } else {
        if (state.planHash != planHash) {
            throw JournalError(
                "job journal '" + journal_.path() +
                "' belongs to a different plan (journal " +
                state.planHash + ", requested " + planHash + ")");
        }
        if (state.jobs.size() != jobs.size())
            throw JournalError("job journal '" + journal_.path() +
                               "' registers a different job set");
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (state.jobs[i].spec != jobs[i])
                throw JournalError(
                    "job journal '" + journal_.path() +
                    "' registers a different job set");
        }
        obs::Registry::global().counter("jobs/resume").add(1);
    }
    generation_ = state.generation + 1;
    journal_.append({"gen", std::to_string(generation_)});
    return generation_;
}

void
JobQueue::attach(const std::string &planHash)
{
    const FileLockGuard guard(lock_);
    const QueueSnapshot state = replayState();
    if (state.planHash != planHash) {
        throw JournalError("job journal '" + journal_.path() +
                           "' belongs to a different plan");
    }
    ACDSE_CHECK(state.generation > 0,
                "attach before the queue was opened");
    generation_ = state.generation;
}

ClaimResult
JobQueue::claim(JobSpec &out, int &attempt)
{
    ACDSE_CHECK(generation_ > 0, "claim before open()/attach()");
    const FileLockGuard guard(lock_);
    const QueueSnapshot state = replayState();
    if (state.drained())
        return ClaimResult::Drained;
    if (state.stuck())
        return ClaimResult::Stuck;

    // The phase barrier: only the lowest phase with unfinished jobs
    // may run.
    std::size_t activePhase = std::numeric_limits<std::size_t>::max();
    for (const auto &job : state.jobs) {
        if (job.state != JobState::Done)
            activePhase = std::min(activePhase, job.spec.phase);
    }
    for (const auto &job : state.jobs) {
        if (job.spec.phase != activePhase)
            continue;
        const bool pending = job.state == JobState::Pending;
        const bool abandoned = job.state == JobState::Running &&
                               job.generation < state.generation;
        if (!pending && !abandoned)
            continue;
        out = job.spec;
        attempt = job.attempts + 1;
        journal_.append({"start", out.id,
                         std::to_string(generation_),
                         std::to_string(attempt)});
        obs::Registry::global().counter("jobs/dispatch").add(1);
        if (attempt > 1)
            obs::Registry::global().counter("jobs/retries").add(1);
        return ClaimResult::Claimed;
    }
    // Everything left in the active phase is running under the
    // current generation: wait for those workers.
    return ClaimResult::Wait;
}

void
JobQueue::complete(const std::string &id)
{
    const FileLockGuard guard(lock_);
    journal_.append({"done", id});
}

void
JobQueue::fail(const std::string &id)
{
    const FileLockGuard guard(lock_);
    journal_.append({"fail", id});
}

QueueSnapshot
JobQueue::snapshot() const
{
    const FileLockGuard guard(lock_);
    return replayState();
}

} // namespace acdse::jobs
