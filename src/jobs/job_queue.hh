/**
 * @file
 * A crash-safe multi-process job queue over an append-only journal
 * (base/journal.hh) and an advisory file lock (base/file_lock.hh).
 *
 * The queue is the coordination layer of the campaign job server: a
 * fixed set of typed jobs (registered once, up front) is drained by
 * any number of worker processes sharing one directory. Every state
 * transition is one journal record appended under the file lock, so
 * the full state is always reconstructible by replaying the journal:
 *
 *   plan,<hash>                     -- journal belongs to this plan
 *   job,<id>,<kind>,<phase>,<arg>   -- job registration, in order
 *   gen,<g>                         -- a run/resume session started
 *   start,<id>,<g>,<attempt>        -- claimed by a worker of gen g
 *   done,<id>                       -- completed (artifact on disk)
 *   fail,<id>                       -- attempt threw; retry or give up
 *
 * Derived states: a job with no start is Pending; start with nothing
 * after is Running at generation g; done wins; fail returns the job
 * to Pending until kMaxAttempts starts have been burned, after which
 * it is Failed and the queue is stuck.
 *
 * Exactly-once within a generation: claims are serialised by the file
 * lock and a Running job of the *current* generation is never handed
 * out again. A worker that dies holding a job leaves it Running
 * forever; the supervising parent notices the death, stops the
 * session, and the next open() bumps the generation -- Running jobs
 * of older generations are abandoned work and become claimable again.
 * Job handlers are idempotent (they checkpoint through atomic
 * renames), so re-execution after a crash is always safe.
 *
 * Phase barrier: a job is claimable only when every job of a lower
 * phase is Done. The campaign plan uses this to order simulate ->
 * train -> fit without any further dependency bookkeeping.
 *
 * Durability note: appends are not fsync'd. The journal survives any
 * process death (SIGKILL included -- the page cache persists), which
 * is the failure model the fault-injection suite drives; a machine
 * power loss may lose a suffix of records, which replays as merely
 * un-started work thanks to the idempotent handlers.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/file_lock.hh"
#include "base/journal.hh"

namespace acdse::jobs
{

/** One registered job. */
struct JobSpec
{
    std::string id;   //!< unique, journal-safe (no commas/newlines)
    std::string kind; //!< handler selector, e.g. "simulate-shard"
    std::size_t phase = 0; //!< phase barrier level (0 runs first)
    std::string arg;  //!< handler argument, journal-safe

    bool operator==(const JobSpec &) const = default;
};

/** Derived life-cycle state of one job. */
enum class JobState
{
    Pending, //!< never started, or failed with retries left
    Running, //!< started by some generation, no outcome yet
    Done,    //!< completed
    Failed,  //!< failed kMaxAttempts times; the queue is stuck
};

/** One job's derived status. */
struct JobStatus
{
    JobSpec spec;
    JobState state = JobState::Pending;
    int attempts = 0;             //!< start records seen
    std::uint64_t generation = 0; //!< generation of the last start
};

/** Outcome of a claim attempt. */
enum class ClaimResult
{
    Claimed, //!< a job was handed out
    Wait,    //!< nothing claimable now, but work is still in flight
    Drained, //!< every job is Done
    Stuck,   //!< some job is permanently Failed; draining is impossible
};

/** A consistent view of the whole queue. */
struct QueueSnapshot
{
    std::string planHash;
    std::uint64_t generation = 0; //!< newest generation in the journal
    std::vector<JobStatus> jobs;  //!< in registration order

    std::size_t countIn(JobState state) const;
    bool drained() const;
    bool stuck() const;
};

/**
 * The journal-backed queue. Instances are cheap handles: every
 * operation takes the file lock, replays the journal, decides, and
 * appends -- so any number of instances across threads *and*
 * processes (each with its own lock fd) stay consistent.
 */
class JobQueue
{
  public:
    /** Starts a job can burn before it is permanently Failed. */
    static constexpr int kMaxAttempts = 3;

    /**
     * A queue whose journal lives at `<dir>/<name>.journal` with the
     * lock file alongside. Nothing is read or written yet.
     */
    JobQueue(const std::string &dir, const std::string &name);

    const std::string &journalPath() const { return journal_.path(); }

    /**
     * Create-or-resume for the supervising process: under the lock,
     * repair any torn tail, verify an existing journal carries
     * @p planHash (registering @p jobs on first open), and append a
     * fresh generation record. @return the new generation.
     * @throws JournalError on corruption or a plan-hash mismatch.
     */
    std::uint64_t open(const std::string &planHash,
                       const std::vector<JobSpec> &jobs);

    /**
     * Attach a worker to an already-open()'d journal: verify the plan
     * hash and adopt the current generation without bumping it.
     * Workers must construct their own JobQueue (own lock fd) --
     * a fork-inherited instance would share the parent's open file
     * description and flock would no longer exclude.
     */
    void attach(const std::string &planHash);

    /**
     * Claim the next runnable job: the first job, in registration
     * order, of the lowest not-yet-Done phase that is Pending or
     * abandoned (Running at an older generation). On Claimed, @p out
     * and @p attempt (1-based) are set and a start record is logged.
     */
    ClaimResult claim(JobSpec &out, int &attempt);

    /** Log completion of a job this session claimed. */
    void complete(const std::string &id);

    /** Log a failed attempt; the job retries until kMaxAttempts. */
    void fail(const std::string &id);

    /**
     * A read-only consistent view (takes the lock, appends nothing,
     * leaves a torn tail un-repaired). Safe for `status` against a
     * live session. @throws JournalError on corruption.
     */
    QueueSnapshot snapshot() const;

  private:
    /** Replay + interpret; @throws JournalError on bad records. */
    QueueSnapshot replayState() const;

    Journal journal_;
    mutable FileLock lock_;
    std::uint64_t generation_ = 0; //!< this session's generation
};

} // namespace acdse::jobs
