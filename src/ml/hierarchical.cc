#include "ml/hierarchical.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

std::vector<std::size_t>
Dendrogram::members(std::size_t node) const
{
    if (node < leaves)
        return {node};
    const std::size_t m = node - leaves;
    ACDSE_CHECK(m < merges.size(), "bad dendrogram node id");
    auto left = members(merges[m].left);
    auto right = members(merges[m].right);
    left.insert(left.end(), right.begin(), right.end());
    return left;
}

std::vector<std::size_t>
Dendrogram::cut(std::size_t k) const
{
    ACDSE_CHECK(k >= 1 && k <= leaves, "bad cluster count");
    // Applying the first (leaves - k) merges leaves exactly k groups.
    std::vector<std::size_t> parent(leaves + merges.size());
    for (std::size_t i = 0; i < parent.size(); ++i)
        parent[i] = i;
    auto find = [&](std::size_t x) {
        while (parent[x] != x)
            x = parent[x] = parent[parent[x]];
        return x;
    };
    const std::size_t steps = leaves - k;
    for (std::size_t m = 0; m < steps; ++m) {
        const std::size_t node = leaves + m;
        parent[find(merges[m].left)] = node;
        parent[find(merges[m].right)] = node;
    }
    std::vector<std::size_t> ids(leaves);
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < leaves; ++i) {
        const std::size_t root = find(i);
        auto it = std::find(roots.begin(), roots.end(), root);
        if (it == roots.end()) {
            roots.push_back(root);
            ids[i] = roots.size() - 1;
        } else {
            ids[i] = static_cast<std::size_t>(it - roots.begin());
        }
    }
    return ids;
}

double
Dendrogram::isolationHeight(std::size_t leaf) const
{
    // Every leaf participates directly in exactly one merge; its height
    // is how far the leaf is from everything else when it finally joins.
    ACDSE_CHECK(leaf < leaves, "bad leaf id");
    for (const auto &m : merges) {
        if (m.left == leaf || m.right == leaf)
            return m.height;
    }
    return 0.0;
}

std::string
Dendrogram::render(const std::vector<std::string> &names) const
{
    ACDSE_CHECK(names.size() == leaves, "name count mismatch");
    std::ostringstream os;
    // Recursive pretty printer, children sorted for stable output.
    auto print = [&](auto &&self, std::size_t node, int depth) -> void {
        const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
        if (node < leaves) {
            os << indent << "- " << names[node] << '\n';
            return;
        }
        const auto &m = merges[node - leaves];
        os << indent << "+ h=" << m.height << '\n';
        self(self, m.left, depth + 1);
        self(self, m.right, depth + 1);
    };
    if (leaves == 1) {
        os << "- " << names[0] << '\n';
    } else {
        print(print, leaves + merges.size() - 1, 0);
    }
    return os.str();
}

Dendrogram
hierarchicalCluster(const std::vector<std::vector<double>> &dist)
{
    const std::size_t n = dist.size();
    ACDSE_CHECK(n >= 1, "clustering needs at least one item");
    for (const auto &row : dist)
        ACDSE_CHECK(row.size() == n, "distance matrix must be square");

    Dendrogram tree;
    tree.leaves = n;
    if (n == 1)
        return tree;

    // Active cluster list: node id + member leaves.
    struct Cluster
    {
        std::size_t node;
        std::vector<std::size_t> items;
    };
    std::vector<Cluster> active;
    active.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        active.push_back({i, {i}});

    auto linkage = [&](const Cluster &a, const Cluster &b) {
        double total = 0.0;
        for (std::size_t i : a.items)
            for (std::size_t j : b.items)
                total += dist[i][j];
        return total /
               static_cast<double>(a.items.size() * b.items.size());
    };

    while (active.size() > 1) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                const double d = linkage(active[i], active[j]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        Cluster merged;
        merged.node = n + tree.merges.size();
        merged.items = active[bi].items;
        merged.items.insert(merged.items.end(), active[bj].items.begin(),
                            active[bj].items.end());
        tree.merges.push_back({active[bi].node, active[bj].node, best});
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(bi));
        active.push_back(std::move(merged));
    }
    return tree;
}

} // namespace acdse
