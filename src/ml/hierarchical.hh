/**
 * @file
 * Agglomerative hierarchical clustering with average linkage --
 * equivalent to R's hclust(method = "average") which the paper uses to
 * build the program-similarity dendrograms of Fig. 5.
 */

#pragma once

#include <string>
#include <vector>

namespace acdse
{

/**
 * One merge step of the dendrogram. Node ids 0..n-1 are the leaves;
 * merge i creates node n+i.
 */
struct DendrogramMerge
{
    std::size_t left;    //!< first merged node id
    std::size_t right;   //!< second merged node id
    double height;       //!< average-linkage distance at the merge
};

/** The full merge tree over n leaves (n-1 merges, ascending height). */
struct Dendrogram
{
    std::size_t leaves = 0;                 //!< number of leaf items
    std::vector<DendrogramMerge> merges;    //!< the n-1 merges

    /**
     * Leaf ids of the subtree rooted at @p node (node < leaves means
     * the single leaf itself).
     */
    std::vector<std::size_t> members(std::size_t node) const;

    /**
     * Cut the tree so that @p k clusters remain; returns per-leaf
     * cluster ids in [0, k).
     */
    std::vector<std::size_t> cut(std::size_t k) const;

    /**
     * Height at which a leaf last merges into the rest, i.e. how far
     * this item is from every other group -- the paper reads outliers
     * (art, mcf) off this value.
     */
    double isolationHeight(std::size_t leaf) const;

    /** Render an indented text dendrogram using the given leaf names. */
    std::string render(const std::vector<std::string> &names) const;
};

/**
 * Cluster from a symmetric pairwise distance matrix (row-major, n x n).
 * Average linkage: d(A, B) = mean over cross pairs.
 */
Dendrogram hierarchicalCluster(const std::vector<std::vector<double>> &dist);

} // namespace acdse

