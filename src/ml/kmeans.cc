#include "ml/kmeans.hh"

#include <algorithm>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/statistics.hh"

namespace acdse
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

} // namespace

KmeansResult
kmeans(const std::vector<std::vector<double>> &points, std::size_t k,
       std::uint64_t seed, int maxIters)
{
    ACDSE_CHECK(!points.empty(), "kmeans on no points");
    ACDSE_CHECK(k > 0, "kmeans needs k > 0");
    k = std::min(k, points.size());
    const std::size_t n = points.size();
    Rng rng(seed);

    // k-means++ seeding.
    KmeansResult result;
    result.centroids.push_back(points[rng.nextBounded(n)]);
    std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
    while (result.centroids.size() < k) {
        double mass = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            min_sq[i] = std::min(
                min_sq[i], sqDist(points[i], result.centroids.back()));
            mass += min_sq[i];
        }
        // All remaining points coincide with chosen centroids
        // (duplicate inputs): fall back to uniform selection.
        const std::size_t pick = mass > 0.0 ? rng.nextDiscrete(min_sq)
                                            : rng.nextBounded(n);
        result.centroids.push_back(points[pick]);
    }

    result.assignment.assign(n, 0);
    for (int iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                const double d = sqDist(points[i], result.centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (result.assignment[i] != best_c) {
                result.assignment[i] = best_c;
                changed = true;
            }
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Recompute centroids; empty clusters keep their position.
        const std::size_t dim = points.front().size();
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 0; d < dim; ++d)
                sums[result.assignment[i]][d] += points[i][d];
            ++counts[result.assignment[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (!counts[c])
                continue;
            for (std::size_t d = 0; d < dim; ++d) {
                result.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.inertia += sqDist(points[i],
                                 result.centroids[result.assignment[i]]);
    return result;
}

} // namespace acdse
