/**
 * @file
 * Lloyd's k-means with k-means++ seeding. Used by the SimPoint phase
 * classifier (Sherwood et al., cited as [1] in the paper).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace acdse
{

/** Result of one k-means run. */
struct KmeansResult
{
    std::vector<std::vector<double>> centroids; //!< k centroids
    std::vector<std::size_t> assignment;        //!< per-point cluster id
    double inertia = 0.0;   //!< sum of squared distances to centroids
    int iterations = 0;     //!< Lloyd iterations until convergence
};

/**
 * Cluster points into k groups.
 *
 * @param points   n points of equal dimension.
 * @param k        number of clusters (clamped to n).
 * @param seed     RNG seed for k-means++ initialisation.
 * @param maxIters Lloyd iteration cap.
 */
KmeansResult kmeans(const std::vector<std::vector<double>> &points,
                    std::size_t k, std::uint64_t seed = 1,
                    int maxIters = 100);

} // namespace acdse

