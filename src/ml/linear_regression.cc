#include "ml/linear_regression.hh"

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

void
LinearRegression::fit(const std::vector<std::vector<double>> &xs,
                      const std::vector<double> &ys, double ridge,
                      bool intercept)
{
    ACDSE_CHECK(!xs.empty(), "cannot fit regression on no samples");
    ACDSE_CHECK(xs.size() == ys.size(), "xs/ys size mismatch");
    const std::size_t n = xs.size();
    const std::size_t m = xs.front().size();
    const std::size_t cols = m + (intercept ? 1 : 0);

    Matrix x(n, cols);
    for (std::size_t i = 0; i < n; ++i) {
        ACDSE_CHECK(xs[i].size() == m, "inconsistent feature widths");
        if (intercept)
            x(i, 0) = 1.0;
        for (std::size_t j = 0; j < m; ++j)
            x(i, (intercept ? 1 : 0) + j) = xs[i][j];
    }

    Matrix gram = x.gram();
    if (ridge > 0.0) {
        // Scale the ridge by the mean diagonal so the strength is
        // relative to the data's magnitude, not absolute.
        double diag_mean = 0.0;
        for (std::size_t i = 0; i < cols; ++i)
            diag_mean += gram(i, i);
        diag_mean /= static_cast<double>(cols);
        const double lambda = ridge * (diag_mean > 0.0 ? diag_mean : 1.0);
        for (std::size_t i = 0; i < cols; ++i)
            gram(i, i) += lambda;
    }

    std::vector<double> rhs = x.transposeTimes(ys);
    std::vector<double> beta;
    fitted_ = gram.choleskySolve(rhs, beta);
    if (!fitted_) {
        // Fall back to a strongly-regularised solve; this only happens
        // for pathologically collinear features.
        Matrix fallback = x.gram();
        double diag_mean = 0.0;
        for (std::size_t i = 0; i < cols; ++i)
            diag_mean += fallback(i, i);
        diag_mean /= static_cast<double>(cols);
        for (std::size_t i = 0; i < cols; ++i)
            fallback(i, i) += 1e-3 * (diag_mean > 0.0 ? diag_mean : 1.0);
        fitted_ = fallback.choleskySolve(rhs, beta);
        ACDSE_CHECK(fitted_, "regularised least squares failed");
    }

    if (intercept) {
        intercept_ = beta[0];
        weights_.assign(beta.begin() + 1, beta.end());
    } else {
        intercept_ = 0.0;
        weights_ = std::move(beta);
    }
}

void
LinearRegression::save(BinaryWriter &w) const
{
    ACDSE_CHECK(fitted_, "cannot save an unfitted regression");
    w.f64vec(weights_);
    w.f64(intercept_);
}

void
LinearRegression::load(BinaryReader &r)
{
    weights_ = r.f64vec();
    intercept_ = r.f64();
    fitted_ = true;
}

double
LinearRegression::predict(const std::vector<double> &x) const
{
    ACDSE_CHECK(fitted_, "predict before fit");
    ACDSE_CHECK(x.size() == weights_.size(), "feature width mismatch");
    double acc = intercept_;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += weights_[i] * x[i];
    return acc;
}

void
LinearRegression::predictSoa(const double *__restrict xs,
                             std::size_t lanes,
                             double *__restrict out) const
{
    ACDSE_CHECK(fitted_, "predict before fit");
    for (std::size_t l = 0; l < lanes; ++l)
        out[l] = intercept_;
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        const double w = weights_[j];
        const double *x = xs + j * lanes;
        for (std::size_t l = 0; l < lanes; ++l)
            out[l] += w * x[l];
    }
}

} // namespace acdse
