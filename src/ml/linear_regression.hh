/**
 * @file
 * Ridge-regularised linear least squares (paper Section 5.3.1).
 *
 * The architecture-centric model is a linear combination of the
 * program-specific model outputs whose weights minimise squared error
 * on the responses; beta = (X^T X + lambda I)^-1 X^T y, with the
 * lambda = 0 case being the paper's exact equation (5).
 */

#pragma once

#include <vector>

#include "ml/matrix.hh"

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Linear model y = beta0 + sum_j beta_j x_j. */
class LinearRegression
{
  public:
    /**
     * Fit on n samples of m features.
     * @param xs       n rows of m features each.
     * @param ys       n targets.
     * @param ridge    Tikhonov strength relative to the mean diagonal of
     *                 X^T X (0 = ordinary least squares). A tiny value
     *                 keeps the solve well-posed when n is close to m.
     * @param intercept whether to fit beta0.
     */
    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys, double ridge = 1e-8,
             bool intercept = true);

    /** Predict one sample. */
    double predict(const std::vector<double> &x) const;

    /**
     * Predict a feature-major block of @p lanes samples: sample l has
     * feature j at xs[j * lanes + l], and its prediction lands in
     * out[l]. Features accumulate in the same ascending order as
     * predict(), so each lane is bit-identical to the scalar call --
     * this is the ensemble-combination step of the batched
     * architecture-centric predict path. @p xs and @p out must not
     * overlap (__restrict: lets the lane loop vectorise).
     */
    void predictSoa(const double *__restrict xs, std::size_t lanes,
                    double *__restrict out) const;

    /** The fitted weights (without intercept). */
    const std::vector<double> &weights() const { return weights_; }

    /** The fitted intercept (0 if disabled). */
    double intercept() const { return intercept_; }

    /** Whether fit() succeeded. */
    bool fitted() const { return fitted_; }

    /** Serialise the fitted coefficients (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    std::vector<double> weights_;
    double intercept_ = 0.0;
    bool fitted_ = false;
};

} // namespace acdse

