#include "ml/matrix.hh"

#include <cmath>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    ACDSE_CHECK(cols_ == other.rows_, "multiply shape mismatch: ", rows_,
                "x", cols_, " * ", other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    // No zero-skip: the callers' matrices are dense (regression design
    // matrices, gram systems), so a data-dependent branch per element
    // only defeats vectorisation of the inner accumulation. For finite
    // inputs the result is identical with or without the skip.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            for (std::size_t j = 0; j < other.cols_; ++j)
                out(i, j) += a * other(k, j);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix out(cols_, cols_);
    // Dense accumulation, no zero-skip -- see multiply().
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t i = 0; i < cols_; ++i) {
            const double a = (*this)(r, i);
            for (std::size_t j = i; j < cols_; ++j)
                out(i, j) += a * (*this)(r, j);
        }
    }
    for (std::size_t i = 0; i < cols_; ++i)
        for (std::size_t j = 0; j < i; ++j)
            out(i, j) = out(j, i);
    return out;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &y) const
{
    ACDSE_CHECK(y.size() == rows_, "A^T y shape mismatch: A is ", rows_,
                "x", cols_, ", y has ", y.size());
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += (*this)(r, c) * y[r];
    return out;
}

std::vector<double>
Matrix::times(const std::vector<double> &x) const
{
    ACDSE_CHECK(x.size() == cols_, "A x shape mismatch: A is ", rows_,
                "x", cols_, ", x has ", x.size());
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += (*this)(r, c) * x[c];
        out[r] = acc;
    }
    return out;
}

bool
Matrix::choleskySolve(const std::vector<double> &b,
                      std::vector<double> &x) const
{
    ACDSE_CHECK(rows_ == cols_, "cholesky needs a square matrix");
    ACDSE_CHECK(b.size() == rows_, "cholesky rhs has ", b.size(),
                " entries for an order-", rows_, " system");
    const std::size_t n = rows_;

    // Lower-triangular factor L with this = L L^T.
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = (*this)(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l(i, k) * l(j, k);
            if (i == j) {
                if (sum <= 0.0 || !std::isfinite(sum))
                    return false;
                l(i, i) = std::sqrt(sum);
            } else {
                l(i, j) = sum / l(j, j);
            }
        }
    }

    // Forward substitution L z = b.
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l(i, k) * z[k];
        z[i] = sum / l(i, i);
    }

    // Back substitution L^T x = z.
    x.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= l(k, ii) * x[k];
        x[ii] = sum / l(ii, ii);
    }
    return true;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out(i, i) = 1.0;
    return out;
}

} // namespace acdse
