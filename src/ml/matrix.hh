/**
 * @file
 * Minimal dense linear algebra: just what the predictors need (matrix
 * products, transpose-products, and SPD solves via Cholesky).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "base/check.hh"

namespace acdse
{

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() : rows_(0), cols_(0) {}

    /** Zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Mutable element access (bounds DCHECKed in debug builds). */
    double &operator()(std::size_t r, std::size_t c)
    {
        ACDSE_DCHECK(r < rows_ && c < cols_, "index (", r, ",", c,
                     ") outside ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }
    /** Const element access (bounds DCHECKed in debug builds). */
    double operator()(std::size_t r, std::size_t c) const
    {
        ACDSE_DCHECK(r < rows_ && c < cols_, "index (", r, ",", c,
                     ") outside ", rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    /**
     * Matrix product this * other. Tuned for the dense matrices the
     * predictors build (no sparsity shortcuts; the inner loop
     * vectorises).
     */
    Matrix multiply(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /**
     * A^T * A (m x m for an n x m matrix), computed without the copy.
     * Dense, like multiply().
     */
    Matrix gram() const;

    /** A^T * y for a length-rows vector. */
    std::vector<double> transposeTimes(const std::vector<double> &y) const;

    /** A * x for a length-cols vector. */
    std::vector<double> times(const std::vector<double> &x) const;

    /**
     * Solve (this) * x = b for a symmetric positive-definite matrix via
     * Cholesky decomposition.
     * @return true on success; false if the matrix is not SPD.
     */
    bool choleskySolve(const std::vector<double> &b,
                       std::vector<double> &x) const;

    /** Identity matrix of the given order. */
    static Matrix identity(std::size_t n);

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

} // namespace acdse

