#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/fast_math.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/simd.hh"

namespace acdse
{

namespace
{

// The one activation function, shared by the scalar and batched
// forward passes so they are bit-identical by construction. fastTanh
// keeps the serving hot path off libm's ~20 ns tanh; its ~5e-9
// absolute error is far below the network's own fit error, and
// training uses the same activation so the model is consistent with
// its own inference. Note the numerics differ from a pure-libm build
// (error amplified over training epochs); configure with
// -DACDSE_FAST_TANH=OFF to stay on std::tanh exactly.
inline double
activation(double x)
{
#ifdef ACDSE_NO_FAST_TANH
    return std::tanh(x);
#else
    return fastTanh(x);
#endif
}

} // namespace

Mlp::Mlp(MlpOptions options) : options_(options)
{
    ACDSE_CHECK(options_.hiddenNeurons > 0, "need at least one neuron");
    ACDSE_CHECK(options_.epochs > 0, "need at least one epoch");
}

void
Mlp::train(const std::vector<std::vector<double>> &xs,
           const std::vector<double> &ys)
{
    ACDSE_CHECK(!xs.empty(), "cannot train on no samples");
    ACDSE_CHECK(xs.size() == ys.size(), "xs/ys size mismatch");
    inputDim_ = xs.front().size();

    inputScaler_.fit(xs);
    targetScaler_.fit(ys);
    std::vector<std::vector<double>> xz(xs.size());
    std::vector<double> yz(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xz[i] = inputScaler_.transform(xs[i]);
        yz[i] = targetScaler_.scale(ys[i]);
    }

    // SGD with momentum can diverge for unlucky (topology, seed, rate)
    // combinations; detect non-finite weights afterwards and retrain
    // at a reduced rate.
    double rate = options_.learningRate;
    for (int attempt = 0; attempt < 4; ++attempt, rate *= 0.25) {
        trainScaled(xz, yz, rate);
        bool finite = true;
        for (double w : hiddenWeights_)
            finite &= std::isfinite(w);
        for (double w : outputWeights_)
            finite &= std::isfinite(w);
        if (finite) {
            trained_ = true;
            return;
        }
    }
    panic("MLP training diverged even at a tiny learning rate");
}

void
Mlp::trainScaled(const std::vector<std::vector<double>> &xz,
                 const std::vector<double> &yz, double rate)
{
    const std::size_t h = static_cast<std::size_t>(options_.hiddenNeurons);
    Rng rng(options_.seed);
    const double init = 1.0 / std::sqrt(static_cast<double>(inputDim_ + 1));
    hiddenWeights_.assign(h * (inputDim_ + 1), 0.0);
    for (auto &w : hiddenWeights_)
        w = rng.nextDouble(-init, init);
    outputWeights_.assign(h + 1, 0.0);
    const double out_init = 1.0 / std::sqrt(static_cast<double>(h + 1));
    for (auto &w : outputWeights_)
        w = rng.nextDouble(-out_init, out_init);
    std::vector<double> hidden(h, 0.0);

    std::vector<double> hidden_vel(hiddenWeights_.size(), 0.0);
    std::vector<double> output_vel(outputWeights_.size(), 0.0);
    std::vector<std::size_t> order(xz.size());
    std::iota(order.begin(), order.end(), 0);

    double lr = rate;
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            const auto &x = xz[idx];
            const double pred = forwardScaled(x, &hidden);
            // Clip the error signal: targets are z-scored, so anything
            // beyond a few sigma indicates a transient blow-up that
            // must not be amplified through the momentum terms.
            const double err =
                std::clamp(pred - yz[idx], -5.0, 5.0);

            // Output-layer gradient: dE/dw_o = err * [hidden; 1].
            for (std::size_t j = 0; j < h; ++j) {
                const double g = err * hidden[j];
                output_vel[j] = options_.momentum * output_vel[j] - lr * g;
            }
            output_vel[h] = options_.momentum * output_vel[h] - lr * err;

            // Hidden-layer gradient through tanh':
            // delta_j = err * w_oj * (1 - hidden_j^2).
            for (std::size_t j = 0; j < h; ++j) {
                const double delta = err * outputWeights_[j] *
                                     (1.0 - hidden[j] * hidden[j]);
                double *row = &hiddenWeights_[j * (inputDim_ + 1)];
                double *vel = &hidden_vel[j * (inputDim_ + 1)];
                for (std::size_t i = 0; i < inputDim_; ++i) {
                    vel[i] = options_.momentum * vel[i] -
                             lr * delta * x[i];
                    row[i] += vel[i];
                }
                vel[inputDim_] =
                    options_.momentum * vel[inputDim_] - lr * delta;
                row[inputDim_] += vel[inputDim_];
            }
            for (std::size_t j = 0; j <= h; ++j)
                outputWeights_[j] += output_vel[j];
        }
        lr *= options_.lrDecay;
    }
}

double
Mlp::forwardScaled(const std::vector<double> &xz,
                   std::vector<double> *hidden) const
{
    const std::size_t h = static_cast<std::size_t>(options_.hiddenNeurons);
    double out = outputWeights_[h]; // output bias
    for (std::size_t j = 0; j < h; ++j) {
        const double *row = &hiddenWeights_[j * (inputDim_ + 1)];
        double acc = row[inputDim_]; // hidden bias
        for (std::size_t i = 0; i < inputDim_; ++i)
            acc += row[i] * xz[i];
        const double act = activation(acc);
        if (hidden)
            (*hidden)[j] = act;
        out += outputWeights_[j] * act;
    }
    return out;
}

namespace
{

// The block kernel is a free function over __restrict-qualified raw
// pointers (accessed through `this`, the weight vectors defeat alias
// analysis), accumulating in local chunk variables so the accumulators
// live in registers across the whole dot product. Each chunk op is
// element-wise IEEE arithmetic -- the same operations, in the same
// order, as forwardScaled performs per point.
#ifdef ACDSE_SIMD_VECTOR

void
forwardBlockKernel(const double *__restrict hidden_weights,
                   const double *__restrict output_weights,
                   std::size_t h, std::size_t d,
                   const double *__restrict block, double *__restrict out)
{
    using simd::Chunk;
    constexpr std::size_t kC = simd::kChunks;
    constexpr std::size_t kW = simd::kChunkLanes;
    Chunk o[kC];
    const Chunk ob = simd::chunkBroadcast(output_weights[h]);
    for (std::size_t c = 0; c < kC; ++c)
        o[c] = ob; // output bias
    for (std::size_t j = 0; j < h; ++j) {
        const double *__restrict row = hidden_weights + j * (d + 1);
        Chunk a[kC];
        const Chunk hb = simd::chunkBroadcast(row[d]);
        for (std::size_t c = 0; c < kC; ++c)
            a[c] = hb; // hidden bias
        for (std::size_t i = 0; i < d; ++i) {
            const Chunk w = simd::chunkBroadcast(row[i]);
            const double *x = block + i * simd::kLanes;
            for (std::size_t c = 0; c < kC; ++c)
                a[c] += simd::chunkLoad(x + c * kW) * w;
        }
        for (std::size_t c = 0; c < kC; ++c) {
#ifdef ACDSE_NO_FAST_TANH
            double act[kW];
            simd::chunkStore(act, a[c]);
            for (std::size_t l = 0; l < kW; ++l)
                act[l] = activation(act[l]);
            a[c] = simd::chunkLoad(act);
#else
            a[c] = fastTanhChunk(a[c]);
#endif
        }
        const Chunk wo = simd::chunkBroadcast(output_weights[j]);
        for (std::size_t c = 0; c < kC; ++c)
            o[c] += a[c] * wo;
    }
    for (std::size_t c = 0; c < kC; ++c)
        simd::chunkStore(out + c * kW, o[c]);
}

#else // scalar-shaped fallback (ACDSE_NO_SIMD or unknown compiler)

void
forwardBlockKernel(const double *__restrict hidden_weights,
                   const double *__restrict output_weights,
                   std::size_t h, std::size_t d,
                   const double *__restrict block, double *__restrict out)
{
    double o[simd::kLanes];
    double a[simd::kLanes];
    for (std::size_t l = 0; l < simd::kLanes; ++l)
        o[l] = output_weights[h]; // output bias
    for (std::size_t j = 0; j < h; ++j) {
        const double *__restrict row = hidden_weights + j * (d + 1);
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            a[l] = row[d]; // hidden bias
        for (std::size_t i = 0; i < d; ++i)
            for (std::size_t l = 0; l < simd::kLanes; ++l)
                a[l] += block[i * simd::kLanes + l] * row[i];
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            a[l] = activation(a[l]);
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            o[l] += a[l] * output_weights[j];
    }
    for (std::size_t l = 0; l < simd::kLanes; ++l)
        out[l] = o[l];
}

#endif

} // namespace

void
Mlp::forwardBlock(const double *__restrict block,
                  double *__restrict out) const
{
    // One point per lane: lane l's operation sequence is exactly
    // forwardScaled on point l -- bias, then features in ascending
    // order, activation, then output terms in ascending neuron order
    // -- so each lane reproduces the scalar result bit for bit.
    forwardBlockKernel(hiddenWeights_.data(), outputWeights_.data(),
                       static_cast<std::size_t>(options_.hiddenNeurons),
                       inputDim_, block, out);
}

void
Mlp::predictBlockSoa(const double *soa, double *out,
                     MlpBatchScratch &scratch) const
{
    ACDSE_DCHECK(trained_, "predict before train");
    scratch.block.resize(inputDim_ * simd::kLanes);
    inputScaler_.transformBlock(soa, scratch.block.data());
    forwardBlock(scratch.block.data(), out);
    targetScaler_.unscaleBatch(out, simd::kLanes);
}

void
Mlp::predictBatch(const double *xs, std::size_t count, double *out,
                  MlpBatchScratch &scratch) const
{
    ACDSE_CHECK(trained_, "predict before train");
    constexpr std::size_t lanes = simd::kLanes;
    const std::size_t d = inputDim_;
    const std::size_t full = count - count % lanes;

    scratch.soa.resize(d * lanes);
    for (std::size_t base = 0; base < full; base += lanes) {
        simd::transposeBlock(xs + base * d, d, scratch.soa.data());
        predictBlockSoa(scratch.soa.data(), out + base, scratch);
    }
    // Remainder lanes take the scalar path -- the same arithmetic, so
    // the batch is uniform regardless of where the block edge falls.
    for (std::size_t c = full; c < count; ++c) {
        scratch.point.assign(xs + c * d, xs + (c + 1) * d);
        out[c] = predict(scratch.point, scratch.scaled);
    }
}

void
Mlp::save(BinaryWriter &w) const
{
    ACDSE_CHECK(trained_, "cannot save an untrained MLP");
    w.u32(static_cast<std::uint32_t>(options_.hiddenNeurons));
    w.u32(static_cast<std::uint32_t>(options_.epochs));
    w.f64(options_.learningRate);
    w.f64(options_.momentum);
    w.f64(options_.lrDecay);
    w.u64(options_.seed);
    w.u64(inputDim_);
    inputScaler_.save(w);
    targetScaler_.save(w);
    w.f64vec(hiddenWeights_);
    w.f64vec(outputWeights_);
}

void
Mlp::load(BinaryReader &r)
{
    options_.hiddenNeurons = static_cast<int>(r.u32());
    options_.epochs = static_cast<int>(r.u32());
    options_.learningRate = r.f64();
    options_.momentum = r.f64();
    options_.lrDecay = r.f64();
    options_.seed = r.u64();
    inputDim_ = static_cast<std::size_t>(r.u64());
    inputScaler_.load(r);
    targetScaler_.load(r);
    hiddenWeights_ = r.f64vec();
    outputWeights_ = r.f64vec();

    if (options_.hiddenNeurons <= 0)
        throw SerializationError("MLP with no hidden neurons");
    const std::size_t h =
        static_cast<std::size_t>(options_.hiddenNeurons);
    if (hiddenWeights_.size() != h * (inputDim_ + 1) ||
        outputWeights_.size() != h + 1 ||
        inputScaler_.dims() != inputDim_) {
        throw SerializationError("MLP weight shapes are inconsistent");
    }
    trained_ = true;
}

double
Mlp::predict(const std::vector<double> &x) const
{
    std::vector<double> scratch;
    return predict(x, scratch);
}

double
Mlp::predict(const std::vector<double> &x,
             std::vector<double> &scratch) const
{
    ACDSE_CHECK(trained_, "predict before train");
    // Width is DCHECK-only: this is the serving hot path (called per
    // point, per metric, per ensemble member) and the artifact
    // boundary in PredictionService validates width once per batch.
    ACDSE_DCHECK(x.size() == inputDim_, "input has ", x.size(),
                 " features, network expects ", inputDim_);
    inputScaler_.transformInto(x, scratch);
    return targetScaler_.unscale(forwardScaled(scratch));
}

} // namespace acdse
