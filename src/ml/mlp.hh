/**
 * @file
 * Multilayer perceptron (paper Section 5.2.1).
 *
 * A feed-forward network with one hidden layer of tanh neurons and a
 * linear output, trained with stochastic back-propagation. This is the
 * program-specific predictor of Ipek et al. that the architecture-
 * centric model both builds on (as its offline per-program models) and
 * compares against (Fig. 13).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ml/scaler.hh"

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Training hyper-parameters for Mlp. */
struct MlpOptions
{
    int hiddenNeurons = 10;      //!< hidden-layer width (paper: 10)
    int epochs = 500;            //!< passes over the training set
    double learningRate = 0.02;  //!< initial SGD step size
    double momentum = 0.9;       //!< classical momentum
    double lrDecay = 0.995;      //!< per-epoch learning-rate decay
    std::uint64_t seed = 1;      //!< weight init + shuffling seed
};

/**
 * Reusable buffers for Mlp::predictBatch. One instance per predicting
 * thread keeps the batch hot path free of heap allocations after the
 * first block.
 */
struct MlpBatchScratch
{
    std::vector<double> block; //!< feature-major scaled SoA block
    std::vector<double> soa;   //!< feature-major raw transposed block
    std::vector<double> point; //!< remainder-path feature-row copy
    std::vector<double> scaled; //!< remainder-path scaled input
};

/**
 * One-hidden-layer regression MLP: y = w_o . tanh(W_h [x;1]) + b_o
 * (paper equation (2)). Inputs and the target are z-scored internally.
 */
class Mlp
{
  public:
    /** Construct with the given hyper-parameters. */
    explicit Mlp(MlpOptions options = {});

    /**
     * Train on n samples with back-propagation. Re-entrant: calling
     * train again refits from fresh weights.
     */
    void train(const std::vector<std::vector<double>> &xs,
               const std::vector<double> &ys);

    /**
     * Predict one sample. Thread-safe on a trained network: the
     * forward pass touches no shared mutable state, so a serving
     * thread pool may call this concurrently.
     */
    double predict(const std::vector<double> &x) const;

    /**
     * Predict one sample using @p scratch for the scaled input
     * (resized as needed). Identical arithmetic to predict(), but
     * allocation-free when the buffer is reused across calls -- the
     * serving hot path.
     */
    double predict(const std::vector<double> &x,
                   std::vector<double> &scratch) const;

    /**
     * Predict @p count samples at once: point c occupies
     * xs[c * inputDim() .. (c+1) * inputDim()) row-major, and its
     * prediction lands in out[c]. Full simd::kLanes-wide blocks run
     * through the vectorised lane kernels (one amortised scaler
     * transform per block, batched activations); remainder points take
     * the scalar predict() path. Every lane performs the scalar path's
     * exact operation sequence, so out[c] == predict(point c) bit for
     * bit at any batch size -- enforced by tests/test_batch_predict.cc.
     * Thread-safe on a trained network, like predict().
     */
    void predictBatch(const double *xs, std::size_t count, double *out,
                      MlpBatchScratch &scratch) const;

    /**
     * Predict one full block of simd::kLanes points already transposed
     * to feature-major layout (soa[i * kLanes + l] = raw feature i of
     * point l, see simd::transposeBlock); out receives kLanes
     * predictions. This is the ensemble hot path: the caller
     * transposes each block once and every member model consumes it
     * directly, instead of each model re-gathering the same strided
     * rows. Bit-identical to predict() per lane, like predictBatch.
     */
    void predictBlockSoa(const double *soa, double *out,
                         MlpBatchScratch &scratch) const;

    /** Whether train() has been called. */
    bool trained() const { return trained_; }

    /** Width of the feature vectors the network was trained on. */
    std::size_t inputDim() const { return inputDim_; }

    /** The options the network was built with. */
    const MlpOptions &options() const { return options_; }

    /**
     * Serialise the trained network (options, scalers and weights);
     * a loaded network predicts bit-identically to the saved one.
     */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    /**
     * Forward pass on an already-scaled input. If @p hidden is
     * non-null it receives the hidden activations (sized
     * hiddenNeurons), which back-propagation needs.
     */
    double forwardScaled(const std::vector<double> &xz,
                         std::vector<double> *hidden = nullptr) const;

    /**
     * Forward pass on one simd::kLanes-wide feature-major block of
     * already-scaled inputs; writes the (still target-scaled) network
     * outputs for all lanes to @p out. The buffers must not overlap
     * (__restrict: lets the lane loops vectorise).
     */
    void forwardBlock(const double *__restrict block,
                      double *__restrict out) const;

    /** One full SGD run on scaled data at the given learning rate. */
    void trainScaled(const std::vector<std::vector<double>> &xz,
                     const std::vector<double> &yz, double rate);

    MlpOptions options_;
    StandardScaler inputScaler_;
    TargetScaler targetScaler_;
    std::size_t inputDim_ = 0;
    // Weights: hidden layer is (hidden x (inputDim+1)) with the bias
    // folded in as the last column; output is (hidden+1) with bias last.
    std::vector<double> hiddenWeights_;
    std::vector<double> outputWeights_;
    bool trained_ = false;
};

} // namespace acdse

