#include "ml/rbf.hh"

#include <cmath>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/statistics.hh"
#include "ml/kmeans.hh"

namespace acdse
{

RbfNetwork::RbfNetwork(RbfOptions options) : options_(options)
{
    ACDSE_CHECK(options_.centers > 0, "need at least one center");
    ACDSE_CHECK(options_.widthScale > 0.0, "width must be positive");
}

void
RbfNetwork::train(const std::vector<std::vector<double>> &xs,
                  const std::vector<double> &ys)
{
    ACDSE_CHECK(!xs.empty(), "cannot train on no samples");
    ACDSE_CHECK(xs.size() == ys.size(), "xs/ys size mismatch");

    inputScaler_.fit(xs);
    targetScaler_.fit(ys);
    std::vector<std::vector<double>> xz(xs.size());
    std::vector<double> yz(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xz[i] = inputScaler_.transform(xs[i]);
        yz[i] = targetScaler_.scale(ys[i]);
    }

    // Centers via k-means on the scaled inputs.
    const KmeansResult clusters =
        kmeans(xz, std::min(options_.centers, xz.size()), options_.seed);
    centers_ = clusters.centroids;

    // Common width from the mean pairwise center distance.
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < centers_.size(); ++i) {
        for (std::size_t j = i + 1; j < centers_.size(); ++j) {
            total += stats::euclideanDistance(centers_[i], centers_[j]);
            ++pairs;
        }
    }
    const double sigma =
        options_.widthScale *
        (pairs ? total / static_cast<double>(pairs) / 2.0 : 1.0);
    invTwoSigmaSq_ = 1.0 / (2.0 * sigma * sigma);

    // Closed-form output layer.
    std::vector<std::vector<double>> phi(xz.size());
    for (std::size_t i = 0; i < xz.size(); ++i)
        phi[i] = activations(xz[i]);
    output_.fit(phi, yz, options_.ridge);
    trained_ = true;
}

std::vector<double>
RbfNetwork::activations(const std::vector<double> &xz) const
{
    std::vector<double> phi(centers_.size());
    for (std::size_t j = 0; j < centers_.size(); ++j) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < xz.size(); ++d) {
            const double diff = xz[d] - centers_[j][d];
            d2 += diff * diff;
        }
        phi[j] = std::exp(-d2 * invTwoSigmaSq_);
    }
    return phi;
}

double
RbfNetwork::predict(const std::vector<double> &x) const
{
    ACDSE_CHECK(trained_, "predict before train");
    return targetScaler_.unscale(
        output_.predict(activations(inputScaler_.transform(x))));
}

} // namespace acdse
