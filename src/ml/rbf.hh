/**
 * @file
 * Radial-basis-function network (paper Section 9.4: Joseph et al.,
 * MICRO-39, use RBF networks as program-specific performance models).
 *
 * Centers are chosen by k-means over the (z-scored) training inputs,
 * widths from the mean inter-center distance, and the output layer is
 * solved in closed form with ridge least squares.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ml/linear_regression.hh"
#include "ml/scaler.hh"

namespace acdse
{

/** Hyper-parameters for RbfNetwork. */
struct RbfOptions
{
    std::size_t centers = 32;   //!< number of basis functions
    double widthScale = 1.0;    //!< width multiplier on the heuristic
    double ridge = 1e-6;        //!< output-layer regularisation
    std::uint64_t seed = 1;     //!< k-means seed
};

/** Gaussian RBF regression network. */
class RbfNetwork
{
  public:
    /** Construct with hyper-parameters. */
    explicit RbfNetwork(RbfOptions options = {});

    /** Fit centers, widths and the linear output layer. */
    void train(const std::vector<std::vector<double>> &xs,
               const std::vector<double> &ys);

    /** Predict one sample. */
    double predict(const std::vector<double> &x) const;

    /** Whether train() has been called. */
    bool trained() const { return trained_; }

    /** Number of basis functions actually used (<= requested). */
    std::size_t numCenters() const { return centers_.size(); }

  private:
    /** Basis activations of an already-scaled input. */
    std::vector<double> activations(const std::vector<double> &xz) const;

    RbfOptions options_;
    StandardScaler inputScaler_;
    TargetScaler targetScaler_;
    std::vector<std::vector<double>> centers_;
    double invTwoSigmaSq_ = 1.0;
    LinearRegression output_;
    bool trained_ = false;
};

} // namespace acdse

