#include "ml/scaler.hh"

#include <cmath>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"
#include "base/simd.hh"
#include "base/statistics.hh"

namespace acdse
{

void
StandardScaler::fit(const std::vector<std::vector<double>> &samples)
{
    ACDSE_CHECK(!samples.empty(), "cannot fit scaler on no samples");
    const std::size_t d = samples.front().size();
    means_.assign(d, 0.0);
    scales_.assign(d, 1.0);
    for (const auto &x : samples) {
        ACDSE_CHECK(x.size() == d, "inconsistent sample dimensions");
        for (std::size_t i = 0; i < d; ++i)
            means_[i] += x[i];
    }
    for (double &m : means_)
        m /= static_cast<double>(samples.size());
    std::vector<double> var(d, 0.0);
    for (const auto &x : samples)
        for (std::size_t i = 0; i < d; ++i)
            var[i] += (x[i] - means_[i]) * (x[i] - means_[i]);
    for (std::size_t i = 0; i < d; ++i) {
        const double sd =
            std::sqrt(var[i] / static_cast<double>(samples.size()));
        scales_[i] = sd > 1e-12 ? sd : 1.0;
    }
    computeInverses();
}

void
StandardScaler::computeInverses()
{
    invScales_.resize(scales_.size());
    for (std::size_t i = 0; i < scales_.size(); ++i)
        invScales_[i] = 1.0 / scales_[i];
}

std::vector<double>
StandardScaler::transform(const std::vector<double> &x) const
{
    std::vector<double> out;
    transformInto(x, out);
    return out;
}

void
StandardScaler::transformInto(const std::vector<double> &x,
                              std::vector<double> &out) const
{
    ACDSE_CHECK(x.size() == means_.size(), "dimension mismatch");
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = (x[i] - means_[i]) * invScales_[i];
}

void
StandardScaler::transformBatch(const double *__restrict xs,
                               std::size_t lanes,
                               double *__restrict zs) const
{
    const std::size_t d = means_.size();
    for (std::size_t i = 0; i < d; ++i) {
        const double mean = means_[i];
        const double inv = invScales_[i];
        double *z = zs + i * lanes;
        for (std::size_t l = 0; l < lanes; ++l)
            z[l] = (xs[l * d + i] - mean) * inv;
    }
}

void
StandardScaler::transformBlock(const double *__restrict xs,
                               double *__restrict zs) const
{
    const std::size_t d = means_.size();
    for (std::size_t i = 0; i < d; ++i) {
        const double *x = xs + i * simd::kLanes;
        double *z = zs + i * simd::kLanes;
#ifdef ACDSE_SIMD_VECTOR
        const simd::Chunk mean = simd::chunkBroadcast(means_[i]);
        const simd::Chunk inv = simd::chunkBroadcast(invScales_[i]);
        for (std::size_t c = 0; c < simd::kChunks; ++c) {
            const std::size_t at = c * simd::kChunkLanes;
            simd::chunkStore(
                z + at, (simd::chunkLoad(x + at) - mean) * inv);
        }
#else
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            z[l] = (x[l] - means_[i]) * invScales_[i];
#endif
    }
}

void
StandardScaler::save(BinaryWriter &w) const
{
    w.f64vec(means_);
    w.f64vec(scales_);
}

void
StandardScaler::load(BinaryReader &r)
{
    means_ = r.f64vec();
    scales_ = r.f64vec();
    if (scales_.size() != means_.size())
        throw SerializationError("scaler mean/scale arity mismatch");
    computeInverses();
}

void
TargetScaler::fit(const std::vector<double> &ys)
{
    ACDSE_CHECK(!ys.empty(), "cannot fit target scaler on no samples");
    mean_ = stats::mean(ys);
    const double sd = stats::stddev(ys);
    sdev_ = sd > 1e-12 ? sd : 1.0;
}

void
TargetScaler::save(BinaryWriter &w) const
{
    w.f64(mean_);
    w.f64(sdev_);
}

void
TargetScaler::load(BinaryReader &r)
{
    mean_ = r.f64();
    sdev_ = r.f64();
}

} // namespace acdse
