/**
 * @file
 * Feature standardisation for the predictors: z-score per input
 * dimension, fitted on training data and applied at prediction time.
 */

#pragma once

#include <vector>

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Per-dimension z-score scaler. */
class StandardScaler
{
  public:
    /** Fit mean/stddev per dimension on a set of samples. */
    void fit(const std::vector<std::vector<double>> &samples);

    /** Transform one sample in place. */
    std::vector<double> transform(const std::vector<double> &x) const;

    /**
     * Transform into a caller-provided buffer (resized as needed) --
     * the serving hot path calls this per query point and reuses one
     * buffer to keep prediction allocation-free.
     */
    void transformInto(const std::vector<double> &x,
                       std::vector<double> &out) const;

    /**
     * Transform @p lanes row-major points (point l starts at
     * xs + l * dims()) into a feature-major block:
     * zs[i * lanes + l] = scaled feature i of point l. One mean/scale
     * load serves the whole block -- the amortisation the batched
     * predict kernels are built on -- and the per-element arithmetic
     * is identical to transformInto, so each lane is bit-identical to
     * the scalar transform of that point. @p xs and @p zs must not
     * overlap (__restrict: lets the lane loop vectorise).
     */
    void transformBatch(const double *__restrict xs, std::size_t lanes,
                        double *__restrict zs) const;

    /**
     * Transform one already-transposed feature-major block of
     * simd::kLanes points: zs[i * kLanes + l] = scaled feature i of
     * point l, from xs in the same layout. The per-element arithmetic
     * is identical to transformInto -- this is transformBatch with the
     * strided gather hoisted out (see simd::transposeBlock), so an
     * ensemble transposes each block once instead of per model. @p xs
     * and @p zs must not overlap.
     */
    void transformBlock(const double *__restrict xs,
                        double *__restrict zs) const;

    /** Whether fit() has been called. */
    bool fitted() const { return !means_.empty(); }

    /** Number of dimensions the scaler was fitted on. */
    std::size_t dims() const { return means_.size(); }

    /** Serialise the fitted state (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    /** Rebuild invScales_ from scales_ (after fit or load). */
    void computeInverses();

    std::vector<double> means_;
    std::vector<double> scales_;
    // The transform multiplies by 1/scale instead of dividing: one
    // divide per dimension at fit/load time replaces one per feature
    // per prediction, and division is the most expensive arithmetic op
    // on the serving path. Derived state -- never serialised, always
    // recomputed from scales_, so save/load round-trips stay bit-exact.
    std::vector<double> invScales_;
};

/** Scalar z-score scaler for prediction targets. */
class TargetScaler
{
  public:
    /** Fit on the training targets. */
    void fit(const std::vector<double> &ys);

    /** Scale a raw target. */
    double scale(double y) const { return (y - mean_) / sdev_; }

    /** Invert the scaling on a model output. */
    double unscale(double z) const { return z * sdev_ + mean_; }

    /**
     * Invert the scaling on @p n model outputs in place; element-wise
     * identical to unscale().
     */
    void unscaleBatch(double *zs, std::size_t n) const
    {
        for (std::size_t i = 0; i < n; ++i)
            zs[i] = zs[i] * sdev_ + mean_;
    }

    /** Serialise the fitted state (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    double mean_ = 0.0;
    double sdev_ = 1.0;
};

} // namespace acdse

