/**
 * @file
 * Feature standardisation for the predictors: z-score per input
 * dimension, fitted on training data and applied at prediction time.
 */

#pragma once

#include <vector>

namespace acdse
{

class BinaryWriter;
class BinaryReader;

/** Per-dimension z-score scaler. */
class StandardScaler
{
  public:
    /** Fit mean/stddev per dimension on a set of samples. */
    void fit(const std::vector<std::vector<double>> &samples);

    /** Transform one sample in place. */
    std::vector<double> transform(const std::vector<double> &x) const;

    /**
     * Transform into a caller-provided buffer (resized as needed) --
     * the serving hot path calls this per query point and reuses one
     * buffer to keep prediction allocation-free.
     */
    void transformInto(const std::vector<double> &x,
                       std::vector<double> &out) const;

    /** Whether fit() has been called. */
    bool fitted() const { return !means_.empty(); }

    /** Number of dimensions the scaler was fitted on. */
    std::size_t dims() const { return means_.size(); }

    /** Serialise the fitted state (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    std::vector<double> means_;
    std::vector<double> scales_;
};

/** Scalar z-score scaler for prediction targets. */
class TargetScaler
{
  public:
    /** Fit on the training targets. */
    void fit(const std::vector<double> &ys);

    /** Scale a raw target. */
    double scale(double y) const { return (y - mean_) / sdev_; }

    /** Invert the scaling on a model output. */
    double unscale(double z) const { return z * sdev_ + mean_; }

    /** Serialise the fitted state (bit-exact round trip). */
    void save(BinaryWriter &w) const;

    /** Restore state written by save(). */
    void load(BinaryReader &r);

  private:
    double mean_ = 0.0;
    double sdev_ = 1.0;
};

} // namespace acdse

