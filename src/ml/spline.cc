#include "ml/spline.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/statistics.hh"

namespace acdse
{

namespace
{

double
cube(double v)
{
    return v > 0.0 ? v * v * v : 0.0;
}

} // namespace

SplineModel::SplineModel(SplineOptions options) : options_(options)
{
    ACDSE_CHECK(options_.knots >= 3, "need at least three knots");
}

void
SplineModel::train(const std::vector<std::vector<double>> &xs,
                   const std::vector<double> &ys)
{
    ACDSE_CHECK(!xs.empty(), "cannot train on no samples");
    ACDSE_CHECK(xs.size() == ys.size(), "xs/ys size mismatch");
    const std::size_t dims = xs.front().size();

    targetScaler_.fit(ys);
    std::vector<double> yz(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i)
        yz[i] = targetScaler_.scale(ys[i]);

    // Knots at quantiles of each dimension; duplicates collapse, and a
    // dimension with fewer than three distinct knots falls back to a
    // purely linear term.
    knots_.assign(dims, {});
    std::vector<double> column(xs.size());
    for (std::size_t d = 0; d < dims; ++d) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            column[i] = xs[i][d];
        std::vector<double> knots;
        for (int k = 0; k < options_.knots; ++k) {
            const double q =
                (k + 0.5) / static_cast<double>(options_.knots);
            knots.push_back(stats::quantile(column, q));
        }
        std::sort(knots.begin(), knots.end());
        knots.erase(std::unique(knots.begin(), knots.end()),
                    knots.end());
        if (knots.size() >= 3)
            knots_[d] = std::move(knots);
    }

    std::vector<std::vector<double>> design(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        design[i] = basis(xs[i]);
    regression_.fit(design, yz, options_.ridge);
    trained_ = true;
}

std::vector<double>
SplineModel::basis(const std::vector<double> &x) const
{
    std::vector<double> b;
    for (std::size_t d = 0; d < x.size(); ++d) {
        b.push_back(x[d]); // linear term, always
        const auto &knots = knots_[d];
        if (knots.size() < 3)
            continue;
        const std::size_t k = knots.size();
        const double t_last = knots[k - 1];
        const double t_prev = knots[k - 2];
        const double norm = (t_last - knots[0]) * (t_last - knots[0]);
        for (std::size_t j = 0; j + 2 < k; ++j) {
            // Restricted cubic basis: linear beyond the outer knots.
            const double term =
                cube(x[d] - knots[j]) -
                cube(x[d] - t_prev) * (t_last - knots[j]) /
                    (t_last - t_prev) +
                cube(x[d] - t_last) * (t_prev - knots[j]) /
                    (t_last - t_prev);
            b.push_back(term / (norm > 0.0 ? norm : 1.0));
        }
    }
    return b;
}

std::size_t
SplineModel::basisSize() const
{
    ACDSE_CHECK(trained_, "basisSize before train");
    std::size_t size = 0;
    for (const auto &knots : knots_)
        size += 1 + (knots.size() >= 3 ? knots.size() - 2 : 0);
    return size;
}

double
SplineModel::predict(const std::vector<double> &x) const
{
    ACDSE_CHECK(trained_, "predict before train");
    return targetScaler_.unscale(regression_.predict(basis(x)));
}

} // namespace acdse
