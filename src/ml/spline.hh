/**
 * @file
 * Regression-spline model (paper Section 9.4: Lee & Brooks use
 * restricted cubic splines for microarchitectural performance and
 * power prediction, HPCA'07 / ASPLOS'06).
 *
 * Each input dimension is expanded into a restricted-cubic-spline
 * basis with knots at training-data quantiles (linear in the tails,
 * cubic between knots); the expanded design is fitted with ridge least
 * squares. Additive across dimensions, as in Lee & Brooks' main-effect
 * models.
 */

#pragma once

#include <vector>

#include "ml/linear_regression.hh"
#include "ml/scaler.hh"

namespace acdse
{

/** Hyper-parameters for SplineModel. */
struct SplineOptions
{
    int knots = 4;          //!< knots per dimension (>= 3)
    double ridge = 1e-6;    //!< regularisation of the expanded fit
};

/** Additive restricted-cubic-spline regression model. */
class SplineModel
{
  public:
    /** Construct with hyper-parameters. */
    explicit SplineModel(SplineOptions options = {});

    /** Place knots at per-dimension quantiles and fit the basis. */
    void train(const std::vector<std::vector<double>> &xs,
               const std::vector<double> &ys);

    /** Predict one sample. */
    double predict(const std::vector<double> &x) const;

    /** Whether train() has been called. */
    bool trained() const { return trained_; }

    /** Size of the expanded basis (for tests). */
    std::size_t basisSize() const;

  private:
    /** Restricted-cubic-spline basis of one sample. */
    std::vector<double> basis(const std::vector<double> &x) const;

    SplineOptions options_;
    TargetScaler targetScaler_;
    std::vector<std::vector<double>> knots_; //!< per-dimension knots
    LinearRegression regression_;
    bool trained_ = false;
};

} // namespace acdse

