#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>

#include "base/check.hh"

namespace acdse::obs
{

std::size_t
shardIndex() noexcept
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx & (kShards - 1);
}

std::uint64_t
nowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
Counter::value() const noexcept
{
    std::uint64_t total = 0;
    for (const Slot &slot : slots_)
        total += slot.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset() noexcept
{
    for (Slot &slot : slots_)
        slot.value.store(0, std::memory_order_relaxed);
}

namespace
{

/** Relaxed atomic min/max folds for the histogram extrema. */
void
atomicMin(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (value < seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (value > seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::recordSlow(std::uint64_t value) noexcept
{
    Shard &shard = shards_[shardIndex()];
    shard.buckets[bucketOf(value)].fetch_add(1,
                                             std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    atomicMin(shard.min, value);
    atomicMax(shard.max, value);
}

HistogramSnapshot
Histogram::read() const noexcept
{
    HistogramSnapshot out;
    std::uint64_t min = ~std::uint64_t{0};
    for (const Shard &shard : shards_) {
        out.count += shard.count.load(std::memory_order_relaxed);
        out.sum += shard.sum.load(std::memory_order_relaxed);
        min = std::min(min, shard.min.load(std::memory_order_relaxed));
        out.max = std::max(out.max,
                           shard.max.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < kBuckets; ++b) {
            out.buckets[b] +=
                shard.buckets[b].load(std::memory_order_relaxed);
        }
    }
    out.min = out.count ? min : 0;
    return out;
}

void
Histogram::reset() noexcept
{
    for (Shard &shard : shards_) {
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
        shard.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
        shard.max.store(0, std::memory_order_relaxed);
    }
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    // Nearest-rank target, then linear interpolation across the
    // samples of the bucket the rank lands in.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        clamped * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        if (seen + buckets[b] > rank) {
            const double low = static_cast<double>(
                Histogram::bucketLow(b));
            const double high = static_cast<double>(
                Histogram::bucketHigh(b));
            const double within =
                static_cast<double>(rank - seen) /
                static_cast<double>(buckets[b]);
            return low + within * (high - low);
        }
        seen += buckets[b];
    }
    return static_cast<double>(max);
}

namespace
{

/** splitmix64 finaliser: the deterministic randomness Algorithm R
 *  draws per sample ordinal (see Reservoir's class comment). */
std::uint64_t
splitmix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
Reservoir::recordSlow(std::uint64_t value) noexcept
{
    const std::uint64_t n =
        count_.fetch_add(1, std::memory_order_relaxed);
    if (n < kReservoirCapacity) {
        samples_[n].store(value, std::memory_order_relaxed);
        return;
    }
    // Algorithm R: sample n replaces a random slot with probability
    // capacity / (n + 1), keeping every stream position equally
    // likely to be retained.
    const std::uint64_t r = splitmix64(n) % (n + 1);
    if (r < kReservoirCapacity)
        samples_[r].store(value, std::memory_order_relaxed);
}

ReservoirSnapshot
Reservoir::read() const
{
    ReservoirSnapshot out;
    out.count = count_.load(std::memory_order_relaxed);
    const std::size_t kept =
        out.count < kReservoirCapacity
            ? static_cast<std::size_t>(out.count)
            : kReservoirCapacity;
    out.samples.reserve(kept);
    for (std::size_t i = 0; i < kept; ++i)
        out.samples.push_back(
            samples_[i].load(std::memory_order_relaxed));
    std::sort(out.samples.begin(), out.samples.end());
    return out;
}

void
Reservoir::reset() noexcept
{
    count_.store(0, std::memory_order_relaxed);
    for (auto &sample : samples_)
        sample.store(0, std::memory_order_relaxed);
}

std::uint64_t
ReservoirSnapshot::quantile(double q) const
{
    if (samples.empty())
        return 0;
    const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    const std::size_t rank = static_cast<std::size_t>(
        clamped * static_cast<double>(samples.size() - 1));
    return samples[rank];
}

void
Stage::reset() noexcept
{
    spans_.reset();
    totalNs_.reset();
    childNs_.reset();
    spanNs_.reset();
}

void
Snapshot::merge(const Snapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.gauges)
        gauges[name] = value;
    for (const auto &[name, hist] : other.histograms) {
        HistogramSnapshot &mine = histograms[name];
        const bool was_empty = mine.count == 0;
        mine.count += hist.count;
        mine.sum += hist.sum;
        if (hist.count) {
            mine.min = was_empty ? hist.min
                                 : std::min(mine.min, hist.min);
            mine.max = std::max(mine.max, hist.max);
        }
        for (std::size_t b = 0; b < kBuckets; ++b)
            mine.buckets[b] += hist.buckets[b];
    }
    for (const auto &[name, res] : other.reservoirs) {
        ReservoirSnapshot &mine = reservoirs[name];
        mine.count += res.count;
        mine.samples.insert(mine.samples.end(), res.samples.begin(),
                            res.samples.end());
        std::sort(mine.samples.begin(), mine.samples.end());
        if (mine.samples.size() > Reservoir::kReservoirCapacity) {
            // Keep a uniform stride of the union so the merged
            // quantiles stay representative of both inputs.
            std::vector<std::uint64_t> kept;
            kept.reserve(Reservoir::kReservoirCapacity);
            const std::size_t n = mine.samples.size();
            for (std::size_t i = 0;
                 i < Reservoir::kReservoirCapacity; ++i)
                kept.push_back(
                    mine.samples[i * n /
                                 Reservoir::kReservoirCapacity]);
            mine.samples = std::move(kept);
        }
    }
    for (const auto &[name, stage] : other.stages) {
        StageSnapshot &mine = stages[name];
        mine.count += stage.count;
        mine.totalNs += stage.totalNs;
        mine.childNs += stage.childNs;
        const bool was_empty = mine.spans.count == 0;
        mine.spans.count += stage.spans.count;
        mine.spans.sum += stage.spans.sum;
        if (stage.spans.count) {
            mine.spans.min = was_empty
                                 ? stage.spans.min
                                 : std::min(mine.spans.min,
                                            stage.spans.min);
            mine.spans.max =
                std::max(mine.spans.max, stage.spans.max);
        }
        for (std::size_t b = 0; b < kBuckets; ++b)
            mine.spans.buckets[b] += stage.spans.buckets[b];
    }
}

namespace
{

HistogramSnapshot
diffHistogram(const HistogramSnapshot *before,
              const HistogramSnapshot &after)
{
    HistogramSnapshot out = after;
    if (before) {
        out.count -= before->count;
        out.sum -= before->sum;
        for (std::size_t b = 0; b < kBuckets; ++b)
            out.buckets[b] -= before->buckets[b];
        // min/max stay 'after' lifetime extrema (see header).
        if (out.count == 0) {
            out.min = 0;
            out.max = 0;
        }
    }
    return out;
}

} // namespace

Snapshot
diff(const Snapshot &before, const Snapshot &after)
{
    Snapshot out;
    for (const auto &[name, value] : after.counters) {
        const auto it = before.counters.find(name);
        out.counters[name] =
            value - (it == before.counters.end() ? 0 : it->second);
    }
    out.gauges = after.gauges;
    for (const auto &[name, hist] : after.histograms) {
        const auto it = before.histograms.find(name);
        out.histograms[name] = diffHistogram(
            it == before.histograms.end() ? nullptr : &it->second,
            hist);
    }
    for (const auto &[name, res] : after.reservoirs) {
        const auto it = before.reservoirs.find(name);
        ReservoirSnapshot delta = res; // samples stay 'after' (header)
        if (it != before.reservoirs.end())
            delta.count -= it->second.count;
        out.reservoirs[name] = std::move(delta);
    }
    for (const auto &[name, stage] : after.stages) {
        const auto it = before.stages.find(name);
        StageSnapshot delta = stage;
        if (it != before.stages.end()) {
            delta.count -= it->second.count;
            delta.totalNs -= it->second.totalNs;
            delta.childNs -= it->second.childNs;
            delta.spans =
                diffHistogram(&it->second.spans, stage.spans);
        }
        out.stages[name] = delta;
    }
    return out;
}

Registry &
Registry::global()
{
    // Leaked on purpose: see the file comment.
    static Registry *registry = // NOLINT(acdse-local-static)
        new Registry;
    return *registry;
}

void
Registry::checkUnique(std::string_view name, int kind) const
{
    // Caller holds mutex_ exclusively. Kind: 0 counter, 1 gauge,
    // 2 histogram, 3 stage, 4 reservoir. A name must not be
    // re-interned as a different kind.
    ACDSE_CHECK(kind == 0 || !counters_.contains(name), "metric '",
                std::string(name),
                "' already registered as a counter");
    ACDSE_CHECK(kind == 1 || !gauges_.contains(name), "metric '",
                std::string(name), "' already registered as a gauge");
    ACDSE_CHECK(kind == 2 || !histograms_.contains(name), "metric '",
                std::string(name),
                "' already registered as a histogram");
    ACDSE_CHECK(kind == 3 || !stages_.contains(name), "metric '",
                std::string(name), "' already registered as a stage");
    ACDSE_CHECK(kind == 4 || !reservoirs_.contains(name), "metric '",
                std::string(name),
                "' already registered as a reservoir");
}

Counter &
Registry::counter(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = counters_.find(name);
            it != counters_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 0);
    auto &slot = counters_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = gauges_.find(name); it != gauges_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 1);
    auto &slot = gauges_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = histograms_.find(name);
            it != histograms_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 2);
    auto &slot = histograms_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Reservoir &
Registry::reservoir(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = reservoirs_.find(name);
            it != reservoirs_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 4);
    auto &slot = reservoirs_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Reservoir>();
    return *slot;
}

Stage &
Registry::stage(std::string_view path)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = stages_.find(path); it != stages_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(path, 3);
    auto &slot = stages_[std::string(path)];
    if (!slot)
        slot = std::make_unique<Stage>(std::string(path));
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    ReaderLock lock(mutex_);
    Snapshot out;
    for (const auto &[name, counter] : counters_)
        out.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        out.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_)
        out.histograms[name] = histogram->read();
    for (const auto &[name, res] : reservoirs_)
        out.reservoirs[name] = res->read();
    for (const auto &[name, stage] : stages_) {
        StageSnapshot snap;
        snap.count = stage->spans().value();
        snap.totalNs = stage->totalNs().value();
        snap.childNs = stage->childNs().value();
        snap.spans = stage->spanNs().read();
        out.stages[name] = snap;
    }
    return out;
}

void
Registry::reset()
{
    ReaderLock lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
    for (const auto &[name, res] : reservoirs_)
        res->reset();
    for (const auto &[name, stage] : stages_)
        stage->reset();
}

} // namespace acdse::obs
