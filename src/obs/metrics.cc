#include "obs/metrics.hh"

#include <algorithm>
#include <chrono>

#include "base/check.hh"

namespace acdse::obs
{

std::size_t
shardIndex() noexcept
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx & (kShards - 1);
}

std::uint64_t
nowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
Counter::value() const noexcept
{
    std::uint64_t total = 0;
    for (const Slot &slot : slots_)
        total += slot.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset() noexcept
{
    for (Slot &slot : slots_)
        slot.value.store(0, std::memory_order_relaxed);
}

namespace
{

/** Relaxed atomic min/max folds for the histogram extrema. */
void
atomicMin(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (value < seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (value > seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::recordSlow(std::uint64_t value) noexcept
{
    Shard &shard = shards_[shardIndex()];
    shard.buckets[bucketOf(value)].fetch_add(1,
                                             std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    atomicMin(shard.min, value);
    atomicMax(shard.max, value);
}

HistogramSnapshot
Histogram::read() const noexcept
{
    HistogramSnapshot out;
    std::uint64_t min = ~std::uint64_t{0};
    for (const Shard &shard : shards_) {
        out.count += shard.count.load(std::memory_order_relaxed);
        out.sum += shard.sum.load(std::memory_order_relaxed);
        min = std::min(min, shard.min.load(std::memory_order_relaxed));
        out.max = std::max(out.max,
                           shard.max.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < kBuckets; ++b) {
            out.buckets[b] +=
                shard.buckets[b].load(std::memory_order_relaxed);
        }
    }
    out.min = out.count ? min : 0;
    return out;
}

void
Histogram::reset() noexcept
{
    for (Shard &shard : shards_) {
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
        shard.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
        shard.max.store(0, std::memory_order_relaxed);
    }
}

void
Stage::reset() noexcept
{
    spans_.reset();
    totalNs_.reset();
    childNs_.reset();
    spanNs_.reset();
}

void
Snapshot::merge(const Snapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.gauges)
        gauges[name] = value;
    for (const auto &[name, hist] : other.histograms) {
        HistogramSnapshot &mine = histograms[name];
        const bool was_empty = mine.count == 0;
        mine.count += hist.count;
        mine.sum += hist.sum;
        if (hist.count) {
            mine.min = was_empty ? hist.min
                                 : std::min(mine.min, hist.min);
            mine.max = std::max(mine.max, hist.max);
        }
        for (std::size_t b = 0; b < kBuckets; ++b)
            mine.buckets[b] += hist.buckets[b];
    }
    for (const auto &[name, stage] : other.stages) {
        StageSnapshot &mine = stages[name];
        mine.count += stage.count;
        mine.totalNs += stage.totalNs;
        mine.childNs += stage.childNs;
        const bool was_empty = mine.spans.count == 0;
        mine.spans.count += stage.spans.count;
        mine.spans.sum += stage.spans.sum;
        if (stage.spans.count) {
            mine.spans.min = was_empty
                                 ? stage.spans.min
                                 : std::min(mine.spans.min,
                                            stage.spans.min);
            mine.spans.max =
                std::max(mine.spans.max, stage.spans.max);
        }
        for (std::size_t b = 0; b < kBuckets; ++b)
            mine.spans.buckets[b] += stage.spans.buckets[b];
    }
}

namespace
{

HistogramSnapshot
diffHistogram(const HistogramSnapshot *before,
              const HistogramSnapshot &after)
{
    HistogramSnapshot out = after;
    if (before) {
        out.count -= before->count;
        out.sum -= before->sum;
        for (std::size_t b = 0; b < kBuckets; ++b)
            out.buckets[b] -= before->buckets[b];
        // min/max stay 'after' lifetime extrema (see header).
        if (out.count == 0) {
            out.min = 0;
            out.max = 0;
        }
    }
    return out;
}

} // namespace

Snapshot
diff(const Snapshot &before, const Snapshot &after)
{
    Snapshot out;
    for (const auto &[name, value] : after.counters) {
        const auto it = before.counters.find(name);
        out.counters[name] =
            value - (it == before.counters.end() ? 0 : it->second);
    }
    out.gauges = after.gauges;
    for (const auto &[name, hist] : after.histograms) {
        const auto it = before.histograms.find(name);
        out.histograms[name] = diffHistogram(
            it == before.histograms.end() ? nullptr : &it->second,
            hist);
    }
    for (const auto &[name, stage] : after.stages) {
        const auto it = before.stages.find(name);
        StageSnapshot delta = stage;
        if (it != before.stages.end()) {
            delta.count -= it->second.count;
            delta.totalNs -= it->second.totalNs;
            delta.childNs -= it->second.childNs;
            delta.spans =
                diffHistogram(&it->second.spans, stage.spans);
        }
        out.stages[name] = delta;
    }
    return out;
}

Registry &
Registry::global()
{
    // Leaked on purpose: see the file comment.
    static Registry *registry = // NOLINT(acdse-local-static)
        new Registry;
    return *registry;
}

void
Registry::checkUnique(std::string_view name, int kind) const
{
    // Caller holds mutex_ exclusively. Kind: 0 counter, 1 gauge,
    // 2 histogram, 3 stage. A name must not be re-interned as a
    // different kind.
    ACDSE_CHECK(kind == 0 || !counters_.contains(name), "metric '",
                std::string(name),
                "' already registered as a counter");
    ACDSE_CHECK(kind == 1 || !gauges_.contains(name), "metric '",
                std::string(name), "' already registered as a gauge");
    ACDSE_CHECK(kind == 2 || !histograms_.contains(name), "metric '",
                std::string(name),
                "' already registered as a histogram");
    ACDSE_CHECK(kind == 3 || !stages_.contains(name), "metric '",
                std::string(name), "' already registered as a stage");
}

Counter &
Registry::counter(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = counters_.find(name);
            it != counters_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 0);
    auto &slot = counters_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = gauges_.find(name); it != gauges_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 1);
    auto &slot = gauges_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(std::string_view name)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = histograms_.find(name);
            it != histograms_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(name, 2);
    auto &slot = histograms_[std::string(name)];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Stage &
Registry::stage(std::string_view path)
{
    {
        ReaderLock lock(mutex_);
        if (const auto it = stages_.find(path); it != stages_.end())
            return *it->second;
    }
    WriterLock lock(mutex_);
    checkUnique(path, 3);
    auto &slot = stages_[std::string(path)];
    if (!slot)
        slot = std::make_unique<Stage>(std::string(path));
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    ReaderLock lock(mutex_);
    Snapshot out;
    for (const auto &[name, counter] : counters_)
        out.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        out.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_)
        out.histograms[name] = histogram->read();
    for (const auto &[name, stage] : stages_) {
        StageSnapshot snap;
        snap.count = stage->spans().value();
        snap.totalNs = stage->totalNs().value();
        snap.childNs = stage->childNs().value();
        snap.spans = stage->spanNs().read();
        out.stages[name] = snap;
    }
    return out;
}

void
Registry::reset()
{
    ReaderLock lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
    for (const auto &[name, stage] : stages_)
        stage->reset();
}

} // namespace acdse::obs
