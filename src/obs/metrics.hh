/**
 * @file
 * The metrics registry: wait-free counters, gauges and log-bucketed
 * histograms for watching where the framework's time and simulations
 * go (see README "Observability").
 *
 * Design rules:
 *
 *  - Hot paths never block. Counter and Histogram shard their state
 *    into cache-line-padded per-thread slots updated with relaxed
 *    atomics; reads aggregate the shards. A reader racing writers sees
 *    a momentarily inconsistent but monotone view, which is fine for
 *    statistics and clean under TSan.
 *
 *  - Registration is cold. Registry::counter()/gauge()/histogram()/
 *    stage() intern by name under a shared_mutex and return references
 *    with stable addresses; instrumented code looks its metrics up
 *    once (static reference, constructor) and then only touches the
 *    wait-free primitives.
 *
 *  - ACDSE_OBS=OFF (-DACDSE_OBS_DISABLED) is the escape hatch: the
 *    registry and the snapshot/export machinery stay compiled (tools
 *    still emit schema-valid, all-zero stats) but every mutation --
 *    Counter::add, Histogram::record, TraceSpan (obs/trace_span.hh) --
 *    compiles to nothing, so instrumented hot loops carry no cost at
 *    all. kEnabled lets tests and callers branch on the mode.
 *
 *  - The global registry is deliberately leaked (never destroyed):
 *    worker threads of static thread pools may record metrics during
 *    process teardown, after function-local statics with destructors
 *    would already be gone.
 */

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/sync.hh"

namespace acdse::obs
{

#if defined(ACDSE_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/** Slots per sharded metric; power of two. */
inline constexpr std::size_t kShards = 16;

/** Histogram buckets: one per power of two of a uint64 (plus zero). */
inline constexpr std::size_t kBuckets = 65;

/** This thread's shard slot (assigned round-robin on first use). */
std::size_t shardIndex() noexcept;

/** Monotonic wall clock in nanoseconds (steady_clock). */
std::uint64_t nowNs() noexcept;

/** A monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) noexcept
    {
        if constexpr (kEnabled) {
            slots_[shardIndex()].value.fetch_add(
                n, std::memory_order_relaxed);
        } else {
            (void)n;
        }
    }

    /** Aggregate over all shards. */
    std::uint64_t value() const noexcept;

    /** Zero every shard (not atomic with concurrent add()s). */
    void reset() noexcept;

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Slot, kShards> slots_{};
};

/** A signed instantaneous value (queue depth, models resident, ...). */
class Gauge
{
  public:
    void set(std::int64_t v) noexcept
    {
        if constexpr (kEnabled)
            value_.store(v, std::memory_order_relaxed);
        else
            (void)v;
    }

    void add(std::int64_t delta) noexcept
    {
        if constexpr (kEnabled)
            value_.fetch_add(delta, std::memory_order_relaxed);
        else
            (void)delta;
    }

    std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Aggregated read of one Histogram (or a diff of two reads). */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; //!< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /**
     * Approximate quantile @p q in [0, 1]: find the log2 bucket
     * holding the q-th sample and interpolate linearly inside it.
     * Bucket b > 0 spans [2^(b-1), 2^b - 1], so the answer is within
     * 2x of the exact sample value -- good enough for dashboards and
     * coarse gates; serving-latency SLOs use the exact Reservoir.
     */
    double quantile(double q) const;
};

/**
 * A fixed log2-bucketed distribution of uint64 samples (durations in
 * nanoseconds, batch sizes). Bucket b holds values in
 * [bucketLow(b), bucketHigh(b)]: bucket 0 is exactly {0}, bucket b>0
 * covers [2^(b-1), 2^b - 1].
 */
class Histogram
{
  public:
    void record(std::uint64_t value) noexcept
    {
        if constexpr (kEnabled)
            recordSlow(value);
        else
            (void)value;
    }

    HistogramSnapshot read() const noexcept;

    void reset() noexcept;

    /** Bucket index of a value: 0 for 0, else 1 + floor(log2 v). */
    static std::size_t bucketOf(std::uint64_t value) noexcept
    {
        return static_cast<std::size_t>(std::bit_width(value));
    }

    /** Inclusive lower edge of bucket @p b. */
    static std::uint64_t bucketLow(std::size_t b) noexcept
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    /** Inclusive upper edge of bucket @p b. */
    static std::uint64_t bucketHigh(std::size_t b) noexcept
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << b) - 1;
    }

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{~std::uint64_t{0}};
        std::atomic<std::uint64_t> max{0};
    };

    void recordSlow(std::uint64_t value) noexcept;

    std::array<Shard, kShards> shards_{};
};

/** Aggregated read of one Reservoir. */
struct ReservoirSnapshot
{
    std::uint64_t count = 0;            //!< samples offered (not kept)
    std::vector<std::uint64_t> samples; //!< retained sample, sorted

    /**
     * Exact nearest-rank quantile over the retained sample;
     * 0 when empty. With fewer offers than the reservoir capacity
     * this is the exact stream quantile; beyond that it is the
     * quantile of a uniform subsample (standard error ~1/sqrt(cap)).
     */
    std::uint64_t quantile(double q) const;
};

/**
 * A fixed-size uniform sample of a value stream for *exact* quantiles
 * -- the tail-latency complement to Histogram, whose log2 buckets can
 * only bound p99/p999 to a factor of two.
 *
 * Replacement is Algorithm R with the randomness derived from a
 * splitmix64 hash of the sample ordinal: deterministic (same stream
 * -> same reservoir, per the repo's reproducibility rule), unbiased
 * across positions, and wait-free (one fetch_add plus one relaxed
 * store; concurrent readers may observe a sample mid-replacement,
 * which yields a momentarily duplicated value, never a torn one).
 */
class Reservoir
{
  public:
    /** Retained samples; p999 of a full reservoir rests on ~4 points. */
    static constexpr std::size_t kReservoirCapacity = 4096;

    void record(std::uint64_t value) noexcept
    {
        if constexpr (kEnabled)
            recordSlow(value);
        else
            (void)value;
    }

    ReservoirSnapshot read() const;

    void reset() noexcept;

  private:
    void recordSlow(std::uint64_t value) noexcept;

    std::atomic<std::uint64_t> count_{0};
    std::array<std::atomic<std::uint64_t>, kReservoirCapacity>
        samples_{};
};

/**
 * One node of the stage tree: a named scope ("campaign/fill",
 * "train/program/3") that TraceSpans attribute wall time to. childNs
 * is the portion of totalNs spent inside nested spans *on the same
 * thread*, so totalNs - childNs is the stage's self time.
 */
class Stage
{
  public:
    explicit Stage(std::string path) : path_(std::move(path)) {}

    const std::string &path() const { return path_; }

    /** Fold one finished span in (called by ~TraceSpan). */
    void record(std::uint64_t totalNs, std::uint64_t childNs) noexcept
    {
        spans_.add(1);
        totalNs_.add(totalNs);
        childNs_.add(childNs);
        spanNs_.record(totalNs);
    }

    const Counter &spans() const { return spans_; }
    const Counter &totalNs() const { return totalNs_; }
    const Counter &childNs() const { return childNs_; }
    const Histogram &spanNs() const { return spanNs_; }

    void reset() noexcept;

  private:
    std::string path_;
    Counter spans_;   //!< spans completed
    Counter totalNs_; //!< summed inclusive wall time
    Counter childNs_; //!< wall time attributed to same-thread children
    Histogram spanNs_; //!< distribution of span durations
};

/** Aggregated read of one Stage (or a diff of two reads). */
struct StageSnapshot
{
    std::uint64_t count = 0;   //!< spans completed
    std::uint64_t totalNs = 0; //!< inclusive wall time
    std::uint64_t childNs = 0; //!< of which inside same-thread children
    HistogramSnapshot spans;   //!< span-duration distribution

    double totalMs() const
    {
        return static_cast<double>(totalNs) / 1e6;
    }

    /** Exclusive (self) time: inclusive minus same-thread children. */
    double selfMs() const
    {
        return static_cast<double>(totalNs - childNs) / 1e6;
    }
};

/** A consistent-enough point-in-time read of a whole Registry. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, ReservoirSnapshot> reservoirs;
    std::map<std::string, StageSnapshot> stages;

    /**
     * Fold @p other in: counters/histograms/stages with the same name
     * add up, gauges take the other's value. Used to combine the
     * global registry with a service's private one for export.
     */
    void merge(const Snapshot &other);
};

/**
 * Interval between two snapshots of the same registry: counters,
 * histogram counts/sums/buckets and stage times subtract; gauges keep
 * the @p after value; histogram min/max keep the @p after values
 * (extrema cannot be un-merged and stay lifetime extrema); reservoirs
 * keep the @p after sample wholesale (individual samples cannot be
 * subtracted) with only the offer count differenced.
 */
Snapshot diff(const Snapshot &before, const Snapshot &after);

/**
 * A named collection of metrics. One leaked global() instance carries
 * the library-wide stage tree and pool counters; subsystems that need
 * isolated, resettable stats (PredictionService) own their own
 * instance.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry (never destroyed; see file comment). */
    static Registry &global();

    /** Intern a metric by name; a name has exactly one kind. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);
    Reservoir &reservoir(std::string_view name);
    Stage &stage(std::string_view path);

    /** Aggregate everything registered so far. */
    Snapshot snapshot() const;

    /** Zero every registered metric (names stay interned). */
    void reset();

  private:
    /** Panics if @p name is already interned with another kind. */
    void checkUnique(std::string_view name, int kind) const
        ACDSE_REQUIRES(mutex_);

    mutable SharedMutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ ACDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        ACDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_ ACDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Reservoir>, std::less<>>
        reservoirs_ ACDSE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Stage>, std::less<>> stages_
        ACDSE_GUARDED_BY(mutex_);
};

} // namespace acdse::obs
