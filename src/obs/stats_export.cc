#include "obs/stats_export.hh"

#include "base/json.hh"

namespace acdse::obs
{

namespace
{

void
writeHistogramJson(JsonWriter &writer, const HistogramSnapshot &hist)
{
    writer.beginObject()
        .key("count")
        .value(hist.count)
        .key("sum")
        .value(hist.sum)
        .key("min")
        .value(hist.min)
        .key("max")
        .value(hist.max)
        .key("mean")
        .value(hist.mean())
        .key("p50")
        .value(hist.quantile(0.50))
        .key("p99")
        .value(hist.quantile(0.99))
        .key("p999")
        .value(hist.quantile(0.999));
    writer.key("buckets").beginArray();
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (hist.buckets[b] == 0)
            continue;
        writer.beginObject()
            .key("le")
            .value(Histogram::bucketHigh(b))
            .key("count")
            .value(hist.buckets[b])
            .endObject();
    }
    writer.endArray().endObject();
}

} // namespace

void
writeStagesJson(JsonWriter &writer, const Snapshot &snapshot)
{
    writer.beginObject();
    for (const auto &[path, stage] : snapshot.stages) {
        writer.key(path)
            .beginObject()
            .key("count")
            .value(stage.count)
            .key("total_ms")
            .value(stage.totalMs())
            .key("self_ms")
            .value(stage.selfMs())
            .key("mean_ms")
            .value(stage.count ? stage.totalMs() /
                                     static_cast<double>(stage.count)
                               : 0.0)
            .endObject();
    }
    writer.endObject();
}

std::string
statsToJson(const Snapshot &snapshot)
{
    JsonWriter writer;
    writer.beginObject().key("schema").value(kStatsSchema);
    writer.key("counters").beginObject();
    for (const auto &[name, value] : snapshot.counters)
        writer.key(name).value(value);
    writer.endObject();
    writer.key("gauges").beginObject();
    for (const auto &[name, value] : snapshot.gauges)
        writer.key(name).value(value);
    writer.endObject();
    writer.key("histograms").beginObject();
    for (const auto &[name, hist] : snapshot.histograms) {
        writer.key(name);
        writeHistogramJson(writer, hist);
    }
    writer.endObject();
    writer.key("reservoirs").beginObject();
    for (const auto &[name, res] : snapshot.reservoirs) {
        writer.key(name)
            .beginObject()
            .key("count")
            .value(res.count)
            .key("retained")
            .value(static_cast<std::uint64_t>(res.samples.size()))
            .key("p50")
            .value(res.quantile(0.50))
            .key("p90")
            .value(res.quantile(0.90))
            .key("p99")
            .value(res.quantile(0.99))
            .key("p999")
            .value(res.quantile(0.999))
            .endObject();
    }
    writer.endObject();
    writer.key("stages");
    writeStagesJson(writer, snapshot);
    writer.endObject();
    return writer.str();
}

void
writeStatsFile(const std::string &path, const Snapshot &snapshot)
{
    writeTextAtomic(path, statsToJson(snapshot));
}

} // namespace acdse::obs
