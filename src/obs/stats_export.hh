/**
 * @file
 * JSON export of metric snapshots: schema `acdse-stats-v1`, emitted by
 * the `--stats-out` flags of acdse-serve and train_then_serve, by the
 * service's periodic dump, and (stages only) appended to BENCH_*.json.
 *
 * Layout:
 *
 *   {
 *     "schema": "acdse-stats-v1",
 *     "counters":   { "<name>": <u64>, ... },
 *     "gauges":     { "<name>": <i64>, ... },
 *     "histograms": { "<name>": { "count": <u64>, "sum": <u64>,
 *                                 "min": <u64>, "max": <u64>,
 *                                 "mean": <double>,
 *                                 "p50": <double>, "p99": <double>,
 *                                 "p999": <double>,
 *                                 "buckets": [ { "le": <u64>,
 *                                                "count": <u64> },
 *                                              ... ] }, ... },
 *     "reservoirs": { "<name>": { "count": <u64>, "retained": <u64>,
 *                                 "p50": <u64>, "p90": <u64>,
 *                                 "p99": <u64>, "p999": <u64> },
 *                     ... },
 *     "stages":     { "<path>": { "count": <u64>,
 *                                 "total_ms": <double>,
 *                                 "self_ms": <double>,
 *                                 "mean_ms": <double> }, ... }
 *   }
 *
 * Histogram buckets are log2-scaled (obs/metrics.hh) and only occupied
 * buckets are emitted; "le" is the bucket's inclusive upper edge.
 * Stage self_ms is inclusive time minus same-thread child time, so
 * summing self_ms over all stages on a single-threaded run stays
 * <= total wall time. With ACDSE_OBS=OFF the export machinery still
 * works and emits schema-valid all-zero documents.
 */

#pragma once

#include <string>

#include "obs/metrics.hh"

namespace acdse
{
class JsonWriter;
} // namespace acdse

namespace acdse::obs
{

/** Schema tag written into every stats document. */
inline constexpr std::string_view kStatsSchema = "acdse-stats-v1";

/** Serialise @p snapshot as a complete acdse-stats-v1 document. */
std::string statsToJson(const Snapshot &snapshot);

/** Atomically write statsToJson(@p snapshot) to @p path. */
void writeStatsFile(const std::string &path, const Snapshot &snapshot);

/**
 * Emit the "stages" sub-object ({path: {count, total_ms, self_ms,
 * mean_ms}}) into an in-progress document; @p writer must be
 * positioned after a key. Used by the benches to append a per-stage
 * breakdown to BENCH_*.json without changing existing keys.
 */
void writeStagesJson(JsonWriter &writer, const Snapshot &snapshot);

} // namespace acdse::obs
