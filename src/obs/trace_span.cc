#include "obs/trace_span.hh"

#include <utility>

namespace acdse::obs
{

namespace
{

/** Innermost open span on this thread; nullptr outside any span. */
thread_local TraceSpan *tl_current = nullptr;

} // namespace

const TraceSpan *
TraceSpan::current() noexcept
{
    return tl_current;
}

void
TraceSpan::open(Stage *stage) noexcept
{
    stage_ = stage;
    parent_ = std::exchange(tl_current, this);
    startNs_ = nowNs();
}

void
TraceSpan::close() noexcept
{
    const std::uint64_t elapsed = nowNs() - startNs_;
    tl_current = parent_;
    if (parent_ != nullptr)
        parent_->childNs_ += elapsed;
    stage_->record(elapsed, childNs_);
}

} // namespace acdse::obs
