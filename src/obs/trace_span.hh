/**
 * @file
 * RAII scoped timers that attribute wall time to the Stage tree
 * (obs/metrics.hh). A TraceSpan marks one execution of a stage --
 * "campaign/fill", "train/program/3", "serve/batch" -- at stage
 * granularity; per-point work inside hot loops stays un-spanned (the
 * acdse-obs-span-in-hot-loop lint rule enforces this).
 */

#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hh"

namespace acdse::obs
{

/**
 * Times a scope and folds the result into a Stage on destruction.
 *
 * Spans nest through a thread-local stack: when a span closes, its
 * inclusive time is credited to the enclosing same-thread span's child
 * time, so a stage's self time (total - child) never double-counts
 * nested stages. Work handed to pool workers opens spans on a fresh
 * stack on that thread -- cross-thread parentage is deliberately not
 * tracked (it would need synchronisation on the hot path), so a stage
 * that blocks waiting on workers keeps that wait in its own self time
 * while the workers' stages account for theirs. Summing self times
 * across stages therefore stays <= total wall time on one thread and
 * <= aggregate CPU time across many.
 *
 * With ACDSE_OBS=OFF both constructors and the destructor compile to
 * nothing.
 */
class TraceSpan
{
  public:
    /** Open a span against an already-interned stage (hot path). */
    explicit TraceSpan(Stage &stage) noexcept
    {
        if constexpr (kEnabled)
            open(&stage);
    }

    /** Intern @p path in @p registry (cold) and open against it. */
    TraceSpan(Registry &registry, std::string_view path)
    {
        if constexpr (kEnabled)
            open(&registry.stage(path));
    }

    ~TraceSpan()
    {
        if constexpr (kEnabled)
            close();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** The innermost open span on this thread (tests/debugging). */
    static const TraceSpan *current() noexcept;

    const Stage *stage() const noexcept { return stage_; }

  private:
    void open(Stage *stage) noexcept;
    void close() noexcept;

    Stage *stage_ = nullptr;
    TraceSpan *parent_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint64_t childNs_ = 0;
};

} // namespace acdse::obs
