#include "serve/model_store.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/binary_io.hh"
#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

void
ModelArtifact::add(Metric metric, ArchitectureCentricPredictor predictor)
{
    ACDSE_CHECK(predictor.offlineTrained(),
                 "artifact predictors must be offline-trained");
    for (auto &entry : entries_) {
        if (entry.metric == metric) {
            entry.predictor = std::move(predictor);
            return;
        }
    }
    entries_.push_back({metric, std::move(predictor)});
}

bool
ModelArtifact::has(Metric metric) const
{
    for (const auto &entry : entries_) {
        if (entry.metric == metric)
            return true;
    }
    return false;
}

const ArchitectureCentricPredictor &
ModelArtifact::predictor(Metric metric) const
{
    for (const auto &entry : entries_) {
        if (entry.metric == metric)
            return entry.predictor;
    }
    panic("artifact has no predictor for metric '", metricName(metric),
          "'");
}

std::vector<Metric>
ModelArtifact::metrics() const
{
    std::vector<Metric> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.metric);
    return out;
}

std::string
encodeArtifact(const ModelArtifact &artifact)
{
    BinaryWriter payload;
    payload.str(artifact.tag());
    payload.u32(static_cast<std::uint32_t>(artifact.entries().size()));
    for (const auto &entry : artifact.entries()) {
        payload.u32(static_cast<std::uint32_t>(entry.metric));
        entry.predictor.save(payload);
    }

    std::string bytes(kArtifactMagic);
    BinaryWriter header;
    header.u32(kArtifactVersion);
    header.u64(payload.buffer().size());
    header.u64(fnv1a64(payload.buffer()));
    bytes += header.buffer();
    bytes += payload.buffer();
    return bytes;
}

ModelArtifact
decodeArtifact(std::string_view bytes)
{
    constexpr std::size_t header_size = 8 + 4 + 8 + 8;
    if (bytes.size() < header_size)
        throw SerializationError("artifact too small to hold a header");
    if (bytes.substr(0, kArtifactMagic.size()) != kArtifactMagic)
        throw SerializationError(
            "bad magic: not an ACDSE model artifact");

    BinaryReader header(bytes.substr(kArtifactMagic.size()));
    const std::uint32_t version = header.u32();
    if (version != kArtifactVersion)
        throw SerializationError(
            "unsupported artifact version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kArtifactVersion) + ")");
    const std::uint64_t payload_size = header.u64();
    const std::uint64_t checksum = header.u64();

    const std::string_view payload = bytes.substr(header_size);
    if (payload.size() != payload_size)
        throw SerializationError(
            "artifact payload size mismatch (truncated or padded file)");
    if (fnv1a64(payload) != checksum)
        throw SerializationError(
            "artifact checksum mismatch (corrupt file)");

    BinaryReader r(payload);
    ModelArtifact artifact;
    artifact.setTag(r.str());
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t metric_raw = r.u32();
        if (metric_raw >= kNumMetrics)
            throw SerializationError("artifact names an unknown metric");
        const Metric metric = static_cast<Metric>(metric_raw);
        if (artifact.has(metric))
            throw SerializationError(
                "artifact has duplicate predictors for one metric");
        ArchitectureCentricPredictor predictor;
        predictor.load(r);
        artifact.add(metric, std::move(predictor));
    }
    if (!r.exhausted())
        throw SerializationError("artifact has trailing bytes");
    return artifact;
}

void
saveArtifact(const std::string &path, const ModelArtifact &artifact)
{
    ACDSE_CHECK(!path.empty(), "artifact path is empty");
    ACDSE_CHECK(!artifact.empty(),
                "refusing to save an artifact with no predictors");
    const std::string bytes = encodeArtifact(artifact);

    // Write-then-rename: the artifact appears atomically under its
    // final name, so a concurrent loadArtifact never sees a torn file.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            panic("cannot open '", tmp, "' for writing");
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os)
            panic("failed while writing '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        panic("cannot rename '", tmp, "' to '", path, "'");
    }
}

ModelArtifact
loadArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializationError("cannot open artifact '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in)
        throw SerializationError("failed reading artifact '" + path +
                                 "'");
    return decodeArtifact(buffer.str());
}

} // namespace acdse
