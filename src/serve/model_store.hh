/**
 * @file
 * Versioned on-disk persistence for trained predictors.
 *
 * The paper's asymmetry is the whole point of serving: the offline
 * phase (one ANN per training program over T = 512 simulations each)
 * is hours of work, while predicting any of the ~18 billion design
 * points afterwards is microseconds. The model store captures the
 * expensive half in a single artifact file so that training happens
 * once -- in a campaign binary -- and every later process (the
 * acdse-serve CLI, a benchmark, a test) loads it in milliseconds.
 *
 * Artifact file layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "ACDSEMDL"
 *        8     4  format version (kArtifactVersion)
 *       12     8  payload size in bytes
 *       20     8  FNV-1a 64 checksum of the payload
 *       28     n  payload (tag + per-metric predictors)
 *
 * Loading rejects a bad magic, an unsupported version and any
 * size/checksum mismatch with SerializationError; a serving process
 * must survive a corrupt or foreign file rather than crash on it.
 * Writes go to a temporary file first and are rename()d into place, so
 * a crashed writer never leaves a truncated artifact behind.
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/architecture_centric_predictor.hh"
#include "sim/metrics.hh"

namespace acdse
{

/** Magic bytes opening every artifact file. */
inline constexpr std::string_view kArtifactMagic = "ACDSEMDL";

/** Current artifact format version. */
inline constexpr std::uint32_t kArtifactVersion = 1;

/**
 * A bundle of trained predictors, one per target metric, plus a
 * free-form provenance tag (e.g. which campaign and target program
 * produced it). This is the unit of persistence and the unit a
 * PredictionService serves.
 */
class ModelArtifact
{
  public:
    /** One (metric, predictor) pair. */
    struct Entry
    {
        Metric metric;                          //!< which target metric
        ArchitectureCentricPredictor predictor; //!< its trained model
    };

    /** Free-form provenance tag. */
    const std::string &tag() const { return tag_; }

    /** Set the provenance tag. */
    void setTag(std::string tag) { tag_ = std::move(tag); }

    /**
     * Add (or replace) the predictor for one metric. The predictor
     * must at least be offline-trained; a response-fitted one serves
     * predictions immediately after loading.
     */
    void add(Metric metric, ArchitectureCentricPredictor predictor);

    /** Whether a predictor for this metric is present. */
    bool has(Metric metric) const;

    /** The predictor for one metric; panics if absent. */
    const ArchitectureCentricPredictor &predictor(Metric metric) const;

    /** The metrics with a predictor, in insertion order. */
    std::vector<Metric> metrics() const;

    /** All entries, in insertion order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Whether no predictor has been added. */
    bool empty() const { return entries_.empty(); }

  private:
    std::string tag_;
    std::vector<Entry> entries_;
};

/** Encode an artifact into the full file byte stream (header+payload). */
std::string encodeArtifact(const ModelArtifact &artifact);

/**
 * Decode an artifact from a full file byte stream.
 * @throws SerializationError on bad magic, unsupported version,
 *         truncation, checksum mismatch or malformed payload.
 */
ModelArtifact decodeArtifact(std::string_view bytes);

/**
 * Write an artifact to disk atomically (temp file + rename): readers
 * racing with the writer see either the old file or the complete new
 * one, never a torn write. Panics on I/O failure.
 */
void saveArtifact(const std::string &path, const ModelArtifact &artifact);

/**
 * Read an artifact from disk.
 * @throws SerializationError if the file is missing, unreadable or
 *         fails any integrity check.
 */
ModelArtifact loadArtifact(const std::string &path);

} // namespace acdse

