#include "serve/model_table.hh"

#include "arch/microarch_config.hh"
#include "base/check.hh"

namespace acdse
{

void
checkServableArtifact(const ModelArtifact &artifact)
{
    ACDSE_CHECK(!artifact.empty(),
                "cannot serve an artifact with no predictors");
    for (const auto &entry : artifact.entries()) {
        ACDSE_CHECK(entry.predictor.ready(),
                    "artifact predictor for ",
                    metricName(entry.metric),
                    " has no fitted responses");
        // Validate width once at publish time so the per-point
        // predict path can run on DCHECKs alone.
        ACDSE_CHECK(entry.predictor.featureDim() == kNumParams,
                    "artifact predictor for ",
                    metricName(entry.metric), " expects ",
                    entry.predictor.featureDim(),
                    " features, queries carry ", kNumParams);
    }
}

ModelRegistry::ModelRegistry()
{
    table_.store(std::make_shared<const ModelTable>(),
                 std::memory_order_release);
}

TenantId
ModelRegistry::registerTenant(const std::string &name)
{
    ACDSE_CHECK(!name.empty(), "tenant name must be non-empty");
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return static_cast<TenantId>(i);
    }
    names_.push_back(name);
    // Grow the published table to cover the new tenant slot so
    // readers can index it without bounds anxiety. Copy-on-write:
    // the old snapshot stays frozen for its in-flight holders.
    auto next = std::make_shared<ModelTable>(
        *table_.load(std::memory_order_acquire));
    next->models_.resize(names_.size());
    table_.store(std::shared_ptr<const ModelTable>(std::move(next)),
                 std::memory_order_release);
    return static_cast<TenantId>(names_.size() - 1);
}

TenantId
ModelRegistry::findTenant(const std::string &name) const
{
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return static_cast<TenantId>(i);
    }
    return kInvalidTenant;
}

std::vector<std::string>
ModelRegistry::tenantNames() const
{
    MutexLock lock(mutex_);
    return names_;
}

std::uint64_t
ModelRegistry::publish(TenantId tenant, ModelArtifact artifact)
{
    checkServableArtifact(artifact);
    MutexLock lock(mutex_);
    ACDSE_CHECK(tenant < names_.size(), "tenant ", tenant,
                " is not registered");
    // Build the successor table off to the side; nothing the readers
    // can observe mutates until the single publishing store below.
    auto model = std::make_shared<ServedModel>();
    const std::uint64_t version =
        version_.fetch_add(1, std::memory_order_relaxed) + 1;
    model->version = version;
    model->tenant = tenant;
    model->artifact = std::move(artifact);

    auto next = std::make_shared<ModelTable>(
        *table_.load(std::memory_order_acquire));
    next->models_.resize(names_.size());
    next->models_[tenant] = std::move(model);
    table_.store(std::shared_ptr<const ModelTable>(std::move(next)),
                 std::memory_order_release);
    return version;
}

} // namespace acdse
