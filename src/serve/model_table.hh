/**
 * @file
 * Versioned, multi-tenant model publication with epoch-based (RCU
 * style) reclamation: the runtime half of the model store.
 *
 * A serving process maps many tenants (programs, users, experiment
 * arms) onto trained artifacts, and operators replace those artifacts
 * while traffic is in flight. The requirements are exactly RCU's:
 *
 *  - Readers (the request path) must never block or fail during a
 *    swap: they take one acquire load to pin a consistent snapshot
 *    and serve the whole batch from it.
 *  - Writers (publish) build a *new* immutable ModelTable off to the
 *    side, stamp it with the next version, and publish it with one
 *    atomic pointer store. Nothing in the old table is mutated, ever.
 *  - Retirement is the shared_ptr epoch: a superseded ServedModel
 *    stays alive exactly as long as some in-flight batch still holds
 *    its snapshot, and is destroyed when the last such batch drops it
 *    -- no grace-period bookkeeping, no failed requests across a
 *    swap. (DESIGN.md, "Epoch-based reclamation vs lock discipline".)
 *
 * Versions are registry-global and strictly monotonic: every publish
 * -- any tenant -- gets the next version number, so a response
 * stamped with its serving version totally orders swaps, and a churn
 * test can assert that the versions one producer observes never go
 * backwards.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "serve/model_store.hh"

namespace acdse
{

/** Dense tenant handle; allocated by ModelRegistry::registerTenant. */
using TenantId = std::uint32_t;

/** Every service has at least this tenant (the constructor artifact). */
inline constexpr TenantId kDefaultTenant = 0;

/** One published, immutable serving artifact. */
struct ServedModel
{
    std::uint64_t version = 0; //!< registry-global publish ordinal
    TenantId tenant = 0;       //!< the tenant it was published for
    ModelArtifact artifact;    //!< the trained predictors
};

/**
 * An immutable tenant -> model mapping. One shared_ptr<const
 * ModelTable> is the unit of publication: readers that loaded it see
 * a frozen world regardless of concurrent publishes.
 */
class ModelTable
{
  public:
    /**
     * The model serving @p tenant, or nullptr when the tenant is
     * unknown to this snapshot or has no published artifact yet.
     */
    const ServedModel *modelFor(TenantId tenant) const
    {
        return tenant < models_.size() ? models_[tenant].get()
                                       : nullptr;
    }

    /** Shared ownership of @p tenant's model (see modelFor). */
    std::shared_ptr<const ServedModel> modelPtr(TenantId tenant) const
    {
        return tenant < models_.size()
                   ? models_[tenant]
                   : std::shared_ptr<const ServedModel>();
    }

    /** Number of tenant slots in this snapshot. */
    std::size_t tenantCount() const { return models_.size(); }

  private:
    friend class ModelRegistry;
    std::vector<std::shared_ptr<const ServedModel>> models_;
};

/**
 * The mutable publisher: registers tenants, validates artifacts and
 * atomically publishes new ModelTable snapshots.
 *
 * Thread model: table() is safe from any thread and lock-free on the
 * reader side of the swap (one atomic shared_ptr load; in-flight
 * snapshots pin their epoch). registerTenant() and publish() are
 * serialised by an internal mutex -- copying the tenant vector is the
 * writer's cost, invisible to readers.
 */
class ModelRegistry
{
  public:
    ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Register a tenant and return its dense id. Re-registering an
     * existing name returns the original id. Panics on an empty name.
     */
    TenantId registerTenant(const std::string &name)
        ACDSE_EXCLUDES(mutex_);

    /** The id for @p name, or kInvalidTenant when unregistered. */
    static constexpr TenantId kInvalidTenant =
        ~static_cast<TenantId>(0);
    TenantId findTenant(const std::string &name) const
        ACDSE_EXCLUDES(mutex_);

    /** Registered tenant names, indexed by TenantId. */
    std::vector<std::string> tenantNames() const
        ACDSE_EXCLUDES(mutex_);

    /**
     * Validate @p artifact (non-empty, every predictor fitted and of
     * design-space width) and publish it as @p tenant's new model.
     * Returns the new registry-global version. In-flight readers keep
     * serving the snapshot they pinned; new table() loads see the new
     * model. Panics on an unregistered tenant or invalid artifact.
     */
    std::uint64_t publish(TenantId tenant, ModelArtifact artifact)
        ACDSE_EXCLUDES(mutex_);

    /** The current snapshot (never null; may be empty of models). */
    std::shared_ptr<const ModelTable> table() const
    {
        return table_.load(std::memory_order_acquire);
    }

    /** The most recently assigned version (0 before any publish). */
    std::uint64_t currentVersion() const
    {
        return version_.load(std::memory_order_relaxed);
    }

  private:
    mutable Mutex mutex_;
    std::vector<std::string> names_ ACDSE_GUARDED_BY(mutex_);

    /** Monotonic publish ordinal (read lock-free, bumped in publish). */
    std::atomic<std::uint64_t> version_{0};

    /** The published snapshot; readers load-acquire, publish stores. */
    std::atomic<std::shared_ptr<const ModelTable>> table_;
};

/**
 * Panics unless @p artifact can serve design-space queries: at least
 * one metric, every predictor response-fitted and expecting
 * kNumParams features. Shared by ModelRegistry::publish and the
 * prediction service constructor.
 */
void checkServableArtifact(const ModelArtifact &artifact);

} // namespace acdse
