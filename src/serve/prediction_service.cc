#include "serve/prediction_service.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "obs/stats_export.hh"
#include "obs/trace_span.hh"

namespace acdse
{

ServeOptions
ServeOptions::fromEnvironment()
{
    ServeOptions options;
    // ACDSE_SERVE_THREADS is a serving-specific override; when unset,
    // threads stays 0 and the service sizes itself with the shared
    // ThreadPool rule (ACDSE_THREADS, else hardware parallelism), the
    // same rule the campaign and the evaluator use.
    if (const char *value = std::getenv("ACDSE_SERVE_THREADS");
        value && *value) {
        options.threads = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_SERVE_THREADS", value));
    }
    return options;
}

PredictionService::PredictionService(ModelArtifact artifact,
                                     ServeOptions options)
    : artifact_(std::move(artifact)), options_(std::move(options)),
      pool_(options_.threads),
      batchStage_(registry_.stage("serve/batch")),
      chunkStage_(registry_.stage("serve/chunk")),
      pointsServed_(registry_.counter("serve/points")),
      batchPoints_(registry_.histogram("serve/batch-points")),
      queueWaitNs_(registry_.histogram("serve/queue-wait-ns"))
{
    ACDSE_CHECK(!artifact_.empty(),
                 "cannot serve an artifact with no predictors");
    for (const auto &entry : artifact_.entries()) {
        ACDSE_CHECK(entry.predictor.ready(),
                     "artifact predictor for ", metricName(entry.metric),
                     " has no fitted responses");
        // Validate width once here so the per-point predict path can
        // run on DCHECKs alone.
        ACDSE_CHECK(entry.predictor.featureDim() == kNumParams,
                    "artifact predictor for ", metricName(entry.metric),
                    " expects ", entry.predictor.featureDim(),
                    " features, queries carry ", kNumParams);
    }
    ACDSE_CHECK(options_.chunk > 0, "chunk size must be positive");
}

PredictionService
PredictionService::fromFile(const std::string &path, ServeOptions options)
{
    return PredictionService(loadArtifact(path), options);
}

void
PredictionService::computeRange(
    const std::vector<MicroarchConfig> &queries,
    std::vector<PredictionRow> &rows, std::size_t begin,
    std::size_t end) const
{
    // Assemble the chunk's feature matrix once (row-major, one row per
    // query) and run each metric's ensemble through its vectorised
    // batch kernel over the whole chunk, then scatter the contiguous
    // per-metric outputs into the rows. Bit-identical to the former
    // per-point predictFromFeatures loop at any chunk/thread count.
    const std::size_t n = end - begin;
    std::vector<double> features(n * kNumParams);
    std::vector<double> out(n);
    BatchPredictScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
        queries[begin + i].featuresInto(&features[i * kNumParams]);
        rows[begin + i].values.fill(
            std::numeric_limits<double>::quiet_NaN());
    }
    for (const auto &entry : artifact_.entries()) {
        entry.predictor.predictBatchFromFeatures(features.data(), n,
                                                 out.data(), scratch);
        const auto metric = static_cast<std::size_t>(entry.metric);
        for (std::size_t i = 0; i < n; ++i)
            rows[begin + i].values[metric] = out[i];
    }
}

std::vector<PredictionRow>
PredictionService::predict(const std::vector<MicroarchConfig> &queries)
{
    const std::uint64_t start = obs::kEnabled ? obs::nowNs() : 0;
    std::vector<PredictionRow> rows(queries.size());
    if (queries.empty())
        return rows;

    if (pool_.workers() == 0 || queries.size() <= options_.inlineBelow) {
        computeRange(queries, rows, 0, queries.size());
    } else {
        // Time spent waiting for the batch mutex is the service's
        // queueing latency: concurrent callers serialise here.
        const std::uint64_t lockStart =
            obs::kEnabled ? obs::nowNs() : 0;
        MutexLock batch_lock(batchMutex_);
        if constexpr (obs::kEnabled)
            queueWaitNs_.record(obs::nowNs() - lockStart);
        const std::size_t num_chunks =
            (queries.size() + options_.chunk - 1) / options_.chunk;
        // Chunks write disjoint row ranges, so the batch result is
        // identical at every thread count; parallelFor blocks until
        // the last chunk finished, so queries/rows never outlive the
        // workers touching them.
        pool_.parallelFor(0, num_chunks, [&](std::size_t chunk) {
            const obs::TraceSpan chunkSpan(chunkStage_);
            const std::size_t begin = chunk * options_.chunk;
            const std::size_t end =
                std::min(begin + options_.chunk, queries.size());
            computeRange(queries, rows, begin, end);
        });
    }

    if constexpr (obs::kEnabled)
        recordBatch(queries.size(), obs::nowNs() - start);
    return rows;
}

PredictionRow
PredictionService::predictOne(const MicroarchConfig &query)
{
    return predict({query}).front();
}

void
PredictionService::recordBatch(std::size_t points,
                               std::uint64_t elapsedNs)
{
    // The batch ran partly on pool workers, so no same-thread child
    // time can be attributed; record it directly on the stage.
    batchStage_.record(elapsedNs, 0);
    pointsServed_.add(points);
    batchPoints_.record(points);
    lastBatchNs_.store(elapsedNs, std::memory_order_relaxed);
    if (options_.statsEveryBatches != 0 &&
        !options_.statsPath.empty() &&
        batchStage_.spans().value() % options_.statsEveryBatches == 0)
        dumpStats();
}

ServiceStats
PredictionService::stats() const
{
    // Derived from the registry: exact, because Counter sums and the
    // histogram's min/max/sum fields are exact (only the bucket
    // boundaries are log-scaled).
    ServiceStats out;
    out.batches = batchStage_.spans().value();
    out.points = pointsServed_.value();
    out.totalMs =
        static_cast<double>(batchStage_.totalNs().value()) / 1e6;
    out.lastMs = static_cast<double>(
                     lastBatchNs_.load(std::memory_order_relaxed)) /
                 1e6;
    const obs::HistogramSnapshot spans = batchStage_.spanNs().read();
    out.minMs = static_cast<double>(spans.min) / 1e6;
    out.maxMs = static_cast<double>(spans.max) / 1e6;
    return out;
}

void
PredictionService::resetStats()
{
    registry_.reset();
    lastBatchNs_.store(0, std::memory_order_relaxed);
}

obs::Snapshot
PredictionService::statsSnapshot() const
{
    return registry_.snapshot();
}

void
PredictionService::dumpStats() const
{
    if (options_.statsPath.empty())
        return;
    obs::writeStatsFile(options_.statsPath, registry_.snapshot());
}

} // namespace acdse
