#include "serve/prediction_service.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/parse.hh"

namespace acdse
{

ServeOptions
ServeOptions::fromEnvironment()
{
    ServeOptions options;
    // ACDSE_SERVE_THREADS is a serving-specific override; when unset,
    // threads stays 0 and the service sizes itself with the shared
    // ThreadPool rule (ACDSE_THREADS, else hardware parallelism), the
    // same rule the campaign and the evaluator use.
    if (const char *value = std::getenv("ACDSE_SERVE_THREADS");
        value && *value) {
        options.threads = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_SERVE_THREADS", value));
    }
    return options;
}

PredictionService::PredictionService(ModelArtifact artifact,
                                     ServeOptions options)
    : artifact_(std::move(artifact)), options_(options),
      pool_(options.threads)
{
    ACDSE_CHECK(!artifact_.empty(),
                 "cannot serve an artifact with no predictors");
    for (const auto &entry : artifact_.entries()) {
        ACDSE_CHECK(entry.predictor.ready(),
                     "artifact predictor for ", metricName(entry.metric),
                     " has no fitted responses");
        // Validate width once here so the per-point predict path can
        // run on DCHECKs alone.
        ACDSE_CHECK(entry.predictor.featureDim() == kNumParams,
                    "artifact predictor for ", metricName(entry.metric),
                    " expects ", entry.predictor.featureDim(),
                    " features, queries carry ", kNumParams);
    }
    ACDSE_CHECK(options_.chunk > 0, "chunk size must be positive");
}

PredictionService
PredictionService::fromFile(const std::string &path, ServeOptions options)
{
    return PredictionService(loadArtifact(path), options);
}

void
PredictionService::computeRange(
    const std::vector<MicroarchConfig> &queries,
    std::vector<PredictionRow> &rows, std::size_t begin,
    std::size_t end) const
{
    // Assemble the chunk's feature matrix once (row-major, one row per
    // query) and run each metric's ensemble through its vectorised
    // batch kernel over the whole chunk, then scatter the contiguous
    // per-metric outputs into the rows. Bit-identical to the former
    // per-point predictFromFeatures loop at any chunk/thread count.
    const std::size_t n = end - begin;
    std::vector<double> features(n * kNumParams);
    std::vector<double> out(n);
    BatchPredictScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
        queries[begin + i].featuresInto(&features[i * kNumParams]);
        rows[begin + i].values.fill(
            std::numeric_limits<double>::quiet_NaN());
    }
    for (const auto &entry : artifact_.entries()) {
        entry.predictor.predictBatchFromFeatures(features.data(), n,
                                                 out.data(), scratch);
        const auto metric = static_cast<std::size_t>(entry.metric);
        for (std::size_t i = 0; i < n; ++i)
            rows[begin + i].values[metric] = out[i];
    }
}

std::vector<PredictionRow>
PredictionService::predict(const std::vector<MicroarchConfig> &queries)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<PredictionRow> rows(queries.size());
    if (queries.empty())
        return rows;

    if (pool_.workers() == 0 || queries.size() <= options_.inlineBelow) {
        computeRange(queries, rows, 0, queries.size());
    } else {
        std::lock_guard<std::mutex> batch_lock(batchMutex_);
        const std::size_t num_chunks =
            (queries.size() + options_.chunk - 1) / options_.chunk;
        // Chunks write disjoint row ranges, so the batch result is
        // identical at every thread count; parallelFor blocks until
        // the last chunk finished, so queries/rows never outlive the
        // workers touching them.
        pool_.parallelFor(0, num_chunks, [&](std::size_t chunk) {
            const std::size_t begin = chunk * options_.chunk;
            const std::size_t end =
                std::min(begin + options_.chunk, queries.size());
            computeRange(queries, rows, begin, end);
        });
    }

    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    recordBatch(queries.size(), elapsed_ms);
    return rows;
}

PredictionRow
PredictionService::predictOne(const MicroarchConfig &query)
{
    return predict({query}).front();
}

void
PredictionService::recordBatch(std::size_t points, double elapsed_ms)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.batches += 1;
    stats_.points += points;
    stats_.totalMs += elapsed_ms;
    stats_.lastMs = elapsed_ms;
    stats_.minMs = stats_.batches == 1
                       ? elapsed_ms
                       : std::min(stats_.minMs, elapsed_ms);
    stats_.maxMs = std::max(stats_.maxMs, elapsed_ms);
}

ServiceStats
PredictionService::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
PredictionService::resetStats()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_ = ServiceStats{};
}

} // namespace acdse
