#include "serve/prediction_service.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "base/simd.hh"
#include "obs/stats_export.hh"
#include "obs/trace_span.hh"

namespace acdse
{

namespace
{

/**
 * Idle polls the drainer spins through an empty ring before parking
 * on the condvar. Spinning keeps tail latency flat under steady load;
 * parking keeps an idle service off the scheduler.
 */
constexpr int kDrainSpinPolls = 256;

/** Bounded park interval; a lost wake-up costs at most this. */
constexpr std::uint64_t kDrainParkNs = 1'000'000; // 1 ms

} // namespace

ServeOptions
ServeOptions::fromEnvironment()
{
    ServeOptions options;
    // ACDSE_SERVE_THREADS is a serving-specific override; when unset,
    // threads stays 0 and the service sizes itself with the shared
    // ThreadPool rule (ACDSE_THREADS, else hardware parallelism), the
    // same rule the campaign and the evaluator use.
    if (const char *value = std::getenv("ACDSE_SERVE_THREADS");
        value && *value) {
        options.threads = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_SERVE_THREADS", value));
    }
    if (const char *value = std::getenv("ACDSE_SERVE_QUEUE");
        value && *value) {
        options.maxQueue = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_SERVE_QUEUE", value));
    }
    return options;
}

AsyncBatch::AsyncBatch(std::size_t capacity)
    : rows_(capacity), versions_(capacity, 0)
{
    ACDSE_CHECK(capacity > 0, "AsyncBatch needs a positive capacity");
    ACDSE_CHECK(capacity <= std::numeric_limits<std::uint32_t>::max(),
                "AsyncBatch capacity ", capacity, " overflows the ",
                "pending counter");
}

void
AsyncBatch::wait() const
{
    // The drainer only notifies when pending reaches zero, and zero is
    // the only value a waiter cares about, so the loop cannot miss its
    // wake-up; the acquire load pairs with the drainer's release
    // decrement and publishes the completed rows.
    std::uint32_t pending = pending_.load(std::memory_order_acquire);
    while (pending != 0) {
        pending_.wait(pending, std::memory_order_acquire);
        pending = pending_.load(std::memory_order_acquire);
    }
}

void
AsyncBatch::reset()
{
    ACDSE_CHECK(pending_.load(std::memory_order_acquire) == 0,
                "reset() with requests in flight; wait() first");
    submitted_ = 0;
    std::fill(versions_.begin(), versions_.end(), std::uint64_t{0});
}

PredictionService::PredictionService(ModelArtifact artifact,
                                     ServeOptions options)
    : options_(std::move(options)), pool_(options_.threads),
      batchStage_(registry_.stage("serve/batch")),
      chunkStage_(registry_.stage("serve/chunk")),
      drainStage_(registry_.stage("serve/drain")),
      pointsServed_(registry_.counter("serve/points")),
      requestsAccepted_(registry_.counter("serve/requests")),
      requestsShed_(registry_.counter("serve/shed")),
      batchPoints_(registry_.histogram("serve/batch-points")),
      queueWaitNs_(registry_.histogram("serve/queue-wait-ns")),
      requestLatencyNs_(registry_.histogram("serve/request-latency-ns")),
      latencyReservoir_(registry_.reservoir("serve/request-latency")),
      ring_(options_.maxQueue)
{
    ACDSE_CHECK(options_.chunk > 0, "chunk size must be positive");
    ACDSE_CHECK(options_.drainBatch > 0,
                "drain batch size must be positive");
    const TenantId tenant = models_.registerTenant("default");
    ACDSE_CHECK(tenant == kDefaultTenant,
                "default tenant must get id 0");
    models_.publish(kDefaultTenant, std::move(artifact));
    if (options_.startDrainer)
        drainer_ = std::thread([this] { drainLoop(); });
}

PredictionService::~PredictionService()
{
    stop_.store(true, std::memory_order_release);
    if (drainer_.joinable()) {
        {
            MutexLock lock(drainMutex_);
            drainCv_.notifyAll();
        }
        // drainLoop() drains the ring to empty after observing stop_,
        // so every accepted request completes before the join.
        drainer_.join();
    } else {
        // Manual-drain mode: complete what tests left queued so no
        // AsyncBatch outlives its rows with pending_ stuck non-zero.
        std::vector<ServeRequest> scratch(options_.drainBatch);
        while (true) {
            const std::size_t n =
                ring_.popInto(scratch.data(), scratch.size());
            if (n == 0)
                break;
            serveDrained(scratch.data(), n);
        }
    }
}

PredictionService
PredictionService::fromFile(const std::string &path, ServeOptions options)
{
    return PredictionService(loadArtifact(path), options);
}

std::shared_ptr<const ServedModel>
PredictionService::model(TenantId tenant) const
{
    return models_.table()->modelPtr(tenant);
}

std::vector<Metric>
PredictionService::metrics() const
{
    return model(kDefaultTenant)->artifact.metrics();
}

TenantId
PredictionService::registerTenant(const std::string &name)
{
    return models_.registerTenant(name);
}

TenantId
PredictionService::findTenant(const std::string &name) const
{
    return models_.findTenant(name);
}

std::uint64_t
PredictionService::publish(TenantId tenant, ModelArtifact artifact)
{
    return models_.publish(tenant, std::move(artifact));
}

void
PredictionService::computeRange(
    const ModelArtifact &artifact,
    const std::vector<MicroarchConfig> &queries,
    std::vector<PredictionRow> &rows, std::size_t begin,
    std::size_t end) const
{
    // Assemble the chunk's feature matrix once (row-major, one row per
    // query) and run each metric's ensemble through its vectorised
    // batch kernel over the whole chunk, then scatter the contiguous
    // per-metric outputs into the rows. Bit-identical to the former
    // per-point predictFromFeatures loop at any chunk/thread count.
    const std::size_t n = end - begin;
    std::vector<double> features(n * kNumParams);
    std::vector<double> out(n);
    BatchPredictScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
        queries[begin + i].featuresInto(&features[i * kNumParams]);
        rows[begin + i].values.fill(
            std::numeric_limits<double>::quiet_NaN());
    }
    for (const auto &entry : artifact.entries()) {
        entry.predictor.predictBatchFromFeatures(features.data(), n,
                                                 out.data(), scratch);
        const auto metric = static_cast<std::size_t>(entry.metric);
        for (std::size_t i = 0; i < n; ++i)
            rows[begin + i].values[metric] = out[i];
    }
}

std::vector<PredictionRow>
PredictionService::predict(const std::vector<MicroarchConfig> &queries)
{
    const std::uint64_t start = obs::kEnabled ? obs::nowNs() : 0;
    std::vector<PredictionRow> rows(queries.size());
    if (queries.empty())
        return rows;

    // Pin one model snapshot for the whole batch: a concurrent
    // publish() swaps the *next* batch, never splits this one.
    const std::shared_ptr<const ServedModel> served =
        model(kDefaultTenant);
    const ModelArtifact &artifact = served->artifact;

    if (pool_.workers() == 0 || queries.size() <= options_.inlineBelow) {
        computeRange(artifact, queries, rows, 0, queries.size());
    } else {
        // Time spent waiting for the batch mutex is the service's
        // queueing latency: concurrent callers serialise here.
        const std::uint64_t lockStart =
            obs::kEnabled ? obs::nowNs() : 0;
        MutexLock batch_lock(batchMutex_);
        if constexpr (obs::kEnabled)
            queueWaitNs_.record(obs::nowNs() - lockStart);
        const std::size_t num_chunks =
            (queries.size() + options_.chunk - 1) / options_.chunk;
        // Chunks write disjoint row ranges, so the batch result is
        // identical at every thread count; parallelFor blocks until
        // the last chunk finished, so queries/rows never outlive the
        // workers touching them.
        pool_.parallelFor(0, num_chunks, [&](std::size_t chunk) {
            const obs::TraceSpan chunkSpan(chunkStage_);
            const std::size_t begin = chunk * options_.chunk;
            const std::size_t end =
                std::min(begin + options_.chunk, queries.size());
            computeRange(artifact, queries, rows, begin, end);
        });
    }

    if constexpr (obs::kEnabled)
        recordBatch(queries.size(), obs::nowNs() - start);
    return rows;
}

PredictionRow
PredictionService::predictOne(const MicroarchConfig &query)
{
    return predict({query}).front();
}

SubmitStatus
PredictionService::submit(AsyncBatch &batch, TenantId tenant,
                          const MicroarchConfig &query)
{
    if (tenant >= models_.table()->tenantCount())
        return SubmitStatus::UnknownTenant;
    ACDSE_CHECK(batch.submitted_ < batch.capacity(),
                "AsyncBatch over capacity: wait() and reset() first");

    ServeRequest request;
    request.batch = &batch;
    request.index = static_cast<std::uint32_t>(batch.submitted_);
    request.tenant = tenant;
    request.enqueuedNs = obs::kEnabled ? obs::nowNs() : 0;
    request.config = query;

    // Raise pending before the push: the drainer may complete the
    // request before tryPush even returns, and the decrement must
    // never observe zero.
    batch.pending_.fetch_add(1, std::memory_order_relaxed);
    if (!ring_.tryPush(request)) {
        batch.pending_.fetch_sub(1, std::memory_order_relaxed);
        requestsShed_.add();
        return SubmitStatus::QueueFull;
    }
    batch.submitted_++;
    requestsAccepted_.add();

    // Only pay for the lock when the drainer actually parked; the
    // bounded park (kDrainParkNs) covers the race where it sets
    // sleeping_ after this load.
    if (sleeping_.load(std::memory_order_relaxed)) {
        MutexLock lock(drainMutex_);
        drainCv_.notifyOne();
    }
    return SubmitStatus::Accepted;
}

std::size_t
PredictionService::drainOnce()
{
    ACDSE_CHECK(!options_.startDrainer,
                "drainOnce() requires startDrainer=false; the drainer "
                "thread owns the consumer role otherwise");
    std::vector<ServeRequest> requests(options_.drainBatch);
    const std::size_t n =
        ring_.popInto(requests.data(), requests.size());
    if (n != 0)
        serveDrained(requests.data(), n);
    return n;
}

void
PredictionService::drainLoop()
{
    std::vector<ServeRequest> requests(options_.drainBatch);
    int idlePolls = 0;
    while (true) {
        const std::size_t n =
            ring_.popInto(requests.data(), requests.size());
        if (n != 0) {
            idlePolls = 0;
            serveDrained(requests.data(), n);
            continue;
        }
        if (stop_.load(std::memory_order_acquire)) {
            // Producers observed by tryPush before our last pop are
            // all drained (n == 0 above); new submits after stop_ are
            // the destructor's race to lose, and it joins us only
            // after setting stop_, so nothing accepted is stranded.
            return;
        }
        if (++idlePolls < kDrainSpinPolls)
            continue;
        // Park with a bounded deadline: sleeping_ tells producers to
        // nudge us, the deadline covers the set-after-check race.
        sleeping_.store(true, std::memory_order_relaxed);
        {
            MutexLock lock(drainMutex_);
            drainCv_.waitFor(drainMutex_, kDrainParkNs);
        }
        sleeping_.store(false, std::memory_order_relaxed);
        idlePolls = 0;
    }
}

obs::Counter &
PredictionService::tenantCounter(TenantId tenant)
{
    // Drainer-thread-only cache; registry interning is the slow path
    // taken once per tenant.
    if (tenant >= tenantPoints_.size())
        tenantPoints_.resize(tenant + 1, nullptr);
    if (tenantPoints_[tenant] == nullptr) {
        const std::vector<std::string> names = models_.tenantNames();
        ACDSE_CHECK(tenant < names.size(), "tenant ", tenant,
                    " has no registered name");
        tenantPoints_[tenant] = &registry_.counter(
            "serve/tenant/" + names[tenant] + "/points");
    }
    return *tenantPoints_[tenant];
}

void
PredictionService::serveDrained(ServeRequest *requests,
                                std::size_t count)
{
    const std::uint64_t start = obs::kEnabled ? obs::nowNs() : 0;

    // One acquire load pins the model epoch for every request in this
    // drain; the shared_ptr keeps superseded models alive until the
    // last such pin drops (serve/model_table.hh).
    const std::shared_ptr<const ModelTable> table = models_.table();

    // Group requests by tenant (stable counting sort by tenant id) so
    // each group runs its model's SIMD block kernels over contiguous
    // feature rows.
    std::vector<std::uint32_t> order(count);
    for (std::uint32_t i = 0; i < count; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return requests[a].tenant < requests[b].tenant;
                     });

    std::vector<double> features;
    std::vector<std::vector<double>> outs;
    std::vector<double> soa(kNumParams * simd::kLanes);
    BatchPredictScratch scratch;

    std::size_t groupBegin = 0;
    while (groupBegin < count) {
        const TenantId tenant = requests[order[groupBegin]].tenant;
        std::size_t groupEnd = groupBegin + 1;
        while (groupEnd < count &&
               requests[order[groupEnd]].tenant == tenant)
            ++groupEnd;
        const std::size_t n = groupEnd - groupBegin;
        const ServedModel *served = table->modelFor(tenant);

        if (served == nullptr) {
            // Registered tenant, nothing published yet: answer NaN
            // rows stamped version 0 rather than failing the request.
            for (std::size_t g = groupBegin; g < groupEnd; ++g) {
                const ServeRequest &req = requests[order[g]];
                req.batch->rows_[req.index].values.fill(
                    std::numeric_limits<double>::quiet_NaN());
                req.batch->versions_[req.index] = 0;
            }
        } else {
            features.resize(n * kNumParams);
            for (std::size_t i = 0; i < n; ++i) {
                const ServeRequest &req =
                    requests[order[groupBegin + i]];
                req.config.featuresInto(&features[i * kNumParams]);
                req.batch->rows_[req.index].values.fill(
                    std::numeric_limits<double>::quiet_NaN());
                req.batch->versions_[req.index] = served->version;
            }
            // Full SIMD blocks transpose to feature-major once,
            // shared across every metric's block kernel; the
            // remainder takes the ordinary batch path. Bit-identical
            // to predict() (the explorer uses the same tiling).
            const auto &entries = served->artifact.entries();
            outs.resize(entries.size());
            for (auto &metricOut : outs)
                metricOut.resize(n);
            const std::size_t full = n - n % simd::kLanes;
            for (std::size_t base = 0; base < full;
                 base += simd::kLanes) {
                simd::transposeBlock(features.data() +
                                         base * kNumParams,
                                     kNumParams, soa.data());
                for (std::size_t k = 0; k < entries.size(); ++k) {
                    entries[k].predictor.predictBlockSoaFromFeatures(
                        soa.data(), outs[k].data() + base, scratch);
                }
            }
            if (full < n) {
                for (std::size_t k = 0; k < entries.size(); ++k) {
                    entries[k].predictor.predictBatchFromFeatures(
                        features.data() + full * kNumParams, n - full,
                        outs[k].data() + full, scratch);
                }
            }
            for (std::size_t k = 0; k < entries.size(); ++k) {
                const auto metric =
                    static_cast<std::size_t>(entries[k].metric);
                for (std::size_t i = 0; i < n; ++i) {
                    const ServeRequest &req =
                        requests[order[groupBegin + i]];
                    req.batch->rows_[req.index].values[metric] =
                        outs[k][i];
                }
            }
        }

        if constexpr (obs::kEnabled)
            tenantCounter(tenant).add(n);
        groupBegin = groupEnd;
    }

    // Complete every request: the release decrement publishes the row
    // and version to the producer's acquire in AsyncBatch::wait().
    for (std::size_t i = 0; i < count; ++i) {
        const ServeRequest &req = requests[i];
        if constexpr (obs::kEnabled) {
            const std::uint64_t latency =
                obs::nowNs() - req.enqueuedNs;
            requestLatencyNs_.record(latency);
            latencyReservoir_.record(latency);
        }
        if (req.batch->pending_.fetch_sub(
                1, std::memory_order_release) == 1)
            req.batch->pending_.notify_all();
    }

    if constexpr (obs::kEnabled) {
        pointsServed_.add(count);
        // The drain ran entirely on this thread but interleaves with
        // popInto bookkeeping; record the stage directly (no
        // TraceSpan in the drain loop).
        drainStage_.record(obs::nowNs() - start, 0);
    }
}

void
PredictionService::recordBatch(std::size_t points,
                               std::uint64_t elapsedNs)
{
    // The batch ran partly on pool workers, so no same-thread child
    // time can be attributed; record it directly on the stage.
    batchStage_.record(elapsedNs, 0);
    pointsServed_.add(points);
    batchPoints_.record(points);
    lastBatchNs_.store(elapsedNs, std::memory_order_relaxed);
    if (options_.statsEveryBatches != 0 &&
        !options_.statsPath.empty() &&
        batchStage_.spans().value() % options_.statsEveryBatches == 0)
        dumpStats();
}

ServiceStats
PredictionService::stats() const
{
    // Derived from the registry: exact, because Counter sums and the
    // histogram's min/max/sum fields are exact (only the bucket
    // boundaries are log-scaled).
    ServiceStats out;
    out.batches = batchStage_.spans().value();
    out.points = pointsServed_.value();
    out.requests = requestsAccepted_.value();
    out.rejected = requestsShed_.value();
    out.totalMs =
        static_cast<double>(batchStage_.totalNs().value()) / 1e6;
    out.lastMs = static_cast<double>(
                     lastBatchNs_.load(std::memory_order_relaxed)) /
                 1e6;
    const obs::HistogramSnapshot spans = batchStage_.spanNs().read();
    out.minMs = static_cast<double>(spans.min) / 1e6;
    out.maxMs = static_cast<double>(spans.max) / 1e6;
    return out;
}

void
PredictionService::resetStats()
{
    registry_.reset();
    lastBatchNs_.store(0, std::memory_order_relaxed);
}

obs::Snapshot
PredictionService::statsSnapshot() const
{
    return registry_.snapshot();
}

double
PredictionService::requestLatencyQuantileMs(double q) const
{
    const obs::ReservoirSnapshot sample = latencyReservoir_.read();
    return static_cast<double>(sample.quantile(q)) / 1e6;
}

void
PredictionService::dumpStats() const
{
    if (options_.statsPath.empty())
        return;
    obs::writeStatsFile(options_.statsPath, registry_.snapshot());
}

} // namespace acdse
