#include "serve/prediction_service.hh"

#include <chrono>
#include <cstdlib>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/parse.hh"

namespace acdse
{

ServeOptions
ServeOptions::fromEnvironment()
{
    ServeOptions options;
    if (const char *value = std::getenv("ACDSE_SERVE_THREADS");
        value && *value) {
        options.threads = static_cast<std::size_t>(
            parseU64OrDie("ACDSE_SERVE_THREADS", value));
    }
    return options;
}

PredictionService::PredictionService(ModelArtifact artifact,
                                     ServeOptions options)
    : artifact_(std::move(artifact)), options_(options)
{
    ACDSE_CHECK(!artifact_.empty(),
                 "cannot serve an artifact with no predictors");
    for (const auto &entry : artifact_.entries()) {
        ACDSE_CHECK(entry.predictor.ready(),
                     "artifact predictor for ", metricName(entry.metric),
                     " has no fitted responses");
        // Validate width once here so the per-point predict path can
        // run on DCHECKs alone.
        ACDSE_CHECK(entry.predictor.featureDim() == kNumParams,
                    "artifact predictor for ", metricName(entry.metric),
                    " expects ", entry.predictor.featureDim(),
                    " features, queries carry ", kNumParams);
    }
    ACDSE_CHECK(options_.chunk > 0, "chunk size must be positive");

    std::size_t threads = options_.threads
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, threads);
    // The calling thread participates in every batch, so spawn one
    // fewer worker than the requested parallelism.
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

PredictionService
PredictionService::fromFile(const std::string &path, ServeOptions options)
{
    return PredictionService(loadArtifact(path), options);
}

PredictionService::~PredictionService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
PredictionService::computeRange(
    const std::vector<MicroarchConfig> &queries,
    std::vector<PredictionRow> &rows, std::size_t begin,
    std::size_t end) const
{
    // Build each query's feature vector once and share it across all
    // served metrics; the scratch buffers persist across the whole
    // range, so the per-point work is pure arithmetic.
    PredictScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
        PredictionRow &row = rows[i];
        row.values.fill(std::numeric_limits<double>::quiet_NaN());
        const std::vector<double> features = queries[i].asFeatureVector();
        for (const auto &entry : artifact_.entries()) {
            row.values[static_cast<std::size_t>(entry.metric)] =
                entry.predictor.predictFromFeatures(features, scratch);
        }
    }
}

std::size_t
PredictionService::drainChunks(const std::vector<MicroarchConfig> &queries,
                               std::vector<PredictionRow> &rows,
                               std::size_t num_chunks)
{
    std::size_t done = 0;
    for (;;) {
        const std::size_t chunk = nextChunk_.fetch_add(1);
        if (chunk >= num_chunks)
            return done;
        const std::size_t begin = chunk * options_.chunk;
        const std::size_t end =
            std::min(begin + options_.chunk, queries.size());
        computeRange(queries, rows, begin, end);
        ++done;
    }
}

void
PredictionService::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::vector<MicroarchConfig> *queries = nullptr;
        std::vector<PredictionRow> *rows = nullptr;
        std::size_t num_chunks = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            // A worker can wake after the batch it was notified for
            // has fully completed (the pointers are then already
            // cleared); there is nothing left to claim in that case.
            if (!batchQueries_ || !batchRows_)
                continue;
            queries = batchQueries_;
            rows = batchRows_;
            num_chunks = batchChunks_;
            // Register under the same lock that published the batch:
            // from here until the matching decrement below, predict()
            // must not return (its queries/rows would be destroyed out
            // from under the drain) and no later batch may reset
            // nextChunk_ (this worker's claims would then land on the
            // freed previous batch and corrupt the new batch's done
            // count).
            ++activeWorkers_;
        }
        const std::size_t done = drainChunks(*queries, *rows, num_chunks);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            chunksDone_ += done;
            ACDSE_DCHECK(activeWorkers_ > 0,
                         "worker finishing a batch it never joined");
            ACDSE_DCHECK(chunksDone_ <= batchChunks_,
                         "more chunks completed (", chunksDone_,
                         ") than the batch has (", batchChunks_, ")");
            --activeWorkers_;
            if (chunksDone_ == batchChunks_ && activeWorkers_ == 0)
                doneCv_.notify_all();
        }
    }
}

std::vector<PredictionRow>
PredictionService::predict(const std::vector<MicroarchConfig> &queries)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<PredictionRow> rows(queries.size());
    if (queries.empty())
        return rows;

    if (workers_.empty() || queries.size() <= options_.inlineBelow) {
        computeRange(queries, rows, 0, queries.size());
    } else {
        std::lock_guard<std::mutex> batch_lock(batchMutex_);
        const std::size_t num_chunks =
            (queries.size() + options_.chunk - 1) / options_.chunk;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ACDSE_CHECK(!batchQueries_ && !batchRows_ &&
                            activeWorkers_ == 0,
                        "batch published while the previous one is "
                        "still in flight");
            batchQueries_ = &queries;
            batchRows_ = &rows;
            batchChunks_ = num_chunks;
            chunksDone_ = 0;
            nextChunk_.store(0, std::memory_order_relaxed);
            ++generation_;
        }
        workCv_.notify_all();
        const std::size_t done = drainChunks(queries, rows, num_chunks);
        std::unique_lock<std::mutex> lock(mutex_);
        chunksDone_ += done;
        // Wait for every chunk AND for every registered worker to have
        // left the batch: a worker that copied the batch pointers but
        // has not claimed a chunk yet must not outlive queries/rows.
        doneCv_.wait(lock, [&] {
            return chunksDone_ == batchChunks_ && activeWorkers_ == 0;
        });
        batchQueries_ = nullptr;
        batchRows_ = nullptr;
    }

    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    recordBatch(queries.size(), elapsed_ms);
    return rows;
}

PredictionRow
PredictionService::predictOne(const MicroarchConfig &query)
{
    return predict({query}).front();
}

void
PredictionService::recordBatch(std::size_t points, double elapsed_ms)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.batches += 1;
    stats_.points += points;
    stats_.totalMs += elapsed_ms;
    stats_.lastMs = elapsed_ms;
    stats_.minMs = stats_.batches == 1
                       ? elapsed_ms
                       : std::min(stats_.minMs, elapsed_ms);
    stats_.maxMs = std::max(stats_.maxMs, elapsed_ms);
}

ServiceStats
PredictionService::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
PredictionService::resetStats()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_ = ServiceStats{};
}

} // namespace acdse
