/**
 * @file
 * The prediction server: batched design-space queries against a loaded
 * model artifact, executed on the shared work scheduler
 * (base/thread_pool).
 *
 * One query is a 13-parameter MicroarchConfig; the answer is the
 * predicted value of every metric the artifact carries (cycles,
 * energy, ED, EDD). Prediction is pure floating-point arithmetic over
 * the trained ANN ensemble -- microseconds per point -- so the service
 * splits each batch into fixed-size chunks and parallelFor()s them:
 * every chunk writes a disjoint slice of the result vector, which is
 * both lock-free and bit-deterministic at any thread count. Within a
 * chunk each metric's ensemble runs its vectorised batch kernel
 * (ArchitectureCentricPredictor::predictBatchFromFeatures) over all
 * chunk points at once -- one point per SIMD lane -- which is where
 * the per-point arithmetic cost actually drops.
 *
 * Per-batch latency and lifetime throughput counters are kept so a
 * deployment can watch the serving path (see ServiceStats and
 * bench/bench_serve_throughput.cc).
 *
 * Environment knobs:
 *  - ACDSE_SERVE_THREADS  serving threads; unset falls through to the
 *                         shared sizing rule (ACDSE_THREADS, else the
 *                         hardware parallelism)
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/microarch_config.hh"
#include "base/sync.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "serve/model_store.hh"
#include "sim/metrics.hh"

namespace acdse
{

/** Prediction-service tuning parameters. */
struct ServeOptions
{
    /**
     * Total serving parallelism; 0 resolves through
     * ThreadPool::resolveThreads (ACDSE_THREADS, else hardware).
     */
    std::size_t threads = 0;
    /**
     * Query points per work unit. Small enough to balance load across
     * workers, large enough that the per-chunk claim is amortised away.
     */
    std::size_t chunk = 64;
    /**
     * Batches at most this size are predicted inline on the calling
     * thread: waking the pool costs more than the work itself.
     */
    std::size_t inlineBelow = 128;

    /**
     * When non-empty, the service dumps its metrics (acdse-stats-v1,
     * see obs/stats_export.hh) to this path: every statsEveryBatches
     * batches if that is non-zero, and on every dumpStats() call.
     */
    std::string statsPath;

    /** Periodic dump cadence in batches; 0 disables periodic dumps. */
    std::size_t statsEveryBatches = 0;

    /** Defaults with any ACDSE_SERVE_* environment overrides applied. */
    static ServeOptions fromEnvironment();
};

/** Predictions for one query point, indexed by Metric. */
struct PredictionRow
{
    /** Predicted values; NaN for metrics absent from the artifact. */
    std::array<double, kNumMetrics> values;

    /** Value for one metric (NaN if the artifact lacks it). */
    double get(Metric metric) const
    {
        return values[static_cast<std::size_t>(metric)];
    }
};

/**
 * Snapshot of the service's serving counters, derived from the
 * service's private metrics registry (src/obs). With ACDSE_OBS=OFF the
 * instrumentation is compiled out and every field reads zero.
 */
struct ServiceStats
{
    std::uint64_t batches = 0;  //!< batches served
    std::uint64_t points = 0;   //!< query points served
    double totalMs = 0.0;       //!< summed batch latencies
    double lastMs = 0.0;        //!< latency of the most recent batch
    double minMs = 0.0;         //!< fastest batch so far
    double maxMs = 0.0;         //!< slowest batch so far

    /** Mean batch latency in milliseconds. */
    double meanMs() const
    {
        return batches ? totalMs / static_cast<double>(batches) : 0.0;
    }

    /** Lifetime throughput in predicted points per second. */
    double pointsPerSecond() const
    {
        return totalMs > 0.0
                   ? static_cast<double>(points) / (totalMs / 1000.0)
                   : 0.0;
    }
};

/**
 * A running prediction server over one model artifact.
 *
 * Thread model: the service owns a ThreadPool that parallelises
 * *within* one batch; concurrent predict() callers are serialised (the
 * artifact's models are shared read-only, so this is a simplicity
 * choice, not a safety one). Construction spins the pool up;
 * destruction drains and joins it.
 */
class PredictionService
{
  public:
    /** Serve an in-memory artifact. */
    explicit PredictionService(ModelArtifact artifact,
                               ServeOptions options =
                                   ServeOptions::fromEnvironment());

    /**
     * Load an artifact file and serve it.
     * @throws SerializationError if the file fails integrity checks.
     */
    static PredictionService fromFile(const std::string &path,
                                      ServeOptions options =
                                          ServeOptions::fromEnvironment());

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /** The artifact being served. */
    const ModelArtifact &artifact() const { return artifact_; }

    /** The metrics this service predicts. */
    std::vector<Metric> metrics() const { return artifact_.metrics(); }

    /** Number of pool workers (excluding the calling thread). */
    std::size_t poolThreads() const { return pool_.workers(); }

    /**
     * Predict every artifact metric for a batch of query points.
     * Returns one row per query, in order. Not reentrant from inside
     * its own batch (ACDSE_EXCLUDES: callers must not already hold
     * the batch lock).
     */
    std::vector<PredictionRow> predict(
        const std::vector<MicroarchConfig> &queries)
        ACDSE_EXCLUDES(batchMutex_);

    /** Predict a single point (counts as a batch of one). */
    PredictionRow predictOne(const MicroarchConfig &query);

    /** Snapshot the serving counters. */
    ServiceStats stats() const;

    /** Zero the serving counters (e.g. after a warm-up run). */
    void resetStats();

    /**
     * Full snapshot of the service's private metrics registry:
     * serve/batch and serve/chunk stages, serve/points counter,
     * serve/batch-points and serve/queue-wait-ns histograms. Callers
     * merge this with the global registry's snapshot for export.
     */
    obs::Snapshot statsSnapshot() const;

    /** Write statsSnapshot() to options.statsPath (no-op if unset). */
    void dumpStats() const;

  private:
    /** Predict queries[begin, end) into rows. */
    void computeRange(const std::vector<MicroarchConfig> &queries,
                      std::vector<PredictionRow> &rows, std::size_t begin,
                      std::size_t end) const;

    /** Fold one finished batch into the registry. */
    void recordBatch(std::size_t points, std::uint64_t elapsedNs);

    ModelArtifact artifact_;
    ServeOptions options_;
    ThreadPool pool_;

    // Serialises public predict() callers.
    Mutex batchMutex_;

    // Serving metrics: a private registry (declared before the
    // references into it) so per-service stats stay isolated from the
    // global registry and resettable.
    obs::Registry registry_;
    obs::Stage &batchStage_;
    obs::Stage &chunkStage_;
    obs::Counter &pointsServed_;
    obs::Histogram &batchPoints_;
    obs::Histogram &queueWaitNs_;
    std::atomic<std::uint64_t> lastBatchNs_{0};
};

} // namespace acdse
