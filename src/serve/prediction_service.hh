/**
 * @file
 * The prediction server: design-space queries against versioned model
 * artifacts, with two request paths and zero-downtime model swaps.
 *
 * One query is a 13-parameter MicroarchConfig; the answer is the
 * predicted value of every metric the serving artifact carries
 * (cycles, energy, ED, EDD), stamped with the model version that
 * produced it.
 *
 * Request paths:
 *
 *  - predict(): the synchronous batch path. The caller's batch is
 *    split into fixed-size chunks and parallelFor()d across the
 *    service's ThreadPool; every chunk writes a disjoint slice of the
 *    result vector, which is both lock-free and bit-deterministic at
 *    any thread count.
 *
 *  - submit()/AsyncBatch: the ingest path for many concurrent
 *    producers. Each request travels a bounded lock-free MPSC ring
 *    (serve/ring_buffer.hh) to a dedicated drainer thread that forms
 *    SIMD-sized batches and runs the vectorised block kernels
 *    (predictBlockSoaFromFeatures) -- bit-identical to predict() on
 *    the same model. A full ring fails submit() with
 *    SubmitStatus::QueueFull immediately (typed load-shedding, never
 *    unbounded queueing), counted under serve/shed.
 *
 * Hot swap: models live in a ModelRegistry (serve/model_table.hh).
 * publish() atomically replaces a tenant's model; batches in flight
 * finish on the snapshot they pinned, new batches see the new
 * version, and no request fails or blocks across the swap. Multiple
 * tenants map independently to models; per-tenant served-point
 * counters appear as serve/tenant/<name>/points.
 *
 * Per-batch latency, lifetime throughput and per-request latency
 * (log2 histogram + exact-quantile reservoir) are kept so a
 * deployment can watch the serving path (ServiceStats,
 * bench/bench_serve_latency.cc).
 *
 * Environment knobs:
 *  - ACDSE_SERVE_THREADS  serving threads; unset falls through to the
 *                         shared sizing rule (ACDSE_THREADS, else the
 *                         hardware parallelism)
 *  - ACDSE_SERVE_QUEUE    ingest ring capacity (rounded to a power of
 *                         two); unset keeps ServeOptions::maxQueue
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/microarch_config.hh"
#include "base/sync.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "serve/model_store.hh"
#include "serve/model_table.hh"
#include "serve/ring_buffer.hh"
#include "sim/metrics.hh"

namespace acdse
{

/** Prediction-service tuning parameters. */
struct ServeOptions
{
    /**
     * Total serving parallelism; 0 resolves through
     * ThreadPool::resolveThreads (ACDSE_THREADS, else hardware).
     */
    std::size_t threads = 0;
    /**
     * Query points per work unit. Small enough to balance load across
     * workers, large enough that the per-chunk claim is amortised away.
     */
    std::size_t chunk = 64;
    /**
     * Batches at most this size are predicted inline on the calling
     * thread: waking the pool costs more than the work itself.
     */
    std::size_t inlineBelow = 128;

    /**
     * Ingest ring capacity in requests (rounded up to a power of
     * two). A full ring rejects submit() with QueueFull -- size it
     * for the burst you want to absorb, not the backlog you want to
     * hide.
     */
    std::size_t maxQueue = std::size_t{1} << 14;

    /** Most requests the drainer folds into one prediction batch. */
    std::size_t drainBatch = 256;

    /**
     * Spin the drainer thread up on construction. Tests that need a
     * deterministic ingest schedule (e.g. proving QueueFull fires)
     * set this false and pump the queue with drainOnce().
     */
    bool startDrainer = true;

    /**
     * When non-empty, the service dumps its metrics (acdse-stats-v1,
     * see obs/stats_export.hh) to this path: every statsEveryBatches
     * batches if that is non-zero, and on every dumpStats() call.
     */
    std::string statsPath;

    /** Periodic dump cadence in batches; 0 disables periodic dumps. */
    std::size_t statsEveryBatches = 0;

    /** Defaults with any ACDSE_SERVE_* environment overrides applied. */
    static ServeOptions fromEnvironment();
};

/** Predictions for one query point, indexed by Metric. */
struct PredictionRow
{
    /** Predicted values; NaN for metrics absent from the artifact. */
    std::array<double, kNumMetrics> values;

    /** Value for one metric (NaN if the artifact lacks it). */
    double get(Metric metric) const
    {
        return values[static_cast<std::size_t>(metric)];
    }
};

/** Outcome of one submit() call (the async ingest path). */
enum class SubmitStatus
{
    Accepted,      //!< enqueued; the row arrives via AsyncBatch::wait
    QueueFull,     //!< ring full: request shed, nothing enqueued
    UnknownTenant, //!< tenant id was never registered
};

class PredictionService;

/**
 * The completion handle for one producer's in-flight requests on the
 * async path: the producer submit()s up to capacity() requests
 * against it, wait()s, then reads rows() and versions().
 *
 * Thread model: one producer per batch. submit() bookkeeping on the
 * batch is deliberately unsynchronised between producers (each
 * producer owns its own AsyncBatch); completion travels from the
 * drainer with release/acquire on the pending count, so after wait()
 * returns every row and version stamp is visible. A batch must not be
 * destroyed with requests in flight (wait() first); it may be
 * reset() and reused.
 */
class AsyncBatch
{
  public:
    /** @param capacity most requests this handle can carry at once. */
    explicit AsyncBatch(std::size_t capacity);

    AsyncBatch(const AsyncBatch &) = delete;
    AsyncBatch &operator=(const AsyncBatch &) = delete;

    /** Most requests this handle can carry between resets. */
    std::size_t capacity() const { return rows_.size(); }

    /** Requests accepted against this handle since the last reset. */
    std::size_t submitted() const { return submitted_; }

    /** Requests accepted but not yet completed by the drainer. */
    std::size_t inFlight() const
    {
        return pending_.load(std::memory_order_acquire);
    }

    /** Block until every accepted request has completed. */
    void wait() const;

    /**
     * Result rows, indexed by submission order. Valid for indices
     * < submitted() once wait() returned.
     */
    const std::vector<PredictionRow> &rows() const { return rows_; }

    /** The model version that served each row (0 = no model). */
    const std::vector<std::uint64_t> &versions() const
    {
        return versions_;
    }

    /** Forget completed results and start a fresh round of submits. */
    void reset();

  private:
    friend class PredictionService;

    std::vector<PredictionRow> rows_;
    std::vector<std::uint64_t> versions_;

    /** Producer-side cursor: next row index to hand out. */
    std::size_t submitted_ = 0;

    /**
     * Requests enqueued but not yet completed. The drainer's final
     * fetch_sub(release) pairs with the waiter's acquire loads, which
     * is what publishes rows_/versions_ back to the producer.
     */
    std::atomic<std::uint32_t> pending_{0};
};

/**
 * One queued request travelling the ingest ring from a producer
 * thread to the drainer.
 */
struct ServeRequest
{
    AsyncBatch *batch = nullptr; //!< completion handle
    std::uint32_t index = 0;     //!< row slot within the batch
    TenantId tenant = 0;         //!< model routing key
    std::uint64_t enqueuedNs = 0; //!< submit timestamp (latency)
    MicroarchConfig config{};    //!< the query point
};

/**
 * Snapshot of the service's serving counters, derived from the
 * service's private metrics registry (src/obs). With ACDSE_OBS=OFF the
 * instrumentation is compiled out and every field reads zero.
 */
struct ServiceStats
{
    std::uint64_t batches = 0;  //!< batches served
    std::uint64_t points = 0;   //!< query points served
    std::uint64_t requests = 0; //!< async requests accepted
    std::uint64_t rejected = 0; //!< async requests shed (QueueFull)
    double totalMs = 0.0;       //!< summed batch latencies
    double lastMs = 0.0;        //!< latency of the most recent batch
    double minMs = 0.0;         //!< fastest batch so far
    double maxMs = 0.0;         //!< slowest batch so far

    /** Mean batch latency in milliseconds. */
    double meanMs() const
    {
        return batches ? totalMs / static_cast<double>(batches) : 0.0;
    }

    /** Lifetime throughput in predicted points per second. */
    double pointsPerSecond() const
    {
        return totalMs > 0.0
                   ? static_cast<double>(points) / (totalMs / 1000.0)
                   : 0.0;
    }
};

/**
 * A running prediction server over versioned, hot-swappable model
 * artifacts.
 *
 * Thread model: the service owns a ThreadPool that parallelises
 * *within* one predict() batch; concurrent predict() callers are
 * serialised on batchMutex_ (a simplicity choice -- the artifacts are
 * shared read-only). submit() is safe from any number of threads
 * concurrently with everything else, including publish(). The drainer
 * thread is the ring's single consumer; destruction stops it, drains
 * the ring to completion (no accepted request is ever dropped) and
 * joins.
 */
class PredictionService
{
  public:
    /** Serve an in-memory artifact (published as the default tenant). */
    explicit PredictionService(ModelArtifact artifact,
                               ServeOptions options =
                                   ServeOptions::fromEnvironment());

    /**
     * Load an artifact file and serve it.
     * @throws SerializationError if the file fails integrity checks.
     */
    static PredictionService fromFile(const std::string &path,
                                      ServeOptions options =
                                          ServeOptions::fromEnvironment());

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    ~PredictionService();

    /**
     * The model currently serving @p tenant (never null for the
     * default tenant; null for a registered tenant with no publish
     * yet). The returned epoch snapshot stays valid -- and
     * bit-stable -- however many publishes happen after it.
     */
    std::shared_ptr<const ServedModel>
    model(TenantId tenant = kDefaultTenant) const;

    /** The metrics the default tenant's model predicts. */
    std::vector<Metric> metrics() const;

    /** Register a tenant (idempotent by name); see ModelRegistry. */
    TenantId registerTenant(const std::string &name);

    /** The id for @p name, or ModelRegistry::kInvalidTenant. */
    TenantId findTenant(const std::string &name) const;

    /**
     * Hot-swap @p tenant's model. Returns the new registry-global
     * version. In-flight batches finish on the model they pinned; no
     * request fails or blocks. Panics on an invalid artifact.
     */
    std::uint64_t publish(TenantId tenant, ModelArtifact artifact);

    /** publish() to the default tenant. */
    std::uint64_t publish(ModelArtifact artifact)
    {
        return publish(kDefaultTenant, std::move(artifact));
    }

    /** The most recently assigned model version. */
    std::uint64_t currentVersion() const
    {
        return models_.currentVersion();
    }

    /** Number of pool workers (excluding the calling thread). */
    std::size_t poolThreads() const { return pool_.workers(); }

    /** Ingest ring capacity (power of two; see ServeOptions). */
    std::size_t queueCapacity() const { return ring_.capacity(); }

    /**
     * Predict every default-tenant metric for a batch of query
     * points; returns one row per query, in order, served from one
     * model snapshot (a publish() during the batch takes effect on
     * the next one). Not reentrant from inside its own batch
     * (ACDSE_EXCLUDES: callers must not already hold the batch lock).
     */
    std::vector<PredictionRow> predict(
        const std::vector<MicroarchConfig> &queries)
        ACDSE_EXCLUDES(batchMutex_);

    /** Predict a single point (counts as a batch of one). */
    PredictionRow predictOne(const MicroarchConfig &query);

    /**
     * Enqueue one query on the async ingest path. On Accepted the
     * result lands in @p batch at row index batch.submitted()-1 once
     * the drainer completes it (AsyncBatch::wait). QueueFull and
     * UnknownTenant reject without blocking and leave @p batch
     * unchanged. Safe from any thread; one producer per AsyncBatch.
     */
    SubmitStatus submit(AsyncBatch &batch, TenantId tenant,
                        const MicroarchConfig &query);

    /** submit() for the default tenant. */
    SubmitStatus submit(AsyncBatch &batch, const MicroarchConfig &query)
    {
        return submit(batch, kDefaultTenant, query);
    }

    /**
     * Drain up to options.drainBatch queued requests on the calling
     * thread; returns the number served. Only legal with
     * startDrainer=false (CHECKed): it exists so tests can pump the
     * ingest path deterministically.
     */
    std::size_t drainOnce();

    /** Snapshot the serving counters. */
    ServiceStats stats() const;

    /** Zero the serving counters (e.g. after a warm-up run). */
    void resetStats();

    /**
     * Full snapshot of the service's private metrics registry:
     * serve/batch, serve/chunk and serve/drain stages, serve/points
     * and per-tenant counters, request-latency histogram + reservoir.
     * Callers merge this with the global registry's snapshot for
     * export.
     */
    obs::Snapshot statsSnapshot() const;

    /**
     * Exact per-request latency quantile in milliseconds from the
     * async path's reservoir (0 when no async requests were served or
     * ACDSE_OBS=OFF). @p q in [0, 1].
     */
    double requestLatencyQuantileMs(double q) const;

    /** Write statsSnapshot() to options.statsPath (no-op if unset). */
    void dumpStats() const;

  private:
    /** Predict queries[begin, end) into rows with @p artifact. */
    void computeRange(const ModelArtifact &artifact,
                      const std::vector<MicroarchConfig> &queries,
                      std::vector<PredictionRow> &rows,
                      std::size_t begin, std::size_t end) const;

    /** Fold one finished batch into the registry. */
    void recordBatch(std::size_t points, std::uint64_t elapsedNs);

    /** The drainer thread: pop, batch, predict, complete, repeat. */
    void drainLoop();

    /** Serve @p count drained requests against the current table. */
    void serveDrained(ServeRequest *requests, std::size_t count);

    /** Drainer-side cache of the per-tenant served-point counters. */
    obs::Counter &tenantCounter(TenantId tenant);

    ServeOptions options_;
    ModelRegistry models_;
    ThreadPool pool_;

    // Serialises public predict() callers.
    Mutex batchMutex_;

    // Serving metrics: a private registry (declared before the
    // references into it) so per-service stats stay isolated from the
    // global registry and resettable.
    obs::Registry registry_;
    obs::Stage &batchStage_;
    obs::Stage &chunkStage_;
    obs::Stage &drainStage_;
    obs::Counter &pointsServed_;
    obs::Counter &requestsAccepted_;
    obs::Counter &requestsShed_;
    obs::Histogram &batchPoints_;
    obs::Histogram &queueWaitNs_;
    obs::Histogram &requestLatencyNs_;
    obs::Reservoir &latencyReservoir_;
    std::atomic<std::uint64_t> lastBatchNs_{0};

    // The async ingest path: producers push, the drainer pops.
    MpscRing<ServeRequest> ring_;
    std::atomic<bool> stop_{false};

    /**
     * Set by the drainer just before parking on drainCv_; submit()
     * only takes the wake-up lock when it observes the flag, so the
     * steady-state producer path stays lock-free. The park is bounded
     * (CondVar::waitFor), so a lost wake-up costs one deadline, never
     * a hang.
     */
    std::atomic<bool> sleeping_{false};
    Mutex drainMutex_;
    CondVar drainCv_;

    /**
     * Drainer-thread-only: tenant id -> interned per-tenant counter.
     * Not guarded -- single-thread access by construction (the
     * drainer, or the drainOnce() caller when startDrainer=false).
     */
    std::vector<obs::Counter *> tenantPoints_;

    std::thread drainer_;
};

} // namespace acdse
