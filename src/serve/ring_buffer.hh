/**
 * @file
 * The serving front-end's ingest queue: a bounded, cache-line-aware
 * multi-producer / single-consumer ring buffer.
 *
 * Producers (request threads) enqueue with tryPush(): a short CAS race
 * on the enqueue cursor plus one release store into a claimed slot --
 * no locks, no waiting on the consumer, and a *full* ring fails the
 * push immediately instead of blocking, which is what lets the
 * prediction service turn overload into typed load-shedding
 * (SubmitStatus::QueueFull) rather than unbounded queueing delay.
 * The single consumer (the service's drainer thread) pops in batches
 * sized for the SIMD prediction kernels.
 *
 * Layout is the classic bounded sequence-number design (Vyukov): every
 * slot carries its own sequence counter, so a producer can tell
 * "free", "full" and "taken by a racing producer" apart from one
 * acquire load, and producers never write a cursor the consumer reads
 * on its hot path. Slots and cursors are alignas(kCacheLine) so a
 * producer claiming slot i and the consumer releasing slot j never
 * false-share a line (SNIPPETS.md §1: 64-byte lines, power-of-two
 * capacities).
 *
 * Memory ordering contract:
 *  - tryPush publishes the value with a release store of the slot
 *    sequence; popInto's acquire load of the same sequence is the
 *    only synchronisation a request needs to travel threads.
 *  - The cursors themselves are relaxed: they only arbitrate claims,
 *    never publish data.
 */

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/check.hh"

namespace acdse
{

/** x86-64 cache line size (SNIPPETS.md §1). */
inline constexpr std::size_t kCacheLine = 64;

/** Smallest / largest accepted ring capacities (powers of two). */
inline constexpr std::size_t kMinRingCapacity = std::size_t{1} << 3;
inline constexpr std::size_t kMaxRingCapacity = std::size_t{1} << 24;

/**
 * Bounded lock-free MPSC ring buffer of trivially-movable values.
 *
 * Thread model: any number of producers may call tryPush()
 * concurrently; exactly one thread at a time may call popInto() /
 * approxSize(). The consumer role may migrate between threads as long
 * as the hand-off happens-before the next pop (the service joins its
 * drainer before draining on the destructor thread).
 */
template <typename T>
class MpscRing
{
  public:
    /**
     * @param capacity slot count; rounded up to a power of two and
     *        clamped into [kMinRingCapacity, kMaxRingCapacity].
     */
    explicit MpscRing(std::size_t capacity)
        : capacity_(roundCapacity(capacity)), mask_(capacity_ - 1),
          slots_(std::make_unique<Slot[]>(capacity_))
    {
        for (std::size_t i = 0; i < capacity_; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Slot count (power of two). */
    std::size_t capacity() const noexcept { return capacity_; }

    /**
     * Enqueue one value; returns false -- without blocking or
     * spinning on the consumer -- when the ring is full. Safe from
     * any number of threads.
     */
    bool tryPush(T value) noexcept
    {
        std::uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::uint64_t seq =
                slot.seq.load(std::memory_order_acquire);
            const std::int64_t dif = static_cast<std::int64_t>(seq) -
                                     static_cast<std::int64_t>(pos);
            if (dif == 0) {
                // Slot is free for ticket `pos`: claim it against the
                // other producers, then publish.
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = std::move(value);
                    slot.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
                // CAS failure reloaded pos; retry with the new ticket.
            } else if (dif < 0) {
                // The consumer has not freed this slot since the last
                // lap: the ring is full *now*. Shedding beats lying.
                return false;
            } else {
                // A racing producer claimed `pos`; chase the cursor.
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue up to @p max values into @p out; returns the count
     * (0 when empty). Single consumer only.
     */
    std::size_t popInto(T *out, std::size_t max) noexcept
    {
        std::size_t popped = 0;
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        while (popped < max) {
            Slot &slot = slots_[pos & mask_];
            const std::uint64_t seq =
                slot.seq.load(std::memory_order_acquire);
            if (seq != pos + 1)
                break; // next slot not yet published: ring drained
            out[popped++] = std::move(slot.value);
            // Free the slot for the producers' next lap.
            slot.seq.store(pos + capacity_,
                           std::memory_order_release);
            ++pos;
        }
        if (popped)
            tail_.store(pos, std::memory_order_relaxed);
        return popped;
    }

    /**
     * Instantaneous occupancy estimate (exact when quiescent); for
     * gauges and tests, not for flow-control decisions.
     */
    std::size_t approxSize() const noexcept
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        return head >= tail ? static_cast<std::size_t>(head - tail)
                            : 0;
    }

  private:
    struct alignas(kCacheLine) Slot
    {
        std::atomic<std::uint64_t> seq{0};
        T value{};
    };

    static std::size_t roundCapacity(std::size_t requested)
    {
        ACDSE_CHECK(requested <= kMaxRingCapacity,
                    "ring capacity ", requested, " exceeds ",
                    kMaxRingCapacity);
        const std::size_t clamped =
            requested < kMinRingCapacity ? kMinRingCapacity
                                         : requested;
        return std::bit_ceil(clamped);
    }

    const std::size_t capacity_;
    const std::size_t mask_;
    std::unique_ptr<Slot[]> slots_;

    /** Producers' claim cursor (next ticket to hand out). */
    alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};

    /** Consumer's read cursor (next slot to drain). */
    alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
};

} // namespace acdse
