#include "sim/batch.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/core_ops.hh"
#include "trace/simpoint.hh"

namespace acdse
{

DecodedTrace::DecodedTrace(const Trace &trace) : source_(&trace)
{
    ops_.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceInstruction &inst = trace[i];
        Op op;
        op.pc = inst.pc;
        op.addrOrTarget =
            inst.cls == InstClass::Branch ? inst.target : inst.addr;
        op.srcDist1 = inst.srcDist1;
        op.srcDist2 = inst.srcDist2;
        const int latency = execLatency(inst.cls);
        ACDSE_CHECK(latency >= 1 && latency <= 255,
                     "execution latency does not fit the decode field");
        op.latency = static_cast<std::uint8_t>(latency);
        op.pool = static_cast<std::uint8_t>(fuPoolFor(inst.cls));
        op.fuEvent = static_cast<std::uint8_t>(fuEnergyFor(inst.cls));
        std::uint8_t flags = 0;
        switch (inst.cls) {
          case InstClass::Load: flags |= kOpLoad; break;
          case InstClass::Store: flags |= kOpStore; break;
          case InstClass::FpDiv: flags |= kOpFpDiv; break;
          case InstClass::Branch:
            flags |= kOpBranch;
            if (inst.conditional)
                flags |= kOpCond;
            if (inst.taken)
                flags |= kOpTaken;
            break;
          default: break;
        }
        if (producesResult(inst.cls))
            flags |= kOpProduces;
        op.flags = flags;
        ops_.push_back(op);
    }
}

#if !defined(ACDSE_NO_SIM_BATCH)

namespace
{

/**
 * Cycles one lane advances before rotating to the next. With the
 * idle-cycle skip a quantum collapses to a few hundred executed
 * iterations, so a large value amortises swapping lane state in and
 * out of registers while lanes still stay within a few KB of each
 * other in the decoded trace and share its working set.
 */
constexpr std::uint64_t kLaneQuantum = 16384;

/**
 * The lane engine: up to kSimLanes one-config pipelines advancing
 * through one decoded trace in interleaved quanta. Per-lane hot state
 * is kept struct-of-arrays in cache-line-aligned members; the bulky
 * storage (ROB/IQ/ring vectors, cache line arrays, predictor tables)
 * lives in the caller's SimScratch and is reconfigured per batch.
 *
 * stepLane() is a faithful transcription of the scalar pipeline loop
 * in OooCore::run() -- every structural limit, stall and energy event
 * in the same order. Any edit there needs a mirror here; the
 * bit-identity suite (tests/test_batch_sim.cc) catches drift.
 *
 * On top of the transcription sit two provably invisible shortcuts,
 * the source of the batched path's speedup:
 *
 *  - Idle-cycle skipping: a cycle in which no stage changed any
 *    pipeline, cache or predictor state replays identically until the
 *    next scheduled event (a writeback, a fetch-queue arrival, a
 *    block expiring, a branch resolving). The skip block jumps there
 *    in one step and credits the per-cycle stall counters -- the only
 *    observable effect of the skipped cycles -- in bulk.
 *
 *  - An operand wake cache (CoreScratch::iqSleep): an IQ entry whose
 *    operands provably cannot be ready before a known cycle is
 *    skipped by the issue scan without touching its producers until
 *    that bound expires. Bounds propagate down dependency chains by
 *    publishing each blocked entry's earliest-result cycle through
 *    the readyCycle field of its still-unissued ROB slot, and a
 *    queue that is entirely asleep skips its scan outright. All
 *    bounds are conservative, so they can only stop the idle skip
 *    early, never carry it past an event.
 */
class BatchSimulator
{
  public:
    BatchSimulator(std::span<const MicroarchConfig> configs,
                   const DecodedTrace &trace, SimScratch &scratch)
        : trace_(trace), lanes_(configs.size())
    {
        ACDSE_CHECK(lanes_ >= 1 && lanes_ <= kSimLanes,
                     "lane group larger than kSimLanes");
        const FixedParams &fp = fixedParams();
        lineMask_ = ~static_cast<std::uint64_t>(fp.l1LineBytes - 1);
        frontEndStages_ = static_cast<std::uint64_t>(fp.frontEndStages);
        redirectPenalty_ =
            static_cast<std::uint64_t>(fp.mispredictRedirect);
        fpDivLatency_ = static_cast<std::uint64_t>(fp.fpDivLatency);
        for (std::size_t l = 0; l < lanes_; ++l) {
            const MicroarchConfig &config = configs[l];
            SimScratch::Lane &lane = scratch.lanes[l];
            if (lane.energy)
                lane.energy->reconfigure(config);
            else
                lane.energy.emplace(config);
            if (lane.hierarchy)
                lane.hierarchy->reconfigure(config);
            else
                lane.hierarchy.emplace(config);
            if (lane.bpred)
                lane.bpred->reconfigure(config.bpredEntries());
            else
                lane.bpred.emplace(config.bpredEntries());
            if (lane.btb)
                lane.btb->reconfigure(config.btbEntries());
            else
                lane.btb.emplace(config.btbEntries());
            energy_[l] = &*lane.energy;
            hierarchy_[l] = &*lane.hierarchy;
            bpred_[l] = &*lane.bpred;
            btb_[l] = &*lane.btb;
            core_[l] = &lane.core;

            width_[l] = static_cast<std::size_t>(config.width());
            robSize_[l] = static_cast<std::size_t>(config.robSize());
            iqSize_[l] = static_cast<std::size_t>(config.iqSize());
            lsqSize_[l] = static_cast<std::size_t>(config.lsqSize());
            rdPorts_[l] = config.rfReadPorts();
            wrPorts_[l] = config.rfWritePorts();
            maxBranches_[l] =
                static_cast<std::size_t>(config.maxBranches());
            const FunctionalUnitCounts fus =
                functionalUnitsForWidth(config.width());
            fuCounts_[l] = {fus.intAlu, fus.intMul, fus.fpAlu,
                            fus.fpMulDiv};
            numDividers_[l] = static_cast<std::size_t>(fus.fpMulDiv);
            renameRegs_[l] = static_cast<std::size_t>(
                std::max(1, config.rfSize() - fp.archRegs));
            fqCap_[l] =
                width_[l] *
                (static_cast<std::size_t>(fp.frontEndStages) + 2);
        }
    }

    /** Occupied lanes in this group. */
    std::size_t lanes() const { return lanes_; }

    /** Lane @p l's energy accumulator. */
    EnergyModel &energy(std::size_t l) { return *energy_[l]; }

    /**
     * Timed run of instructions [begin, end) on every lane; writes one
     * CoreStats per lane into @p stats. Mirrors OooCore::run() exactly.
     */
    void
    run(std::size_t begin, std::size_t end, CoreStats *stats)
    {
        end = std::min(end, trace_.size());
        ACDSE_CHECK(begin < end, "empty simulation interval");
        runBegin_ = begin;
        runEnd_ = end;
        cycleLimit_ =
            static_cast<std::uint64_t>(end - begin) * 600 + 200000;
        stats_ = stats;

        for (std::size_t l = 0; l < lanes_; ++l) {
            stats[l] = CoreStats{};
            il1Miss0_[l] = hierarchy_[l]->il1().misses();
            dl1Miss0_[l] = hierarchy_[l]->dl1().misses();
            l2Miss0_[l] = hierarchy_[l]->l2().misses();
            memEvents_[l] = HierarchyAccessEvents{};

            // The ROB array is padded to a power of two so slot lookup
            // is an AND instead of an integer division. Any injective
            // mapping of the <= robSize in-flight instructions to
            // distinct slots gives identical results; occupancy is
            // still limited by robSize below.
            std::size_t rob_alloc = 1;
            while (rob_alloc < robSize_[l])
                rob_alloc <<= 1;
            robMask_[l] = rob_alloc - 1;
            CoreScratch &cs = *core_[l];
            cs.rob.assign(rob_alloc, CoreScratch::RobSlot{});
            cs.fetchQueue.clear();
            cs.iq.clear();
            cs.iq.reserve(iqSize_[l]);
            cs.iqSleep.clear();
            cs.iqSleep.reserve(iqSize_[l]);
            cs.wbRing.assign(kCoreRingSize, 0);
            cs.resolveRing.assign(kCoreRingSize, 0);
            cs.divBusy.assign(numDividers_[l], 0);

            commitIdx_[l] = begin;
            dispatchIdx_[l] = begin;
            fetchIdx_[l] = begin;
            robCount_[l] = 0;
            lsqCount_[l] = 0;
            regsUsed_[l] = 0;
            fqHead_[l] = 0;
            cycle_[l] = 0;
            fetchBlockedUntil_[l] = 0;
            fetchWaitBranch_[l] = 0;
            waitBranchIdx_[l] = 0;
            inflightBranches_[l] = 0;
            lastFetchLine_[l] =
                std::numeric_limits<std::uint64_t>::max();
        }

        std::size_t remaining = lanes_;
        std::array<std::uint8_t, kSimLanes> active{};
        for (std::size_t l = 0; l < lanes_; ++l)
            active[l] = 1;
        while (remaining > 0) {
            for (std::size_t l = 0; l < lanes_; ++l) {
                if (!active[l])
                    continue;
                if (stepLane(l, kLaneQuantum)) {
                    active[l] = 0;
                    --remaining;
                    finishLane(l);
                }
            }
        }
    }

    /**
     * Functional warming of instructions [begin, end) on every lane.
     * Mirrors OooCore::warm() exactly (per-call fetch-line tracking).
     */
    void
    warm(std::size_t begin, std::size_t end)
    {
        end = std::min(end, trace_.size());
        const DecodedTrace::Op *ops = trace_.ops();
        HierarchyAccessEvents discard;
        // The line sequence is config-independent, so one tracker
        // serves every lane (each still performs its own accesses).
        std::uint64_t last_line =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = begin; i < end; ++i) {
            const DecodedTrace::Op &op = ops[i];
            const std::uint64_t line = op.pc & lineMask_;
            if (line != last_line) {
                for (std::size_t l = 0; l < lanes_; ++l)
                    hierarchy_[l]->instAccess(op.pc, discard);
                last_line = line;
            }
            if (op.flags & DecodedTrace::kOpMem) {
                const bool write =
                    (op.flags & DecodedTrace::kOpStore) != 0;
                for (std::size_t l = 0; l < lanes_; ++l) {
                    hierarchy_[l]->dataAccess(op.addrOrTarget, write,
                                              discard);
                }
            } else if (op.flags & DecodedTrace::kOpBranch) {
                const bool taken =
                    (op.flags & DecodedTrace::kOpTaken) != 0;
                for (std::size_t l = 0; l < lanes_; ++l) {
                    bpred_[l]->update(op.pc, taken);
                    if (taken && !btb_[l]->lookup(op.pc))
                        btb_[l]->update(op.pc, op.addrOrTarget);
                }
            }
        }
    }

  private:
    /**
     * Advance lane @p l by up to @p quantum cycles; true when the lane
     * committed its whole interval. Transcribed from OooCore::run().
     */
    bool
    stepLane(std::size_t l, std::uint64_t quantum)
    {
        const DecodedTrace::Op *ops = trace_.ops();
        const std::size_t begin = runBegin_;
        const std::size_t end = runEnd_;
        const std::size_t width = width_[l];
        const std::size_t rob_size = robSize_[l];
        const std::size_t rob_mask = robMask_[l];
        const std::size_t iq_size = iqSize_[l];
        const std::size_t lsq_size = lsqSize_[l];
        const int rd_ports = rdPorts_[l];
        const int wr_ports = wrPorts_[l];
        const std::size_t max_branches = maxBranches_[l];
        const std::array<int, kNumFuPools> fu_counts = fuCounts_[l];
        const std::size_t rename_regs = renameRegs_[l];
        const std::size_t fq_cap = fqCap_[l];
        EnergyModel &energy = *energy_[l];
        CacheHierarchy &hierarchy = *hierarchy_[l];
        GsharePredictor &bpred = *bpred_[l];
        Btb &btb = *btb_[l];
        CoreStats &stats = stats_[l];
        HierarchyAccessEvents &mem_events = memEvents_[l];
        CoreScratch &cs = *core_[l];
        auto &rob = cs.rob;
        auto &fetch_queue = cs.fetchQueue;
        auto &iq = cs.iq;
        auto &iq_sleep = cs.iqSleep;
        auto &wb_ring = cs.wbRing;
        auto &resolve_ring = cs.resolveRing;
        auto &div_busy = cs.divBusy;

        // Hot scalars live in locals for the quantum; the SoA members
        // are only touched at the boundaries.
        std::size_t commit_idx = commitIdx_[l];
        std::size_t dispatch_idx = dispatchIdx_[l];
        std::size_t fetch_idx = fetchIdx_[l];
        std::size_t rob_count = robCount_[l];
        std::size_t lsq_count = lsqCount_[l];
        std::size_t regs_used = regsUsed_[l];
        std::size_t fq_head = fqHead_[l];
        std::uint64_t cycle = cycle_[l];
        std::uint64_t fetch_blocked_until = fetchBlockedUntil_[l];
        bool fetch_wait_branch = fetchWaitBranch_[l] != 0;
        std::size_t wait_branch_idx = waitBranchIdx_[l];
        std::size_t inflight_branches = inflightBranches_[l];
        std::uint64_t last_fetch_line = lastFetchLine_[l];
        // True when every IQ entry carries a nonzero sleep bound; the
        // min of those bounds. While the min lies in the future the
        // whole issue scan is provably a no-op (no entry's operands can
        // be ready) and is skipped outright. Conservatively rebuilt by
        // the first full scan of each quantum.
        bool iq_all_cached = false;
        std::uint64_t iq_min_sleep = 0;

        auto slot = [&](std::size_t idx) -> CoreScratch::RobSlot & {
            return rob[idx & rob_mask];
        };

        // When does this source operand allow issue? 0 = ready now;
        // kCoreNotReady = blocked on an unissued producer; otherwise
        // the producer's completion cycle. The issue loop treats 0 as
        // "ready" (matching the scalar path's src_ready) and the
        // idle-skip block min-folds the rest into its wake bound.
        auto src_wake = [&](std::size_t idx,
                            std::uint32_t dist) -> std::uint64_t {
            if (!dist)
                return 0;
            const std::size_t producer = idx - dist;
            if (producer < commit_idx ||
                dist > static_cast<std::uint32_t>(idx - begin))
                return 0; // committed, or before the interval
            const CoreScratch::RobSlot &p = slot(producer);
            if (!p.issued)
                // While unissued, readyCycle carries a published lower
                // bound on the eventual result cycle (see the issue
                // scan) or kCoreNotReady when none is known; an expired
                // bound means "unknown" again.
                return p.readyCycle > cycle ? p.readyCycle
                                            : kCoreNotReady;
            return p.readyCycle <= cycle ? 0 : p.readyCycle;
        };

        // Find the first cycle at or after `from` with a free write
        // port.
        auto writeback_slot = [&](std::uint64_t from) {
            std::uint64_t c = std::max(from, cycle + 1);
            for (std::size_t hops = 0; hops < kCoreRingSize - 1;
                 ++hops, ++c) {
                if (wb_ring[c % kCoreRingSize] <
                    static_cast<std::uint8_t>(wr_ports)) {
                    ++wb_ring[c % kCoreRingSize];
                    return c;
                }
            }
            return c;
        };

        const std::uint64_t stop_cycle = cycle + quantum;
        while (commit_idx < end && cycle < stop_cycle) {
            // Free the write-port ring slot for this cycle so it can
            // be reused a full ring period later; resolve branches due
            // now.
            const std::uint8_t resolved =
                resolve_ring[cycle % kCoreRingSize];
            inflight_branches -= resolved;
            resolve_ring[cycle % kCoreRingSize] = 0;

            // Idle-cycle tracking: a cycle where no stage changes any
            // pipeline, cache or predictor state is "frozen" -- only
            // per-cycle stall counters tick -- and every following
            // cycle replays identically until the next scheduled event.
            // The skip block at the bottom of the loop jumps over such
            // stretches in one step; these flags record what this cycle
            // actually did so the jump knows what repeats.
            bool progress = resolved != 0;
            std::uint64_t *dispatch_stall = nullptr;
            bool fetch_stalled = false;
            // Earliest cycle an IQ entry could become issuable,
            // accumulated for free during the issue scan below.
            std::uint64_t iq_wake = kCoreNotReady;

            // ---- Commit -----------------------------------------------
            for (std::size_t c = 0; c < width && commit_idx < end;
                 ++c) {
                if (commit_idx >= dispatch_idx)
                    break; // nothing dispatched
                CoreScratch::RobSlot &e = slot(commit_idx);
                if (!e.issued || e.readyCycle > cycle)
                    break;
                const DecodedTrace::Op &op = ops[commit_idx];
                if (op.flags & DecodedTrace::kOpStore) {
                    // Stores drain to the D-cache at commit.
                    hierarchy.dataAccess(op.addrOrTarget, true,
                                         mem_events);
                    --lsq_count;
                } else if (op.flags & DecodedTrace::kOpLoad) {
                    --lsq_count;
                }
                if (op.flags & DecodedTrace::kOpProduces)
                    --regs_used;
                if (op.flags & DecodedTrace::kOpBranch) {
                    ++stats.branches;
                    energy.add(EnergyEvent::BpredUpdate);
                }
                energy.add(EnergyEvent::RobRead);
                --rob_count;
                ++commit_idx;
                ++stats.instructions;
                progress = true;
            }

            // ---- Issue ------------------------------------------------
            if (iq.empty()) {
                // nothing to scan
            } else if (iq_all_cached && iq_min_sleep > cycle) {
                // Every entry carries an exact future wake bound, so
                // the scan would keep them all and contribute exactly
                // the min of the bounds -- take that without scanning.
                iq_wake = iq_min_sleep;
            } else {
                std::size_t issued = 0;
                int rd_left = rd_ports;
                std::array<int, kNumFuPools> fu_left = fu_counts;
                std::size_t kept = 0;
                bool scan_all_cached = true;
                std::uint64_t scan_min = kCoreNotReady;
                for (std::size_t pos = 0; pos < iq.size(); ++pos) {
                    const std::size_t idx = iq[pos];
                    // Cached fast path: operands provably not ready
                    // before `sleep` (both producers issued, bound is
                    // their max readyCycle, immutable), so the faithful
                    // scan would fail the entry and fold `sleep` into
                    // iq_wake -- reproduce that without touching the
                    // producers' slots.
                    const std::uint64_t sleep = iq_sleep[pos];
                    if (sleep > cycle) {
                        iq_wake = std::min(iq_wake, sleep);
                        scan_min = std::min(scan_min, sleep);
                        iq[kept] = idx;
                        iq_sleep[kept] = sleep;
                        ++kept;
                        continue;
                    }
                    bool can_issue = issued < width;
                    const DecodedTrace::Op &op = ops[idx];
                    const auto pool =
                        static_cast<std::size_t>(op.pool);
                    int srcs = (op.srcDist1 ? 1 : 0) +
                               (op.srcDist2 ? 1 : 0);
                    std::uint64_t next_sleep = 0;
                    if (can_issue && fu_left[pool] > 0 &&
                        rd_left >= srcs) {
                        const std::uint64_t w1 =
                            src_wake(idx, op.srcDist1);
                        const std::uint64_t w2 =
                            src_wake(idx, op.srcDist2);
                        can_issue = w1 == 0 && w2 == 0;
                        if (!can_issue) {
                            // Issue needs BOTH operands, so the max of
                            // the KNOWN per-operand bounds is a valid
                            // lower bound on this entry's issue even if
                            // the other operand's wake is unknown
                            // (kCoreNotReady). Bounds only ever make
                            // the idle skip stop earlier, which is
                            // always safe.
                            std::uint64_t w = 0;
                            if (w1 != kCoreNotReady)
                                w = w1;
                            if (w2 != kCoreNotReady)
                                w = std::max(w, w2);
                            if (w) {
                                iq_wake = std::min(iq_wake, w);
                                next_sleep = w;
                            }
                        }
                    } else {
                        can_issue = false;
                    }
                    if (can_issue &&
                        (op.flags & DecodedTrace::kOpFpDiv)) {
                        // Non-pipelined: need a divider idle right now.
                        can_issue = false;
                        std::uint64_t div_free = kCoreNotReady;
                        for (auto &busy : div_busy) {
                            if (busy <= cycle) {
                                busy = cycle + fpDivLatency_;
                                can_issue = true;
                                break;
                            }
                            div_free = std::min(div_free, busy);
                        }
                        if (!can_issue) {
                            iq_wake = std::min(iq_wake, div_free);
                            // Busy-until values only grow, so no
                            // divider frees before div_free: also an
                            // exact lower bound on this entry's issue.
                            next_sleep = div_free;
                        }
                    }
                    if (!can_issue) {
                        if (next_sleep) {
                            scan_min = std::min(scan_min, next_sleep);
                            // Chain propagation: no issue before
                            // next_sleep means no result before
                            // next_sleep + execution latency. Publish
                            // that through the unissued slot's
                            // readyCycle so consumers later in this
                            // same scan inherit a bound too. Bounds
                            // are permanent truths (derived from
                            // immutable schedules), so stale ones need
                            // no invalidation -- they merely expire.
                            slot(idx).readyCycle =
                                next_sleep +
                                static_cast<std::uint64_t>(op.latency);
                        } else {
                            scan_all_cached = false;
                        }
                        iq[kept] = idx;
                        iq_sleep[kept] = next_sleep;
                        ++kept;
                        continue;
                    }

                    ++issued;
                    progress = true;
                    rd_left -= srcs;
                    --fu_left[pool];
                    energy.add(EnergyEvent::IqIssue);
                    energy.add(EnergyEvent::RfRead,
                               static_cast<std::uint64_t>(srcs));

                    int latency = op.latency;
                    if (op.flags & DecodedTrace::kOpLoad) {
                        latency += hierarchy.dataAccess(
                            op.addrOrTarget, false, mem_events);
                        energy.add(EnergyEvent::LsqSearch);
                    }
                    const std::uint64_t done =
                        cycle + static_cast<std::uint64_t>(latency);

                    CoreScratch::RobSlot &e = slot(idx);
                    e.issued = true;
                    if (op.flags & DecodedTrace::kOpProduces) {
                        e.readyCycle = writeback_slot(done);
                        energy.add(EnergyEvent::RfWrite);
                        energy.add(EnergyEvent::ResultBus);
                        energy.add(EnergyEvent::IqWakeup);
                    } else {
                        e.readyCycle = done;
                    }
                    energy.add(static_cast<EnergyEvent>(op.fuEvent));

                    if (op.flags & DecodedTrace::kOpBranch) {
                        // Resolution: the branch count drops and, if
                        // this is the branch fetch is stalled on, fetch
                        // restarts after the redirect penalty.
                        const std::uint64_t resolve = done;
                        ++resolve_ring[resolve % kCoreRingSize];
                        if (fetch_wait_branch &&
                            wait_branch_idx == idx) {
                            fetch_wait_branch = false;
                            fetch_blocked_until = std::max(
                                fetch_blocked_until,
                                resolve + redirectPenalty_);
                        }
                    }
                }
                iq.resize(kept);
                iq_sleep.resize(kept);
                iq_all_cached = scan_all_cached;
                iq_min_sleep = scan_min;
            }

            // ---- Dispatch ---------------------------------------------
            for (std::size_t d = 0; d < width; ++d) {
                if (fq_head >= fetch_queue.size())
                    break;
                const CoreScratch::Fetched &f = fetch_queue[fq_head];
                if (f.readyAt > cycle)
                    break;
                const DecodedTrace::Op &op = ops[f.idx];
                if (rob_count == rob_size) {
                    ++stats.dispatchStallRob;
                    dispatch_stall = &stats.dispatchStallRob;
                    break;
                }
                if (iq.size() == iq_size) {
                    ++stats.dispatchStallIq;
                    dispatch_stall = &stats.dispatchStallIq;
                    break;
                }
                if ((op.flags & DecodedTrace::kOpMem) &&
                    lsq_count == lsq_size) {
                    ++stats.dispatchStallLsq;
                    dispatch_stall = &stats.dispatchStallLsq;
                    break;
                }
                if ((op.flags & DecodedTrace::kOpProduces) &&
                    regs_used == rename_regs) {
                    ++stats.dispatchStallRegs;
                    dispatch_stall = &stats.dispatchStallRegs;
                    break;
                }

                CoreScratch::RobSlot &e = slot(f.idx);
                e.readyCycle = kCoreNotReady;
                e.issued = false;
                progress = true;
                ++rob_count;
                iq.push_back(f.idx);
                // Seed the wake cache from the producers' published
                // schedules so a dispatch into an otherwise-sleeping
                // queue does not force a full rescan next cycle.
                {
                    const std::uint64_t w1 =
                        src_wake(f.idx, op.srcDist1);
                    const std::uint64_t w2 =
                        src_wake(f.idx, op.srcDist2);
                    std::uint64_t sleep = 0;
                    if (w1 != kCoreNotReady)
                        sleep = w1;
                    if (w2 != kCoreNotReady)
                        sleep = std::max(sleep, w2);
                    iq_sleep.push_back(sleep);
                    if (sleep) {
                        iq_min_sleep =
                            std::min(iq_min_sleep, sleep);
                        slot(f.idx).readyCycle =
                            sleep +
                            static_cast<std::uint64_t>(op.latency);
                    } else {
                        iq_all_cached = false;
                    }
                }
                if (op.flags & DecodedTrace::kOpMem) {
                    ++lsq_count;
                    energy.add(EnergyEvent::LsqWrite);
                }
                if (op.flags & DecodedTrace::kOpProduces)
                    ++regs_used;
                energy.add(EnergyEvent::RenameLookup);
                energy.add(EnergyEvent::RobWrite);
                energy.add(EnergyEvent::IqWrite);
                ++dispatch_idx;
                ++fq_head;
            }
            if (fq_head > 2 * fq_cap) {
                fetch_queue.erase(
                    fetch_queue.begin(),
                    fetch_queue.begin() +
                        static_cast<std::ptrdiff_t>(fq_head));
                fq_head = 0;
            }

            // ---- Fetch ------------------------------------------------
            if (!fetch_wait_branch && cycle >= fetch_blocked_until) {
                for (std::size_t f = 0; f < width && fetch_idx < end;
                     ++f) {
                    if (fetch_queue.size() - fq_head >= fq_cap)
                        break;
                    const DecodedTrace::Op &op = ops[fetch_idx];

                    // I-cache: access once per new line.
                    const std::uint64_t line = op.pc & lineMask_;
                    if (line != last_fetch_line) {
                        const int lat =
                            hierarchy.instAccess(op.pc, mem_events);
                        progress = true;
                        last_fetch_line = line;
                        if (lat > 1) {
                            fetch_blocked_until =
                                cycle +
                                static_cast<std::uint64_t>(lat);
                            break;
                        }
                    }

                    bool stop_after = false;
                    if (op.flags & DecodedTrace::kOpBranch) {
                        if (inflight_branches >= max_branches) {
                            ++stats.fetchStallBranches;
                            fetch_stalled = true;
                            break;
                        }
                        ++inflight_branches;
                        energy.add(EnergyEvent::BpredLookup);
                        energy.add(EnergyEvent::BtbLookup);
                        const bool taken =
                            (op.flags & DecodedTrace::kOpTaken) != 0;
                        const bool pred =
                            (op.flags & DecodedTrace::kOpCond)
                                ? bpred.predict(op.pc)
                                : true;
                        bpred.update(op.pc, taken);
                        const bool btb_hit = btb.lookup(op.pc);
                        if (taken && !btb_hit) {
                            btb.update(op.pc, op.addrOrTarget);
                            energy.add(EnergyEvent::BtbUpdate);
                            ++stats.btbMisses;
                        }
                        if (pred != taken) {
                            // Direction mispredict: fetch stops until
                            // the branch resolves.
                            ++stats.mispredicts;
                            fetch_wait_branch = true;
                            wait_branch_idx = fetch_idx;
                            stop_after = true;
                        } else if (taken) {
                            if (!btb_hit) {
                                // Correct direction but unknown
                                // target: decode-time redirect bubble.
                                fetch_blocked_until =
                                    cycle + redirectPenalty_;
                            }
                            // Cannot fetch past a taken branch this
                            // cycle.
                            stop_after = true;
                            last_fetch_line = std::numeric_limits<
                                std::uint64_t>::max();
                        }
                    }

                    fetch_queue.push_back(
                        {fetch_idx, cycle + frontEndStages_});
                    ++fetch_idx;
                    progress = true;
                    if (stop_after)
                        break;
                }
            }

            // This cycle's write-port slot can never be referenced
            // again (writebacks are always scheduled at cycle+1 or
            // later), so clear it for reuse one ring period from now.
            wb_ring[cycle % kCoreRingSize] = 0;

            if (progress) {
                ++cycle;
            } else {
                // Frozen cycle: the pipeline replays it unchanged until
                // the next scheduled event, so jump straight there.
                // This is where the batched path beats the scalar
                // reference -- stall-bound stretches (memory latency,
                // unresolved branches) collapse to one iteration.
                // Identity is preserved because a frozen cycle's only
                // observable effects are the stall counters recorded
                // above, which are credited per skipped cycle below.
                std::uint64_t wake = cycleLimit_;
                // Commit: the oldest in-flight instruction completes.
                if (commit_idx < dispatch_idx) {
                    const CoreScratch::RobSlot &e = slot(commit_idx);
                    if (e.issued && e.readyCycle > cycle)
                        wake = std::min(wake, e.readyCycle);
                }
                // Issue: an IQ entry's sources all become ready (or a
                // divider frees up) -- already accumulated by the scan
                // above.
                wake = std::min(wake, iq_wake);
                // Dispatch: the front-end head leaves the fetch
                // pipeline. (A resource-stalled head is freed by a
                // commit or issue event, already bounded above.)
                if (fq_head < fetch_queue.size() &&
                    fetch_queue[fq_head].readyAt > cycle)
                    wake = std::min(wake, fetch_queue[fq_head].readyAt);
                // Fetch: a miss or redirect block expires.
                if (!fetch_wait_branch && fetch_blocked_until > cycle &&
                    fetch_idx < end)
                    wake = std::min(wake, fetch_blocked_until);
                // Branch resolution: inflight_branches drops. Scan the
                // resolve ring for the first pending resolution in
                // (cycle, horizon), eight counters per load: the ring
                // is almost entirely zero during a stall, so testing a
                // whole word at a time beats the byte loop.
                if (inflight_branches > 0) {
                    const std::uint64_t horizon =
                        std::min(wake, cycle + kCoreRingSize);
                    std::uint64_t c = cycle + 1;
                    while (c < horizon) {
                        const std::size_t at = c % kCoreRingSize;
                        const std::uint64_t run = std::min(
                            horizon - c,
                            static_cast<std::uint64_t>(kCoreRingSize -
                                                       at));
                        const std::uint8_t *base =
                            resolve_ring.data() + at;
                        std::uint64_t i = 0;
                        while (i + 8 <= run) {
                            std::uint64_t word;
                            std::memcpy(&word, base + i, 8);
                            if (word)
                                break;
                            i += 8;
                        }
                        const std::uint64_t stop =
                            std::min(run, i + 8);
                        bool found = false;
                        for (; i < stop; ++i) {
                            if (base[i]) {
                                wake = c + i;
                                found = true;
                                break;
                            }
                        }
                        if (found)
                            break;
                        c += run;
                    }
                }
                wake = std::max(wake, cycle + 1);
                wake = std::min({wake, stop_cycle, cycleLimit_});
                const std::uint64_t skipped = wake - cycle - 1;
                if (skipped > 0) {
                    // Each skipped cycle repeats this cycle's stall
                    // accounting and clears its own write-port slot,
                    // exactly as the per-cycle loop would have.
                    if (dispatch_stall)
                        *dispatch_stall += skipped;
                    if (fetch_stalled)
                        stats.fetchStallBranches += skipped;
                    if (skipped >= kCoreRingSize) {
                        std::fill(wb_ring.begin(), wb_ring.end(), 0);
                    } else {
                        for (std::uint64_t c = cycle + 1; c < wake; ++c)
                            wb_ring[c % kCoreRingSize] = 0;
                    }
                }
                cycle = wake;
            }
            ACDSE_CHECK(cycle < cycleLimit_,
                         "pipeline deadlock detected in ",
                         trace_.name(), " at instruction ", commit_idx);
        }

        commitIdx_[l] = commit_idx;
        dispatchIdx_[l] = dispatch_idx;
        fetchIdx_[l] = fetch_idx;
        robCount_[l] = rob_count;
        lsqCount_[l] = lsq_count;
        regsUsed_[l] = regs_used;
        fqHead_[l] = fq_head;
        cycle_[l] = cycle;
        fetchBlockedUntil_[l] = fetch_blocked_until;
        fetchWaitBranch_[l] = fetch_wait_branch ? 1 : 0;
        waitBranchIdx_[l] = wait_branch_idx;
        inflightBranches_[l] = inflight_branches;
        lastFetchLine_[l] = last_fetch_line;
        return commit_idx >= end;
    }

    /** Final accounting for a lane that committed its interval. */
    void
    finishLane(std::size_t l)
    {
        CoreStats &stats = stats_[l];
        stats.cycles = cycle_[l];
        stats.il1Misses = hierarchy_[l]->il1().misses() - il1Miss0_[l];
        stats.dl1Misses = hierarchy_[l]->dl1().misses() - dl1Miss0_[l];
        stats.l2Misses = hierarchy_[l]->l2().misses() - l2Miss0_[l];

        EnergyModel &energy = *energy_[l];
        const HierarchyAccessEvents &events = memEvents_[l];
        energy.add(EnergyEvent::Il1Access,
                   static_cast<std::uint64_t>(events.il1));
        energy.add(EnergyEvent::Dl1Access,
                   static_cast<std::uint64_t>(events.dl1));
        energy.add(EnergyEvent::L2Access,
                   static_cast<std::uint64_t>(events.l2));
        energy.add(EnergyEvent::MemAccess,
                   static_cast<std::uint64_t>(events.mem));
    }

    const DecodedTrace &trace_;
    const std::size_t lanes_;

    // Shared fixed parameters, hoisted out of the cycle loop.
    std::uint64_t lineMask_;
    std::uint64_t frontEndStages_;
    std::uint64_t redirectPenalty_;
    std::uint64_t fpDivLatency_;

    // Per-lane components (storage owned by the SimScratch).
    std::array<EnergyModel *, kSimLanes> energy_;
    std::array<CacheHierarchy *, kSimLanes> hierarchy_;
    std::array<GsharePredictor *, kSimLanes> bpred_;
    std::array<Btb *, kSimLanes> btb_;
    std::array<CoreScratch *, kSimLanes> core_;

    // Per-lane structural limits (SoA, set once per batch).
    alignas(64) std::array<std::size_t, kSimLanes> width_;
    std::array<std::size_t, kSimLanes> robSize_;
    std::array<std::size_t, kSimLanes> robMask_;
    std::array<std::size_t, kSimLanes> iqSize_;
    std::array<std::size_t, kSimLanes> lsqSize_;
    std::array<int, kSimLanes> rdPorts_;
    std::array<int, kSimLanes> wrPorts_;
    std::array<std::size_t, kSimLanes> maxBranches_;
    std::array<std::array<int, kNumFuPools>, kSimLanes> fuCounts_;
    std::array<std::size_t, kSimLanes> numDividers_;
    std::array<std::size_t, kSimLanes> renameRegs_;
    std::array<std::size_t, kSimLanes> fqCap_;

    // Per-lane run state (SoA, reset per run()).
    alignas(64) std::array<std::size_t, kSimLanes> commitIdx_;
    std::array<std::size_t, kSimLanes> dispatchIdx_;
    std::array<std::size_t, kSimLanes> fetchIdx_;
    std::array<std::size_t, kSimLanes> robCount_;
    std::array<std::size_t, kSimLanes> lsqCount_;
    std::array<std::size_t, kSimLanes> regsUsed_;
    std::array<std::size_t, kSimLanes> fqHead_;
    alignas(64) std::array<std::uint64_t, kSimLanes> cycle_;
    std::array<std::uint64_t, kSimLanes> fetchBlockedUntil_;
    std::array<std::uint8_t, kSimLanes> fetchWaitBranch_;
    std::array<std::size_t, kSimLanes> waitBranchIdx_;
    std::array<std::size_t, kSimLanes> inflightBranches_;
    std::array<std::uint64_t, kSimLanes> lastFetchLine_;
    std::array<std::uint64_t, kSimLanes> il1Miss0_;
    std::array<std::uint64_t, kSimLanes> dl1Miss0_;
    std::array<std::uint64_t, kSimLanes> l2Miss0_;
    std::array<HierarchyAccessEvents, kSimLanes> memEvents_;

    // Per-run interval and output.
    std::size_t runBegin_ = 0;
    std::size_t runEnd_ = 0;
    std::uint64_t cycleLimit_ = 0;
    CoreStats *stats_ = nullptr;
};

/** One lane group: warmup + timed run + result assembly. */
void
runGroup(std::span<const MicroarchConfig> configs,
         const DecodedTrace &trace, const SimulationOptions &options,
         SimulationResult *results, SimScratch &scratch)
{
    BatchSimulator sim(configs, trace, scratch);
    const std::size_t n = configs.size();
    std::array<CoreStats, kSimLanes> stats;

    std::size_t begin = 0;
    if (options.warmupInstructions > 0 && trace.size() > 2) {
        // Warm microarchitectural state with an untimed run over the
        // prefix; discard its statistics and energy events.
        begin = std::min(options.warmupInstructions, trace.size() / 2);
        sim.run(0, begin, stats.data());
        for (std::size_t l = 0; l < n; ++l)
            sim.energy(l).resetCounts();
    }

    sim.run(begin, trace.size(), stats.data());
    for (std::size_t l = 0; l < n; ++l) {
        SimulationResult &result = results[l];
        result.stats = stats[l];
        result.dynamicNj = sim.energy(l).dynamicEnergyNj();
        result.staticNj =
            sim.energy(l).staticEnergyNj(stats[l].cycles);
        result.metrics = Metrics::fromCyclesEnergy(
            static_cast<double>(stats[l].cycles),
            result.dynamicNj + result.staticNj);
        ACDSE_CHECK_FINITE(result.metrics.cycles, "simulated cycles");
        ACDSE_CHECK_FINITE(result.metrics.energyNj, "simulated energy");
        ACDSE_CHECK(result.metrics.cycles > 0.0,
                     "simulation produced no cycles");
    }
}

} // namespace

#endif // !ACDSE_NO_SIM_BATCH

void
simulateBatch(std::span<const MicroarchConfig> configs,
              const DecodedTrace &trace, const SimulationOptions &options,
              std::span<SimulationResult> results, SimScratch &scratch)
{
    ACDSE_CHECK(results.size() >= configs.size(),
                 "result span smaller than the config batch");
    const obs::TraceSpan span(obs::Registry::global(), "sim/batch");
#if defined(ACDSE_NO_SIM_BATCH)
    // Scalar shape: loop the reference implementation, still reusing
    // the scratch's pipeline storage.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        results[i] = simulate(configs[i], trace.source(), options,
                              scratch.lanes[0].core);
    }
#else
    for (std::size_t first = 0; first < configs.size();
         first += kSimLanes) {
        const std::size_t n =
            std::min(kSimLanes, configs.size() - first);
        runGroup(configs.subspan(first, n), trace, options,
                 results.data() + first, scratch);
    }
#endif
    std::uint64_t instructions = 0;
    for (std::size_t i = 0; i < configs.size(); ++i)
        instructions += results[i].stats.instructions;
    obs::Registry &registry = obs::Registry::global();
    registry.counter("sim/instructions").add(instructions);
    registry.counter("sim/lanes-occupied").add(configs.size());
}

std::vector<SimulationResult>
simulateBatch(std::span<const MicroarchConfig> configs, const Trace &trace,
              const SimulationOptions &options)
{
    const DecodedTrace decoded(trace);
    SimScratch scratch;
    std::vector<SimulationResult> results(configs.size());
    simulateBatch(configs, decoded, options, results, scratch);
    return results;
}

std::vector<SampledResult>
simulateWithSimPointsBatch(std::span<const MicroarchConfig> configs,
                           const Trace &trace,
                           const SimPointOptions &options)
{
    std::vector<SampledResult> results(configs.size());
#if defined(ACDSE_NO_SIM_BATCH)
    for (std::size_t i = 0; i < configs.size(); ++i)
        results[i] = simulateWithSimPoints(configs[i], trace, options);
#else
    // One analysis serves every lane: simpointAnalyze() is a pure
    // function of (trace, options), so sharing it preserves
    // bit-identity with the scalar path, which recomputes it per
    // config.
    const SimPointResult analysis = simpointAnalyze(trace, options);
    ACDSE_CHECK(!analysis.points.empty(), "no simulation points");
    const std::size_t len = options.intervalLength;

    const DecodedTrace decoded(trace);
    SimScratch scratch;
    std::vector<double> cycles_per_interval(analysis.numIntervals);
    std::vector<double> energy_per_interval(analysis.numIntervals);
    std::array<CoreStats, kSimLanes> stats;

    for (std::size_t first = 0; first < configs.size();
         first += kSimLanes) {
        const std::size_t n =
            std::min(kSimLanes, configs.size() - first);
        // Per-lane interval estimates for this group.
        std::array<std::vector<double>, kSimLanes> lane_cycles;
        std::array<std::vector<double>, kSimLanes> lane_energy;
        std::array<std::uint64_t, kSimLanes> timed{};
        for (std::size_t l = 0; l < n; ++l) {
            lane_cycles[l].assign(analysis.numIntervals, 0.0);
            lane_energy[l].assign(analysis.numIntervals, 0.0);
        }

        for (const auto &point : analysis.points) {
            const std::size_t begin = point.intervalIndex * len;
            const std::size_t end =
                std::min(begin + len, trace.size());
            // Fresh per-point state, as the scalar path constructs a
            // fresh core per point.
            BatchSimulator sim(configs.subspan(first, n), decoded,
                               scratch);
            if (begin >= len)
                sim.warm(begin - len, begin);
            sim.run(begin, end, stats.data());
            for (std::size_t l = 0; l < n; ++l) {
                timed[l] += stats[l].instructions;
                lane_cycles[l][point.intervalIndex] =
                    static_cast<double>(stats[l].cycles);
                lane_energy[l][point.intervalIndex] =
                    sim.energy(l).totalEnergyNj(stats[l].cycles);
            }
        }

        for (std::size_t l = 0; l < n; ++l) {
            SampledResult &result = results[first + l];
            result.metrics = Metrics::fromCyclesEnergy(
                simpointWeightedSum(analysis, lane_cycles[l]),
                simpointWeightedSum(analysis, lane_energy[l]));
            result.simulatedInstructions = timed[l];
            result.detailFraction = static_cast<double>(timed[l]) /
                                    static_cast<double>(trace.size());
        }
    }
#endif
    return results;
}

std::vector<SampledResult>
simulateWithSmartsBatch(std::span<const MicroarchConfig> configs,
                        const Trace &trace, const SmartsOptions &options)
{
    std::vector<SampledResult> results(configs.size());
#if defined(ACDSE_NO_SIM_BATCH)
    for (std::size_t i = 0; i < configs.size(); ++i)
        results[i] = simulateWithSmarts(configs[i], trace, options);
#else
    ACDSE_CHECK(options.unitInstructions > 0, "empty measurement unit");
    ACDSE_CHECK(options.samplingPeriod > 0,
                 "sampling period must be >0");
    const std::size_t unit = options.unitInstructions;
    const std::size_t num_units = (trace.size() + unit - 1) / unit;

    const DecodedTrace decoded(trace);
    SimScratch scratch;
    std::array<CoreStats, kSimLanes> stats;

    for (std::size_t first = 0; first < configs.size();
         first += kSimLanes) {
        const std::size_t n =
            std::min(kSimLanes, configs.size() - first);
        // Persistent per-group state: caches and predictors stay warm
        // across units, exactly like the scalar path's long-lived core.
        BatchSimulator sim(configs.subspan(first, n), decoded, scratch);
        std::array<double, kSimLanes> measured_cycles{};
        std::array<double, kSimLanes> measured_energy{};
        std::array<std::uint64_t, kSimLanes> timed{};
        std::size_t measured_units = 0;

        for (std::size_t u = 0; u < num_units; ++u) {
            const std::size_t begin = u * unit;
            const std::size_t end =
                std::min(begin + unit, trace.size());
            const bool measure =
                (u % options.samplingPeriod) ==
                (options.offset % options.samplingPeriod);
            if (measure) {
                for (std::size_t l = 0; l < n; ++l)
                    sim.energy(l).resetCounts();
                sim.run(begin, end, stats.data());
                for (std::size_t l = 0; l < n; ++l) {
                    measured_cycles[l] +=
                        static_cast<double>(stats[l].cycles);
                    measured_energy[l] +=
                        sim.energy(l).dynamicEnergyNj() +
                        sim.energy(l).staticEnergyNj(stats[l].cycles);
                    timed[l] += stats[l].instructions;
                }
                ++measured_units;
            } else {
                // Functional warming only: caches and predictors stay
                // hot, no timing is modelled.
                sim.warm(begin, end);
            }
        }
        ACDSE_CHECK(measured_units > 0, "no units were measured");

        const double scale = static_cast<double>(num_units) /
                             static_cast<double>(measured_units);
        for (std::size_t l = 0; l < n; ++l) {
            SampledResult &result = results[first + l];
            result.metrics = Metrics::fromCyclesEnergy(
                measured_cycles[l] * scale,
                measured_energy[l] * scale);
            result.simulatedInstructions = timed[l];
            result.detailFraction = static_cast<double>(timed[l]) /
                                    static_cast<double>(trace.size());
        }
    }
#endif
    return results;
}

} // namespace acdse
