/**
 * @file
 * Lane-per-config batched simulator replay.
 *
 * A design-space campaign evaluates the *same* trace under hundreds of
 * configurations. The scalar path (sim/simulator.hh) rebuilds every
 * simulator structure per call and streams the trace once per config;
 * this path replays one decoded trace against up to kSimLanes
 * configurations simultaneously:
 *
 *  - DecodedTrace precomputes per-instruction properties (latency,
 *    functional-unit pool, energy event, class flags) once per trace
 *    instead of re-deriving them per config per instruction.
 *  - SimScratch owns per-lane simulator components (caches, predictors,
 *    energy model, pipeline storage) that are *reconfigured* -- not
 *    reallocated -- for each batch, so steady-state replay performs no
 *    heap allocation (bench_campaign asserts this).
 *  - Lanes advance through the trace in interleaved quanta, sharing the
 *    trace working set.
 *
 * Contract: per-config results are BIT-IDENTICAL to scalar simulate()
 * (tests/test_batch_sim.cc compares all four metrics with EXPECT_EQ on
 * the doubles). This holds because lanes never interact -- each lane
 * executes exactly the scalar algorithm's operation sequence -- and the
 * shared tables in sim/core_ops.hh keep the two transcriptions from
 * drifting. Configure with -DACDSE_SIM_BATCH=OFF to collapse the batch
 * entry points to the scalar path (an escape hatch, not a numerics
 * switch).
 *
 * Observability: simulateBatch() runs under a "sim/batch" trace span
 * and feeds two counters -- "sim/instructions" (instructions committed
 * through the batched path) and "sim/lanes-occupied" (sum of occupied
 * lanes per lane-group; divide by the sim/batch span's call count for
 * average occupancy).
 */

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "arch/microarch_config.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/energy.hh"
#include "sim/sampled_sim.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace acdse
{

#if defined(ACDSE_NO_SIM_BATCH)
/** Lane count (ACDSE_SIM_BATCH=OFF: scalar shape). */
constexpr std::size_t kSimLanes = 1;
#else
/** Configurations replayed simultaneously per lane group. */
constexpr std::size_t kSimLanes = 8;
#endif

/**
 * A trace decoded for replay: per-instruction properties the core
 * model would otherwise re-derive per config per instruction,
 * precomputed once. Immutable after construction and therefore safe to
 * share across threads (campaign workers decode each program's trace
 * once and replay it from every worker).
 */
class DecodedTrace
{
  public:
    /** @name Op::flags bits. */
    /** @{ */
    static constexpr std::uint8_t kOpLoad = 1u << 0;     //!< memory load
    static constexpr std::uint8_t kOpStore = 1u << 1;    //!< memory store
    static constexpr std::uint8_t kOpBranch = 1u << 2;   //!< control
    static constexpr std::uint8_t kOpCond = 1u << 3;     //!< conditional
    static constexpr std::uint8_t kOpTaken = 1u << 4;    //!< outcome
    static constexpr std::uint8_t kOpProduces = 1u << 5; //!< writes a reg
    static constexpr std::uint8_t kOpFpDiv = 1u << 6;    //!< unpipelined
    /** Mask: either memory-class bit. */
    static constexpr std::uint8_t kOpMem = kOpLoad | kOpStore;
    /** @} */

    /**
     * One decoded instruction (32 bytes). addrOrTarget holds the
     * effective address for loads/stores and the branch target for
     * branches -- no instruction uses both.
     */
    struct Op
    {
        std::uint64_t pc;           //!< instruction address
        std::uint64_t addrOrTarget; //!< data address / branch target
        std::uint32_t srcDist1;     //!< distance to first producer
        std::uint32_t srcDist2;     //!< distance to second producer
        std::uint8_t latency;       //!< execLatency(cls)
        std::uint8_t pool;          //!< fuPoolFor(cls) index
        std::uint8_t fuEvent;       //!< fuEnergyFor(cls) index
        std::uint8_t flags;         //!< kOp* bits
    };

    /** Decode @p trace; keeps a reference (trace must outlive this). */
    explicit DecodedTrace(const Trace &trace);

    /** The trace this was decoded from. */
    const Trace &source() const { return *source_; }

    /** Benchmark name (forwarded from the source trace). */
    const std::string &name() const { return source_->name(); }

    /** Number of dynamic instructions. */
    std::size_t size() const { return ops_.size(); }

    /** The decoded stream. */
    const Op *ops() const { return ops_.data(); }

  private:
    const Trace *source_;
    std::vector<Op> ops_;
};

/**
 * Per-lane simulator components, owned by the caller and recycled
 * across simulateBatch() calls. First use constructs each component;
 * every later batch reconfigures it in place (O(1) invalidation via
 * epochs -- see Cache::reconfigure), so steady-state replay allocates
 * nothing. One scratch serves one thread; it is storage, never state:
 * results do not depend on what ran through it before.
 */
struct SimScratch
{
    /** Components for one lane (one configuration). */
    struct Lane
    {
        std::optional<EnergyModel> energy;       //!< event accounting
        std::optional<CacheHierarchy> hierarchy; //!< L1I/L1D/L2
        std::optional<GsharePredictor> bpred;    //!< direction predictor
        std::optional<Btb> btb;                  //!< target buffer
        CoreScratch core;                        //!< pipeline storage
    };

    std::array<Lane, kSimLanes> lanes; //!< one per simultaneous config
};

/**
 * Replay @p trace against every configuration in @p configs (any
 * count; processed in lane groups of kSimLanes) and write one
 * SimulationResult per config into @p results. Bit-identical to
 * calling simulate(configs[i], trace.source(), options) per config.
 *
 * @param configs the design points (results follow this order).
 * @param trace   the decoded trace, shared by every lane.
 * @param options warmup control, as for simulate().
 * @param results output span, at least configs.size() entries.
 * @param scratch caller-owned lane components (reused across calls).
 */
void simulateBatch(std::span<const MicroarchConfig> configs,
                   const DecodedTrace &trace,
                   const SimulationOptions &options,
                   std::span<SimulationResult> results,
                   SimScratch &scratch);

/** Convenience overload: decodes, allocates scratch + results. */
std::vector<SimulationResult>
simulateBatch(std::span<const MicroarchConfig> configs, const Trace &trace,
              const SimulationOptions &options = {});

/**
 * Batched SimPoint estimate: one analysis pass, then every
 * representative interval replayed across all lanes. Element i is
 * bit-identical to simulateWithSimPoints(configs[i], trace, options).
 */
std::vector<SampledResult>
simulateWithSimPointsBatch(std::span<const MicroarchConfig> configs,
                           const Trace &trace,
                           const SimPointOptions &options = {});

/**
 * Batched SMARTS estimate: measurement units and functional warming
 * advance all lanes together. Element i is bit-identical to
 * simulateWithSmarts(configs[i], trace, options).
 */
std::vector<SampledResult>
simulateWithSmartsBatch(std::span<const MicroarchConfig> configs,
                        const Trace &trace,
                        const SmartsOptions &options = {});

} // namespace acdse
