#include "sim/branch_predictor.hh"

#include <algorithm>
#include <bit>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

GsharePredictor::GsharePredictor(int entries)
{
    reconfigure(entries);
}

void
GsharePredictor::reconfigure(int entries)
{
    ACDSE_CHECK(entries > 0 &&
                     std::has_single_bit(static_cast<unsigned>(entries)),
                 "gshare table size must be a power of two");
    counters_.assign(static_cast<std::size_t>(entries),
                     1); // weakly not-taken
    mask_ = static_cast<std::uint64_t>(entries) - 1;
    // Fixed short history: larger tables then monotonically reduce
    // destructive aliasing between branches (the effect the design
    // space varies) without diluting training across more contexts
    // than a sampled interval can warm.
    historyBits_ =
        std::min(6, std::countr_zero(static_cast<unsigned>(entries)));
    history_ = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

std::uint64_t
GsharePredictor::index(std::uint64_t pc) const
{
    return ((pc >> 2) ^ history_) & mask_;
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    ++lookups_;
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = counters_[index(pc)];
    const bool predicted = counter >= 2;
    if (predicted != taken)
        ++mispredicts_;
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               ((1ULL << historyBits_) - 1);
}

Btb::Btb(int entries)
{
    reconfigure(entries);
}

void
Btb::reconfigure(int entries)
{
    ACDSE_CHECK(entries > 0 &&
                     std::has_single_bit(static_cast<unsigned>(entries)),
                 "BTB size must be a power of two");
    entries_.resize(static_cast<std::size_t>(entries));
    mask_ = static_cast<std::uint64_t>(entries) - 1;
    // Epoch bump invalidates every entry in O(1); on wrap, clear so a
    // recycled epoch value cannot resurrect stale targets.
    if (++epoch_ == 0) {
        for (auto &e : entries_)
            e = Entry{};
        epoch_ = 1;
    }
    lookups_ = 0;
    misses_ = 0;
}

bool
Btb::lookup(std::uint64_t pc) const
{
    ++lookups_;
    const Entry &e = entries_[(pc >> 2) & mask_];
    const bool hit = e.epoch == epoch_ && e.tag == pc;
    misses_ += !hit;
    return hit;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    Entry &e = entries_[(pc >> 2) & mask_];
    e.epoch = epoch_;
    e.tag = pc;
    e.target = target;
}

} // namespace acdse
