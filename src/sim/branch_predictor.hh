/**
 * @file
 * Gshare branch direction predictor and branch target buffer, both
 * sized from the varied design-space parameters.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace acdse
{

/**
 * Gshare: a table of 2-bit saturating counters indexed by PC xor
 * global history; history length is log2(table size) as usual.
 */
class GsharePredictor
{
  public:
    /** @param entries table size (power of two). */
    explicit GsharePredictor(int entries);

    /**
     * Re-size the table and forget all training, history and
     * statistics -- equivalent to constructing a fresh predictor but
     * reusing the counter storage (the lane-batched simulator recycles
     * one predictor per lane across simulations).
     */
    void reconfigure(int entries);

    /** Predict the direction of the branch at @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Train on the actual outcome and shift the global history. */
    void update(std::uint64_t pc, bool taken);

    /** @name Statistics. */
    /** @{ */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_
                        : 0.0;
    }
    /** @} */

  private:
    std::uint64_t index(std::uint64_t pc) const;

    std::vector<std::uint8_t> counters_;
    std::uint64_t mask_;
    std::uint64_t history_ = 0;
    int historyBits_;
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/**
 * Direct-mapped, tagged branch target buffer. A taken branch that
 * misses in the BTB cannot redirect fetch immediately even when the
 * direction prediction is correct.
 */
class Btb
{
  public:
    /** @param entries table size (power of two). */
    explicit Btb(int entries);

    /**
     * Re-size the table and forget all entries and statistics (storage
     * is reused; invalidation is O(1) via the entry epoch).
     */
    void reconfigure(int entries);

    /** Whether the branch at @p pc has a target stored. */
    bool lookup(std::uint64_t pc) const;

    /** Install/refresh the entry for @p pc. */
    void update(std::uint64_t pc, std::uint64_t target);

    /** @name Statistics. */
    /** @{ */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t misses() const { return misses_; }
    /** @} */

  private:
    /** Valid iff epoch matches the BTB's current epoch (see Cache). */
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint32_t epoch = 0;
    };

    std::vector<Entry> entries_;
    std::uint64_t mask_;
    std::uint32_t epoch_ = 1;
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t misses_ = 0;
};

} // namespace acdse

