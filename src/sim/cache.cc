#include "sim/cache.hh"

#include <bit>

#include "base/check.hh"
#include "base/logging.hh"
#include "sim/cacti.hh"

namespace acdse
{

Cache::Cache(int sizeBytes, int assoc, int lineBytes)
{
    reconfigure(sizeBytes, assoc, lineBytes);
}

void
Cache::reconfigure(int sizeBytes, int assoc, int lineBytes)
{
    ACDSE_CHECK(sizeBytes > 0 && assoc > 0 && lineBytes > 0,
                 "cache dimensions must be positive");
    sets_ = sizeBytes / (assoc * lineBytes);
    assoc_ = assoc;
    lineShift_ = std::countr_zero(static_cast<unsigned>(lineBytes));
    ACDSE_CHECK(sets_ > 0, "cache too small for its associativity");
    ACDSE_CHECK((sets_ & (sets_ - 1)) == 0, "set count must be 2^n");
    ACDSE_CHECK(std::has_single_bit(static_cast<unsigned>(lineBytes)),
                 "line size must be 2^n");
    lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
    reset();
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool write)
{
    ++accesses_;
    ++useCounter_;
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint64_t set = line_addr & (static_cast<std::uint64_t>(
                                               sets_) - 1);
    const std::uint64_t tag = line_addr >> std::countr_zero(
                                  static_cast<unsigned>(sets_));
    Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];

    Line *victim = base;
    for (int w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        const bool valid = line.epoch == epoch_;
        if (valid && line.tag == tag) {
            line.lastUse = useCounter_;
            line.dirty |= write;
            return {true, false};
        }
        if (!valid) {
            victim = &line;
        } else if (victim->epoch == epoch_ &&
                   line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    const bool writeback = victim->epoch == epoch_ && victim->dirty;
    writebacks_ += writeback;
    victim->epoch = epoch_;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    victim->dirty = write;
    return {false, writeback};
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint64_t set = line_addr & (static_cast<std::uint64_t>(
                                               sets_) - 1);
    const std::uint64_t tag = line_addr >> std::countr_zero(
                                  static_cast<unsigned>(sets_));
    const Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].epoch == epoch_ && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    // O(1) by design: advancing the epoch invalidates every line (the
    // LRU victim scan treats stale-epoch lines exactly like the
    // valid=false lines of a fresh array). On the -- practically
    // unreachable -- epoch wrap, fall back to a full clear so recycled
    // epoch values can never resurrect ancient lines.
    if (++epoch_ == 0) {
        for (auto &line : lines_)
            line = Line{};
        epoch_ = 1;
    }
    useCounter_ = accesses_ = misses_ = writebacks_ = 0;
}

CacheHierarchy::CacheHierarchy(const MicroarchConfig &config)
    : il1_(config.il1Bytes(), fixedParams().il1Assoc,
           fixedParams().l1LineBytes),
      dl1_(config.dl1Bytes(), fixedParams().dl1Assoc,
           fixedParams().l1LineBytes),
      l2_(config.l2Bytes(), fixedParams().l2Assoc,
          fixedParams().l2LineBytes),
      memLatency_(fixedParams().memLatency)
{
    il1Latency_ = estimateCache(config.il1Bytes(), fixedParams().il1Assoc,
                                fixedParams().l1LineBytes, 1)
                      .latencyCycles;
    dl1Latency_ = estimateCache(config.dl1Bytes(), fixedParams().dl1Assoc,
                                fixedParams().l1LineBytes, 1)
                      .latencyCycles;
    l2Latency_ = estimateCache(config.l2Bytes(), fixedParams().l2Assoc,
                               fixedParams().l2LineBytes, 2)
                     .latencyCycles;
}

void
CacheHierarchy::reconfigure(const MicroarchConfig &config)
{
    const FixedParams &fp = fixedParams();
    il1_.reconfigure(config.il1Bytes(), fp.il1Assoc, fp.l1LineBytes);
    dl1_.reconfigure(config.dl1Bytes(), fp.dl1Assoc, fp.l1LineBytes);
    l2_.reconfigure(config.l2Bytes(), fp.l2Assoc, fp.l2LineBytes);
    il1Latency_ = estimateCache(config.il1Bytes(), fp.il1Assoc,
                                fp.l1LineBytes, 1)
                      .latencyCycles;
    dl1Latency_ = estimateCache(config.dl1Bytes(), fp.dl1Assoc,
                                fp.l1LineBytes, 1)
                      .latencyCycles;
    l2Latency_ = estimateCache(config.l2Bytes(), fp.l2Assoc,
                               fp.l2LineBytes, 2)
                     .latencyCycles;
    memLatency_ = fp.memLatency;
}

int
CacheHierarchy::dataAccess(std::uint64_t addr, bool write,
                           HierarchyAccessEvents &events)
{
    ++events.dl1;
    const CacheAccessResult l1 = dl1_.access(addr, write);
    if (l1.hit)
        return dl1Latency_;
    if (l1.writebackDirty)
        ++events.l2; // dirty victim written into L2

    ++events.l2;
    const CacheAccessResult l2 = l2_.access(addr, false);
    if (l2.hit)
        return dl1Latency_ + l2Latency_;
    if (l2.writebackDirty)
        ++events.mem;

    ++events.mem;
    return dl1Latency_ + l2Latency_ + memLatency_;
}

int
CacheHierarchy::instAccess(std::uint64_t pc, HierarchyAccessEvents &events)
{
    ++events.il1;
    const CacheAccessResult l1 = il1_.access(pc, false);
    if (l1.hit)
        return 1;

    ++events.l2;
    const CacheAccessResult l2 = l2_.access(pc, false);
    if (l2.hit)
        return il1Latency_ + l2Latency_;
    if (l2.writebackDirty)
        ++events.mem;

    ++events.mem;
    return il1Latency_ + l2Latency_ + memLatency_;
}

} // namespace acdse
