/**
 * @file
 * Set-associative LRU caches and the two-level hierarchy used by the
 * core model (L1I + L1D backed by a unified L2, then main memory).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/microarch_config.hh"

namespace acdse
{

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit;           //!< whether the line was present
    bool writebackDirty; //!< whether a dirty victim was evicted
};

/** One set-associative write-back cache with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param sizeBytes total capacity (power of two).
     * @param assoc     associativity.
     * @param lineBytes line size (power of two).
     */
    Cache(int sizeBytes, int assoc, int lineBytes);

    /**
     * Re-shape this cache for a new geometry, invalidating all
     * contents and statistics. Equivalent to constructing a fresh
     * Cache but reuses the line storage -- the lane-batched simulator
     * (sim/batch.hh) recycles one Cache per lane across thousands of
     * simulations, and re-allocating + zeroing a multi-megabyte L2
     * line array per simulation would dominate short campaign runs.
     */
    void reconfigure(int sizeBytes, int assoc, int lineBytes);

    /** Access one address; fills the line on a miss. */
    CacheAccessResult access(std::uint64_t addr, bool write);

    /** Whether the address would hit, without changing any state. */
    bool probe(std::uint64_t addr) const;

    /** @name Statistics. */
    /** @{ */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }
    /** @} */

    /** Forget all contents and statistics. */
    void reset();

    /** Number of sets. */
    int numSets() const { return sets_; }

  private:
    /**
     * One cache line. Validity is epoch-based: a line is present iff
     * its epoch matches the cache's current epoch, so reset() and
     * reconfigure() invalidate every line by bumping epoch_ in O(1)
     * instead of clearing the array. Value-initialised lines carry
     * epoch 0, which is never current (epoch_ starts at 1), so freshly
     * grown storage is invalid without touching it.
     */
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        std::uint32_t epoch = 0;
        bool dirty = false;
    };

    int sets_;
    int assoc_;
    int lineShift_;
    std::vector<Line> lines_;
    std::uint32_t epoch_ = 1;
    std::uint64_t useCounter_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

/** Event counts produced by hierarchy traversals, for energy accounting. */
struct HierarchyAccessEvents
{
    int il1 = 0;    //!< L1I accesses
    int dl1 = 0;    //!< L1D accesses
    int l2 = 0;     //!< L2 accesses (including fills/writebacks)
    int mem = 0;    //!< main-memory accesses
};

/**
 * The memory hierarchy of one simulated core: split L1s over a unified
 * L2 over flat-latency main memory, all sized from the configuration.
 */
class CacheHierarchy
{
  public:
    /** Build the hierarchy for a configuration. */
    explicit CacheHierarchy(const MicroarchConfig &config);

    /**
     * Re-shape all three caches for a new configuration, invalidating
     * contents and statistics but reusing line storage (see
     * Cache::reconfigure). Leaves the hierarchy exactly as a fresh
     * CacheHierarchy(config) would.
     */
    void reconfigure(const MicroarchConfig &config);

    /**
     * Data access (load or store). Returns total latency in cycles and
     * accumulates energy events into @p events.
     */
    int dataAccess(std::uint64_t addr, bool write,
                   HierarchyAccessEvents &events);

    /**
     * Instruction-fetch access for one I-cache line. Returns latency
     * (1 on a hit).
     */
    int instAccess(std::uint64_t pc, HierarchyAccessEvents &events);

    /** @name Component access for statistics/tests. */
    /** @{ */
    const Cache &il1() const { return il1_; }
    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }
    /** @} */

    /** @name Latencies derived from the Cacti model. */
    /** @{ */
    int il1Latency() const { return il1Latency_; }
    int dl1Latency() const { return dl1Latency_; }
    int l2Latency() const { return l2Latency_; }
    int memLatency() const { return memLatency_; }
    /** @} */

  private:
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    int il1Latency_;
    int dl1Latency_;
    int l2Latency_;
    int memLatency_;
};

} // namespace acdse

