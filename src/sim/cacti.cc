#include "sim/cacti.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/sync.hh"
#include "obs/metrics.hh"

namespace acdse
{

namespace
{

// Calibration constants (see file header): per-unit wordline/bitline
// energies, fixed decoder overhead, and per-bit leakage.
constexpr double kFixedNj = 0.004;
constexpr double kWordlineNjPerBitPort = 2.0e-5;
constexpr double kBitlineNjPerRowPort = 2.0e-5;
constexpr double kCamNjPerRowBit = 6.0e-7;
constexpr double kLeakNjPerBitCycle = 6.0e-9;

/**
 * Memo table for the pure estimators. The key packs the estimator kind
 * and its four integer arguments; the design space only produces a few
 * hundred distinct geometries, so the table saturates almost
 * immediately and every later EnergyModel/CacheHierarchy construction
 * is four map lookups instead of transcendental math.
 */
struct EstimateKey
{
    std::uint8_t kind;  //!< 0 array, 1 cam, 2 cache
    int a, b, c, d;     //!< estimator arguments, in declaration order

    bool operator==(const EstimateKey &) const = default;
};

struct EstimateKeyHash
{
    std::size_t
    operator()(const EstimateKey &k) const noexcept
    {
        // FNV-1a over the five fields; collisions only cost a compare.
        std::uint64_t h = 1469598103934665603ULL;
        auto mix = [&h](std::uint64_t v) {
            h = (h ^ v) * 1099511628211ULL;
        };
        mix(k.kind);
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.b)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.c)));
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.d)));
        return static_cast<std::size_t>(h);
    }
};

struct EstimateMemo
{
    SharedMutex mutex;
    std::unordered_map<EstimateKey, ArrayEstimate, EstimateKeyHash>
        table ACDSE_GUARDED_BY(mutex);
    // Relaxed atomics, not counters under the lock: hit accounting must
    // not extend the reader critical section.
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

EstimateMemo &
estimateMemo()
{
    // Leaked on purpose, like obs::Registry::global(): estimators run
    // from pool workers during static destruction of test fixtures.
    static EstimateMemo *memo = // NOLINT(acdse-local-static)
        new EstimateMemo;
    return *memo;
}

/** Serve @p key from the memo, computing via @p compute on a miss. */
template <typename Compute>
ArrayEstimate
memoised(const EstimateKey &key, Compute &&compute)
{
    EstimateMemo &memo = estimateMemo();
    {
        ReaderLock lock(memo.mutex);
        if (auto it = memo.table.find(key); it != memo.table.end()) {
            memo.hits.fetch_add(1, std::memory_order_relaxed);
            obs::Registry::global().counter("sim/cacti-hit").add();
            return it->second;
        }
    }
    // Compute outside any lock (pure function; racing threads compute
    // identical values) and publish under the writer lock.
    const ArrayEstimate fresh = compute();
    memo.misses.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("sim/cacti-miss").add();
    WriterLock lock(memo.mutex);
    memo.table.emplace(key, fresh);
    return fresh;
}

ArrayEstimate computeArray(int rows, int bitsPerRow, int readPorts,
                           int writePorts);
ArrayEstimate computeCam(int rows, int tagBits, int searchPorts);
ArrayEstimate computeCache(int sizeBytes, int assoc, int lineBytes,
                           int level);

} // namespace

CactiMemoStats
cactiMemoStats()
{
    EstimateMemo &memo = estimateMemo();
    return {memo.hits.load(std::memory_order_relaxed),
            memo.misses.load(std::memory_order_relaxed)};
}

ArrayEstimate
estimateArray(int rows, int bitsPerRow, int readPorts, int writePorts)
{
    return memoised({0, rows, bitsPerRow, readPorts, writePorts}, [=] {
        return computeArray(rows, bitsPerRow, readPorts, writePorts);
    });
}

ArrayEstimate
estimateCam(int rows, int tagBits, int searchPorts)
{
    return memoised({1, rows, tagBits, searchPorts, 0}, [=] {
        return computeCam(rows, tagBits, searchPorts);
    });
}

ArrayEstimate
estimateCache(int sizeBytes, int assoc, int lineBytes, int level)
{
    return memoised({2, sizeBytes, assoc, lineBytes, level}, [=] {
        return computeCache(sizeBytes, assoc, lineBytes, level);
    });
}

namespace
{

ArrayEstimate
computeArray(int rows, int bitsPerRow, int readPorts, int writePorts)
{
    ACDSE_CHECK(rows > 0 && bitsPerRow > 0, "array must be non-empty");
    ACDSE_CHECK(readPorts >= 0 && writePorts >= 0, "bad port counts");
    const double ports = std::max(1, readPorts + writePorts);
    // Wire lengths grow linearly with the port count in both
    // dimensions, so per-access energy picks up a 'ports' factor.
    const double wordline = kWordlineNjPerBitPort * bitsPerRow * ports;
    const double bitline = kBitlineNjPerRowPort * rows * ports;
    ArrayEstimate e;
    e.readEnergyNj = kFixedNj + wordline + bitline;
    e.writeEnergyNj = e.readEnergyNj * 1.1; // full-swing bitlines
    e.leakageNjPerCycle = kLeakNjPerBitCycle *
                          static_cast<double>(rows) * bitsPerRow * ports;
    const double bits = static_cast<double>(rows) * bitsPerRow;
    e.latencyCycles = std::max(
        1, static_cast<int>(std::lround(0.5 * std::log2(bits / 512.0))));
    return e;
}

ArrayEstimate
computeCam(int rows, int tagBits, int searchPorts)
{
    ACDSE_CHECK(rows > 0 && tagBits > 0, "CAM must be non-empty");
    const double ports = std::max(1, searchPorts);
    ArrayEstimate e;
    // A search drives every row's comparator.
    e.readEnergyNj = kFixedNj + kCamNjPerRowBit * rows * tagBits * ports;
    e.writeEnergyNj = kFixedNj + kWordlineNjPerBitPort * tagBits * ports;
    e.leakageNjPerCycle = kLeakNjPerBitCycle * 1.5 *
                          static_cast<double>(rows) * tagBits * ports;
    e.latencyCycles = 1;
    return e;
}

ArrayEstimate
computeCache(int sizeBytes, int assoc, int lineBytes, int level)
{
    ACDSE_CHECK(sizeBytes > 0 && assoc > 0 && lineBytes > 0,
                 "cache must be non-empty");
    ACDSE_CHECK(level == 1 || level == 2, "only two cache levels");
    const int sets = std::max(1, sizeBytes / (assoc * lineBytes));
    const int tag_bits = 28; // ~40-bit addresses, generous tags
    const int bits_per_set = assoc * (lineBytes * 8 + tag_bits);

    ArrayEstimate e = computeArray(sets, bits_per_set, 1, 1);
    // A read only drives one way's worth of data lines after way select;
    // scale the wordline term down accordingly but keep the tag probe.
    e.readEnergyNj = kFixedNj +
                     kWordlineNjPerBitPort *
                         (lineBytes * 8 + assoc * tag_bits) +
                     kBitlineNjPerRowPort * sets;
    e.writeEnergyNj = e.readEnergyNj * 1.1;
    e.leakageNjPerCycle = kLeakNjPerBitCycle * 8.0 *
                          static_cast<double>(sizeBytes);

    const double kb = sizeBytes / 1024.0;
    if (level == 1) {
        // 8KB -> 2 cycles ... 128KB -> 4 cycles.
        e.latencyCycles = 2 + static_cast<int>(std::log2(kb / 8.0) / 2.0);
    } else {
        // 256KB -> 7 cycles ... 4MB -> 9 cycles. Kept deliberately
        // flat: at sampled-interval scale a steep capacity/latency
        // trade-off would dominate the capacity benefit and invert the
        // paper's observation that the best-performing configurations
        // favour large L2s (Fig. 2e).
        e.latencyCycles =
            7 + static_cast<int>(std::log2(kb / 256.0) / 1.5);
    }
    return e;
}

} // namespace

} // namespace acdse
