/**
 * @file
 * Cacti-style timing/energy estimation for SRAM structures.
 *
 * The paper uses Cacti 4.0 for access latencies and (through Wattch)
 * per-access energies of every sized structure. We reproduce the shape
 * of those models rather than their absolute calibration: access energy
 * grows with the array dimensions and the port count (wordline energy
 * scales with the row width, bitline energy with the row count, and
 * wires lengthen linearly with ports), leakage grows with the bit
 * count, and latency grows logarithmically with capacity. Absolute
 * constants are chosen so that a full simulation lands in the nJ-to-mJ
 * range the paper reports.
 */

#pragma once

#include <cstdint>

namespace acdse
{

/** Estimated characteristics of one SRAM structure. */
struct ArrayEstimate
{
    double readEnergyNj;    //!< energy per read access
    double writeEnergyNj;   //!< energy per write access
    double leakageNjPerCycle; //!< static energy per cycle
    int latencyCycles;      //!< access latency
};

/**
 * Model a RAM array (register file, ROB, rename table, predictor...).
 *
 * @param rows        number of entries.
 * @param bitsPerRow  payload bits per entry.
 * @param readPorts   read ports.
 * @param writePorts  write ports.
 */
ArrayEstimate estimateArray(int rows, int bitsPerRow, int readPorts,
                            int writePorts);

/**
 * Model a CAM structure (issue-queue wakeup, LSQ search): a search
 * touches every row's tag comparator.
 */
ArrayEstimate estimateCam(int rows, int tagBits, int searchPorts);

/**
 * Model a set-associative cache: data + tag arrays, latency from the
 * capacity (Cacti's dominant term at fixed technology).
 *
 * @param sizeBytes  total capacity.
 * @param assoc      associativity.
 * @param lineBytes  line size.
 * @param level      1 for L1 (latency 2-4 cycles), 2 for L2 (6-14).
 */
ArrayEstimate estimateCache(int sizeBytes, int assoc, int lineBytes,
                            int level);

/**
 * Memoisation statistics of the estimator cache (see cacti.cc): every
 * estimateArray/estimateCam/estimateCache call is served from a flat
 * map keyed by its arguments, because the estimates are pure functions
 * of a handful of discrete geometries while a simulation campaign
 * re-derives them hundreds of thousands of times (one EnergyModel +
 * CacheHierarchy per (config, program) cell). Mirrored to the obs
 * counters sim/cacti-hit and sim/cacti-miss.
 */
struct CactiMemoStats
{
    std::uint64_t hits;     //!< lookups served from the memo table
    std::uint64_t misses;   //!< lookups that computed a fresh estimate
};

/** Current process-wide memo statistics. */
CactiMemoStats cactiMemoStats();

} // namespace acdse

