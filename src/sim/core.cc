#include "sim/core.hh"

#include <algorithm>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "sim/core_ops.hh"

namespace acdse
{

OooCore::OooCore(const MicroarchConfig &config, EnergyModel &energy)
    : config_(config), energy_(energy), hierarchy_(config),
      bpred_(config.bpredEntries()), btb_(config.btbEntries())
{
}

void
OooCore::warm(const Trace &trace, std::size_t begin, std::size_t end)
{
    end = std::min(end, trace.size());
    HierarchyAccessEvents discard;
    const std::uint64_t line_mask =
        ~static_cast<std::uint64_t>(fixedParams().l1LineBytes - 1);
    std::uint64_t last_line = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = begin; i < end; ++i) {
        const TraceInstruction &inst = trace[i];
        const std::uint64_t line = inst.pc & line_mask;
        if (line != last_line) {
            hierarchy_.instAccess(inst.pc, discard);
            last_line = line;
        }
        if (isMemClass(inst.cls)) {
            hierarchy_.dataAccess(inst.addr,
                                  inst.cls == InstClass::Store, discard);
        } else if (inst.cls == InstClass::Branch) {
            bpred_.update(inst.pc, inst.taken);
            if (inst.taken && !btb_.lookup(inst.pc))
                btb_.update(inst.pc, inst.target);
        }
    }
}

CoreStats
OooCore::run(const Trace &trace, std::size_t begin, std::size_t end)
{
    CoreScratch scratch;
    return run(trace, begin, end, scratch);
}

CoreStats
OooCore::run(const Trace &trace, std::size_t begin, std::size_t end,
             CoreScratch &scratch)
{
    end = std::min(end, trace.size());
    ACDSE_CHECK(begin < end, "empty simulation interval");

    const std::size_t width = static_cast<std::size_t>(config_.width());
    const std::size_t rob_size =
        static_cast<std::size_t>(config_.robSize());
    const std::size_t iq_size = static_cast<std::size_t>(config_.iqSize());
    const std::size_t lsq_size =
        static_cast<std::size_t>(config_.lsqSize());
    const int rd_ports = config_.rfReadPorts();
    const int wr_ports = config_.rfWritePorts();
    const std::size_t max_branches =
        static_cast<std::size_t>(config_.maxBranches());
    const FixedParams &fp = fixedParams();
    const FunctionalUnitCounts fus = functionalUnitsForWidth(
        config_.width());
    const int fu_counts[4] = {fus.intAlu, fus.intMul, fus.fpAlu,
                              fus.fpMulDiv};
    const std::size_t rename_regs = static_cast<std::size_t>(std::max(
        1, config_.rfSize() - fp.archRegs));

    CoreStats stats;
    const std::uint64_t il1_miss0 = hierarchy_.il1().misses();
    const std::uint64_t dl1_miss0 = hierarchy_.dl1().misses();
    const std::uint64_t l2_miss0 = hierarchy_.l2().misses();

    // --- Pipeline state (storage borrowed from the scratch) ------------
    auto &rob = scratch.rob;
    rob.assign(rob_size, CoreScratch::RobSlot{});
    std::size_t commit_idx = begin;   // oldest in-flight instruction
    std::size_t dispatch_idx = begin; // next to enter the ROB
    std::size_t fetch_idx = begin;    // next to fetch
    std::size_t rob_count = 0, lsq_count = 0, regs_used = 0;

    // Fetch queue: indices paired with the cycle they become
    // dispatchable (front-end depth).
    using Fetched = CoreScratch::Fetched;
    auto &fetch_queue = scratch.fetchQueue; // FIFO via head index
    fetch_queue.clear();
    std::size_t fq_head = 0;
    const std::size_t fq_cap = width * (static_cast<std::size_t>(
                                            fp.frontEndStages) + 2);

    // Issue queue: indices of dispatched, un-issued instructions
    // (age-ordered).
    auto &iq = scratch.iq;
    iq.clear();
    iq.reserve(iq_size);

    // Per-cycle rings: writeback-port usage and branch resolutions.
    auto &wb_ring = scratch.wbRing;
    wb_ring.assign(kCoreRingSize, 0);
    auto &resolve_ring = scratch.resolveRing;
    resolve_ring.assign(kCoreRingSize, 0);

    // Non-pipelined FP dividers: busy-until cycles per unit.
    auto &div_busy = scratch.divBusy;
    div_busy.assign(static_cast<std::size_t>(fus.fpMulDiv), 0);

    std::uint64_t cycle = 0;
    std::uint64_t fetch_blocked_until = 0;
    bool fetch_wait_branch = false;   // stalled on a mispredict
    std::size_t wait_branch_idx = 0;  // which branch we wait for
    std::size_t inflight_branches = 0;
    std::uint64_t last_fetch_line =
        std::numeric_limits<std::uint64_t>::max();

    auto slot = [&](std::size_t idx) -> CoreScratch::RobSlot & {
        return rob[idx % rob_size];
    };

    auto src_ready = [&](std::size_t idx, std::uint32_t dist) {
        if (!dist)
            return true;
        const std::size_t producer = idx - dist;
        if (producer < commit_idx || dist > static_cast<std::uint32_t>(
                                                idx - begin))
            return true; // committed, or before the interval
        const CoreScratch::RobSlot &p = slot(producer);
        return p.issued && p.readyCycle <= cycle;
    };

    // Find the first cycle at or after `from` with a free write port.
    auto writeback_slot = [&](std::uint64_t from) {
        std::uint64_t c = std::max(from, cycle + 1);
        for (std::size_t hops = 0; hops < kCoreRingSize - 1; ++hops, ++c) {
            if (wb_ring[c % kCoreRingSize] <
                static_cast<std::uint8_t>(wr_ports)) {
                ++wb_ring[c % kCoreRingSize];
                return c;
            }
        }
        return c;
    };

    const std::uint64_t line_mask =
        ~static_cast<std::uint64_t>(fp.l1LineBytes - 1);
    HierarchyAccessEvents mem_events;

    const std::uint64_t cycle_limit =
        static_cast<std::uint64_t>(end - begin) * 600 + 200000;
    while (commit_idx < end) {
        // Free the write-port ring slot for this cycle so it can be
        // reused a full ring period later; resolve branches due now.
        inflight_branches -= resolve_ring[cycle % kCoreRingSize];
        resolve_ring[cycle % kCoreRingSize] = 0;

        // ---- Commit -----------------------------------------------------
        for (std::size_t c = 0; c < width && commit_idx < end; ++c) {
            if (commit_idx >= dispatch_idx)
                break; // nothing dispatched
            CoreScratch::RobSlot &e = slot(commit_idx);
            if (!e.issued || e.readyCycle > cycle)
                break;
            const TraceInstruction &inst = trace[commit_idx];
            if (inst.cls == InstClass::Store) {
                // Stores drain to the D-cache at commit.
                hierarchy_.dataAccess(inst.addr, true, mem_events);
                --lsq_count;
            } else if (inst.cls == InstClass::Load) {
                --lsq_count;
            }
            if (producesResult(inst.cls))
                --regs_used;
            if (inst.cls == InstClass::Branch) {
                ++stats.branches;
                energy_.add(EnergyEvent::BpredUpdate);
            }
            energy_.add(EnergyEvent::RobRead);
            --rob_count;
            ++commit_idx;
            ++stats.instructions;
        }

        // ---- Issue ------------------------------------------------------
        if (!iq.empty()) {
            std::size_t issued = 0;
            int rd_left = rd_ports;
            int fu_left[4] = {fu_counts[0], fu_counts[1], fu_counts[2],
                              fu_counts[3]};
            std::size_t kept = 0;
            for (std::size_t pos = 0; pos < iq.size(); ++pos) {
                const std::size_t idx = iq[pos];
                bool can_issue = issued < width;
                const TraceInstruction &inst = trace[idx];
                const FuPool pool = fuPoolFor(inst.cls);
                int srcs = (inst.srcDist1 ? 1 : 0) +
                           (inst.srcDist2 ? 1 : 0);
                if (can_issue) {
                    can_issue = fu_left[static_cast<std::size_t>(pool)] >
                                    0 &&
                                rd_left >= srcs &&
                                src_ready(idx, inst.srcDist1) &&
                                src_ready(idx, inst.srcDist2);
                }
                if (can_issue && inst.cls == InstClass::FpDiv) {
                    // Non-pipelined: need a divider idle right now.
                    can_issue = false;
                    for (auto &busy : div_busy) {
                        if (busy <= cycle) {
                            busy = cycle + static_cast<std::uint64_t>(
                                               fp.fpDivLatency);
                            can_issue = true;
                            break;
                        }
                    }
                }
                if (!can_issue) {
                    iq[kept++] = idx;
                    continue;
                }

                ++issued;
                rd_left -= srcs;
                --fu_left[static_cast<std::size_t>(pool)];
                energy_.add(EnergyEvent::IqIssue);
                energy_.add(EnergyEvent::RfRead,
                            static_cast<std::uint64_t>(srcs));

                int latency = execLatency(inst.cls);
                if (inst.cls == InstClass::Load) {
                    latency += hierarchy_.dataAccess(inst.addr, false,
                                                     mem_events);
                    energy_.add(EnergyEvent::LsqSearch);
                }
                const std::uint64_t done =
                    cycle + static_cast<std::uint64_t>(latency);

                CoreScratch::RobSlot &e = slot(idx);
                e.issued = true;
                if (producesResult(inst.cls)) {
                    e.readyCycle = writeback_slot(done);
                    energy_.add(EnergyEvent::RfWrite);
                    energy_.add(EnergyEvent::ResultBus);
                    energy_.add(EnergyEvent::IqWakeup);
                } else {
                    e.readyCycle = done;
                }
                energy_.add(fuEnergyFor(inst.cls));

                if (inst.cls == InstClass::Branch) {
                    // Resolution: the branch count drops and, if this is
                    // the branch fetch is stalled on, fetch restarts
                    // after the redirect penalty.
                    const std::uint64_t resolve = done;
                    ++resolve_ring[resolve % kCoreRingSize];
                    if (fetch_wait_branch && wait_branch_idx == idx) {
                        fetch_wait_branch = false;
                        fetch_blocked_until = std::max(
                            fetch_blocked_until,
                            resolve + static_cast<std::uint64_t>(
                                          fp.mispredictRedirect));
                    }
                }
            }
            iq.resize(kept);
        }

        // ---- Dispatch ---------------------------------------------------
        for (std::size_t d = 0; d < width; ++d) {
            if (fq_head >= fetch_queue.size())
                break;
            const Fetched &f = fetch_queue[fq_head];
            if (f.readyAt > cycle)
                break;
            const TraceInstruction &inst = trace[f.idx];
            if (rob_count == rob_size) {
                ++stats.dispatchStallRob;
                break;
            }
            if (iq.size() == iq_size) {
                ++stats.dispatchStallIq;
                break;
            }
            if (isMemClass(inst.cls) && lsq_count == lsq_size) {
                ++stats.dispatchStallLsq;
                break;
            }
            if (producesResult(inst.cls) && regs_used == rename_regs) {
                ++stats.dispatchStallRegs;
                break;
            }

            CoreScratch::RobSlot &e = slot(f.idx);
            e.readyCycle = kCoreNotReady;
            e.issued = false;
            // (mispredicted was set at fetch.)
            ++rob_count;
            iq.push_back(f.idx);
            if (isMemClass(inst.cls)) {
                ++lsq_count;
                energy_.add(EnergyEvent::LsqWrite);
            }
            if (producesResult(inst.cls))
                ++regs_used;
            energy_.add(EnergyEvent::RenameLookup);
            energy_.add(EnergyEvent::RobWrite);
            energy_.add(EnergyEvent::IqWrite);
            ++dispatch_idx;
            ++fq_head;
        }
        if (fq_head > 2 * fq_cap) {
            fetch_queue.erase(fetch_queue.begin(),
                              fetch_queue.begin() +
                                  static_cast<std::ptrdiff_t>(fq_head));
            fq_head = 0;
        }

        // ---- Fetch ------------------------------------------------------
        if (!fetch_wait_branch && cycle >= fetch_blocked_until) {
            for (std::size_t f = 0; f < width && fetch_idx < end; ++f) {
                if (fetch_queue.size() - fq_head >= fq_cap)
                    break;
                const TraceInstruction &inst = trace[fetch_idx];

                // I-cache: access once per new line.
                const std::uint64_t line = inst.pc & line_mask;
                if (line != last_fetch_line) {
                    const int lat =
                        hierarchy_.instAccess(inst.pc, mem_events);
                    last_fetch_line = line;
                    if (lat > 1) {
                        fetch_blocked_until =
                            cycle + static_cast<std::uint64_t>(lat);
                        break;
                    }
                }

                bool stop_after = false;
                if (inst.cls == InstClass::Branch) {
                    if (inflight_branches >= max_branches) {
                        ++stats.fetchStallBranches;
                        break;
                    }
                    ++inflight_branches;
                    energy_.add(EnergyEvent::BpredLookup);
                    energy_.add(EnergyEvent::BtbLookup);
                    const bool pred = inst.conditional
                                          ? bpred_.predict(inst.pc)
                                          : true;
                    bpred_.update(inst.pc, inst.taken);
                    const bool btb_hit = btb_.lookup(inst.pc);
                    if (inst.taken && !btb_hit) {
                        btb_.update(inst.pc, inst.target);
                        energy_.add(EnergyEvent::BtbUpdate);
                        ++stats.btbMisses;
                    }
                    if (pred != inst.taken) {
                        // Direction mispredict: fetch stops until the
                        // branch resolves.
                        ++stats.mispredicts;
                        fetch_wait_branch = true;
                        wait_branch_idx = fetch_idx;
                        stop_after = true;
                    } else if (inst.taken) {
                        if (!btb_hit) {
                            // Correct direction but unknown target:
                            // decode-time redirect bubble.
                            fetch_blocked_until =
                                cycle + static_cast<std::uint64_t>(
                                            fp.mispredictRedirect);
                        }
                        // Cannot fetch past a taken branch this cycle.
                        stop_after = true;
                        last_fetch_line =
                            std::numeric_limits<std::uint64_t>::max();
                    }
                }

                fetch_queue.push_back(
                    {fetch_idx,
                     cycle + static_cast<std::uint64_t>(
                                 fp.frontEndStages)});
                ++fetch_idx;
                if (stop_after)
                    break;
            }
        }

        // This cycle's write-port slot can never be referenced again
        // (writebacks are always scheduled at cycle+1 or later), so
        // clear it for reuse one ring period from now.
        wb_ring[cycle % kCoreRingSize] = 0;

        ++cycle;
        ACDSE_CHECK(cycle < cycle_limit,
                     "pipeline deadlock detected in ", trace.name(),
                     " at instruction ", commit_idx);
    }

    stats.cycles = cycle;
    stats.il1Misses = hierarchy_.il1().misses() - il1_miss0;
    stats.dl1Misses = hierarchy_.dl1().misses() - dl1_miss0;
    stats.l2Misses = hierarchy_.l2().misses() - l2_miss0;

    energy_.add(EnergyEvent::Il1Access,
                static_cast<std::uint64_t>(mem_events.il1));
    energy_.add(EnergyEvent::Dl1Access,
                static_cast<std::uint64_t>(mem_events.dl1));
    energy_.add(EnergyEvent::L2Access,
                static_cast<std::uint64_t>(mem_events.l2));
    energy_.add(EnergyEvent::MemAccess,
                static_cast<std::uint64_t>(mem_events.mem));
    return stats;
}

} // namespace acdse
