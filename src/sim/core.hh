/**
 * @file
 * Cycle-level out-of-order superscalar core model.
 *
 * Trace-driven analogue of the paper's SimpleScalar/Wattch setup: a
 * fetch/rename-dispatch/issue/execute/writeback/commit pipeline in
 * which every one of the 13 varied parameters is a structural limit:
 *
 *  - width bounds fetch, dispatch, issue and commit bandwidth and sets
 *    the functional-unit pool (Table 2b);
 *  - ROB / IQ / LSQ occupancy stalls dispatch when full;
 *  - physical-register-file size bounds renaming, read ports bound
 *    operand reads at issue, write ports arbitrate writeback;
 *  - the gshare predictor and BTB drive front-end redirects, and the
 *    in-flight-branch limit stalls fetch;
 *  - the I-cache gates fetch, the D-cache/L2 set load latencies.
 *
 * Standard trace-driven simplifications (documented in DESIGN.md): no
 * wrong-path execution (a mispredict stalls fetch until the branch
 * resolves plus a redirect penalty) and perfect store-to-load
 * disambiguation.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/microarch_config.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/energy.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Ring size for per-cycle event counters; must exceed any latency. */
constexpr std::size_t kCoreRingSize = 1024;

/** Result-not-ready sentinel for in-flight instructions. */
constexpr std::uint64_t kCoreNotReady = ~std::uint64_t{0};

/**
 * Reusable storage for the pipeline structures one timed run needs
 * (ROB slots, fetch queue, issue queue, per-cycle rings, divider busy
 * timers). OooCore::run() historically allocated these per call; a
 * campaign runs hundreds of thousands of short simulations, so callers
 * that loop (Campaign fill, the lane-batched replay path in
 * sim/batch.hh) own one scratch per worker and hand it to every run.
 * Contents are overwritten at the start of each run; only capacity
 * carries over.
 */
struct CoreScratch
{
    /** Per-in-flight-instruction bookkeeping (ROB ring slot). */
    struct RobSlot
    {
        std::uint64_t readyCycle;   //!< result availability cycle
        bool issued;                //!< left the issue queue
    };

    /** One fetched instruction waiting to dispatch (front-end depth). */
    struct Fetched
    {
        std::size_t idx;            //!< trace index
        std::uint64_t readyAt;      //!< cycle it becomes dispatchable
    };

    std::vector<RobSlot> rob;           //!< ROB ring, robSize slots
    std::vector<Fetched> fetchQueue;    //!< FIFO via head index
    std::vector<std::size_t> iq;        //!< age-ordered issue queue
    /**
     * Parallel to iq: the earliest cycle the entry's operands can be
     * ready, or 0 when unknown. A nonzero value is exact -- the max of
     * both producers' immutable readyCycle -- so the batched engine
     * skips the entry without rescanning until the value expires. The
     * scalar core leaves this empty.
     */
    std::vector<std::uint64_t> iqSleep;
    std::vector<std::uint8_t> wbRing;   //!< write-port usage per cycle
    std::vector<std::uint8_t> resolveRing; //!< branch resolutions
    std::vector<std::uint64_t> divBusy; //!< per-divider busy-until
};

/** Statistics of one timed run. */
struct CoreStats
{
    std::uint64_t cycles = 0;           //!< total cycles
    std::uint64_t instructions = 0;     //!< committed instructions
    std::uint64_t branches = 0;         //!< committed branches
    std::uint64_t mispredicts = 0;      //!< direction mispredictions
    std::uint64_t btbMisses = 0;        //!< taken branches missing a target
    std::uint64_t il1Misses = 0;        //!< L1I misses
    std::uint64_t dl1Misses = 0;        //!< L1D misses
    std::uint64_t l2Misses = 0;         //!< L2 misses
    std::uint64_t dispatchStallRob = 0; //!< cycles dispatch blocked on ROB
    std::uint64_t dispatchStallIq = 0;  //!< ... on the issue queue
    std::uint64_t dispatchStallLsq = 0; //!< ... on the LSQ
    std::uint64_t dispatchStallRegs = 0; //!< ... on physical registers
    std::uint64_t fetchStallBranches = 0; //!< fetch blocked on branch limit

    /** Committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/** One core instance: build per configuration, run once per trace. */
class OooCore
{
  public:
    /**
     * @param config the design point to model.
     * @param energy event sink for Wattch-style accounting (may outlive
     *               several runs; counts accumulate).
     */
    OooCore(const MicroarchConfig &config, EnergyModel &energy);

    /**
     * Run the pipeline over trace instructions [begin, end) and return
     * the timing statistics. Microarchitectural state (caches,
     * predictors) persists across calls, enabling warm-up runs and
     * SimPoint-style interval simulation.
     */
    CoreStats run(const Trace &trace, std::size_t begin = 0,
                  std::size_t end = SIZE_MAX);

    /**
     * As run(), but borrowing @p scratch for the pipeline structures
     * instead of allocating them -- callers that simulate in a loop
     * reuse one scratch across runs (results are identical either
     * way; the scratch is storage, never state).
     */
    CoreStats run(const Trace &trace, std::size_t begin, std::size_t end,
                  CoreScratch &scratch);

    /**
     * Functional warming (SMARTS-style): stream instructions [begin,
     * end) through the caches and branch predictor without modelling
     * timing and without recording energy events. Orders of magnitude
     * cheaper than run(); used between detailed measurement units.
     */
    void warm(const Trace &trace, std::size_t begin, std::size_t end);

    /** The memory hierarchy (for statistics). */
    const CacheHierarchy &hierarchy() const { return hierarchy_; }

  private:
    const MicroarchConfig config_;
    EnergyModel &energy_;
    CacheHierarchy hierarchy_;
    GsharePredictor bpred_;
    Btb btb_;
};

} // namespace acdse

