/**
 * @file
 * Per-instruction-class properties shared by the scalar core model
 * (core.cc) and the lane-batched replay path (batch.cc).
 *
 * Both paths must map an InstClass to the *same* execution latency,
 * functional-unit pool and energy event, or the batched simulator's
 * bit-identity contract against scalar simulate() breaks. Keeping the
 * tables in one header makes divergence a link error instead of a
 * silently drifting copy.
 */

#pragma once

#include <cstddef>

#include "arch/parameter.hh"
#include "base/logging.hh"
#include "sim/energy.hh"
#include "trace/instruction.hh"

namespace acdse
{

/** Execution latency (excluding memory) for each class. */
inline int
execLatency(InstClass cls)
{
    const FixedParams &fp = fixedParams();
    switch (cls) {
      case InstClass::IntAlu: return fp.intAluLatency;
      case InstClass::IntMul: return fp.intMulLatency;
      case InstClass::FpAlu: return fp.fpAluLatency;
      case InstClass::FpMul: return fp.fpMulLatency;
      case InstClass::FpDiv: return fp.fpDivLatency;
      case InstClass::Load: return 1;  // address generation
      case InstClass::Store: return 1; // address generation
      case InstClass::Branch: return fp.intAluLatency;
      default: panic("bad instruction class");
    }
}

/** Which functional-unit pool a class issues to. */
enum class FuPool : std::size_t { IntAlu, IntMul, FpAlu, FpMulDiv, Count };

/** Number of functional-unit pools. */
constexpr std::size_t kNumFuPools =
    static_cast<std::size_t>(FuPool::Count);

/** The pool an instruction class issues to. */
inline FuPool
fuPoolFor(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::Branch:
        return FuPool::IntAlu;
      case InstClass::IntMul:
        return FuPool::IntMul;
      case InstClass::FpAlu:
        return FuPool::FpAlu;
      case InstClass::FpMul:
      case InstClass::FpDiv:
        return FuPool::FpMulDiv;
      default:
        panic("bad instruction class");
    }
}

/** The dynamic-energy event one executed instruction of a class costs. */
inline EnergyEvent
fuEnergyFor(InstClass cls)
{
    switch (cls) {
      case InstClass::IntMul: return EnergyEvent::FuIntMul;
      case InstClass::FpAlu: return EnergyEvent::FuFpAlu;
      case InstClass::FpMul: return EnergyEvent::FuFpMul;
      case InstClass::FpDiv: return EnergyEvent::FuFpDiv;
      default: return EnergyEvent::FuIntAlu;
    }
}

} // namespace acdse
