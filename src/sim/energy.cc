#include "sim/energy.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "sim/cacti.hh"

namespace acdse
{

const char *
energyEventName(EnergyEvent event)
{
    switch (event) {
      case EnergyEvent::Il1Access: return "il1-access";
      case EnergyEvent::Dl1Access: return "dl1-access";
      case EnergyEvent::L2Access: return "l2-access";
      case EnergyEvent::MemAccess: return "mem-access";
      case EnergyEvent::BpredLookup: return "bpred-lookup";
      case EnergyEvent::BpredUpdate: return "bpred-update";
      case EnergyEvent::BtbLookup: return "btb-lookup";
      case EnergyEvent::BtbUpdate: return "btb-update";
      case EnergyEvent::RenameLookup: return "rename-lookup";
      case EnergyEvent::RobWrite: return "rob-write";
      case EnergyEvent::RobRead: return "rob-read";
      case EnergyEvent::IqWrite: return "iq-write";
      case EnergyEvent::IqWakeup: return "iq-wakeup";
      case EnergyEvent::IqIssue: return "iq-issue";
      case EnergyEvent::LsqWrite: return "lsq-write";
      case EnergyEvent::LsqSearch: return "lsq-search";
      case EnergyEvent::RfRead: return "rf-read";
      case EnergyEvent::RfWrite: return "rf-write";
      case EnergyEvent::FuIntAlu: return "fu-int-alu";
      case EnergyEvent::FuIntMul: return "fu-int-mul";
      case EnergyEvent::FuFpAlu: return "fu-fp-alu";
      case EnergyEvent::FuFpMul: return "fu-fp-mul";
      case EnergyEvent::FuFpDiv: return "fu-fp-div";
      case EnergyEvent::ResultBus: return "result-bus";
      default: panic("bad energy event");
    }
}

EnergyModel::EnergyModel(const MicroarchConfig &config)
{
    reconfigure(config);
}

void
EnergyModel::reconfigure(const MicroarchConfig &config)
{
    counts_.fill(0);
    const FixedParams &fp = fixedParams();
    const int width = config.width();
    auto set = [&](EnergyEvent ev, double nj) {
        costsNj_[static_cast<std::size_t>(ev)] = nj;
    };

    // Caches.
    const ArrayEstimate il1 = estimateCache(
        config.il1Bytes(), fp.il1Assoc, fp.l1LineBytes, 1);
    const ArrayEstimate dl1 = estimateCache(
        config.dl1Bytes(), fp.dl1Assoc, fp.l1LineBytes, 1);
    const ArrayEstimate l2 = estimateCache(
        config.l2Bytes(), fp.l2Assoc, fp.l2LineBytes, 2);
    set(EnergyEvent::Il1Access, il1.readEnergyNj);
    set(EnergyEvent::Dl1Access, dl1.readEnergyNj);
    set(EnergyEvent::L2Access, l2.readEnergyNj);
    set(EnergyEvent::MemAccess, 4.0); // off-chip DRAM access

    // Branch predictor structures.
    const ArrayEstimate bpred =
        estimateArray(config.bpredEntries(), 2, 1, 1);
    const ArrayEstimate btb = estimateArray(config.btbEntries(), 64, 1, 1);
    set(EnergyEvent::BpredLookup, bpred.readEnergyNj);
    set(EnergyEvent::BpredUpdate, bpred.writeEnergyNj);
    set(EnergyEvent::BtbLookup, btb.readEnergyNj);
    set(EnergyEvent::BtbUpdate, btb.writeEnergyNj);

    // Rename table: one mapping per architectural register, as many
    // ports as the dispatch width needs.
    const ArrayEstimate rename = estimateArray(
        fp.archRegs * 2, static_cast<int>(
            std::ceil(std::log2(config.rfSize())) + 1),
        3 * width, width);
    set(EnergyEvent::RenameLookup, rename.readEnergyNj);

    // Window structures.
    const ArrayEstimate rob =
        estimateArray(config.robSize(), 128, width, width);
    set(EnergyEvent::RobWrite, rob.writeEnergyNj);
    set(EnergyEvent::RobRead, rob.readEnergyNj);
    const ArrayEstimate iq_ram =
        estimateArray(config.iqSize(), 64, width, width);
    const ArrayEstimate iq_cam = estimateCam(config.iqSize(), 16, width);
    set(EnergyEvent::IqWrite, iq_ram.writeEnergyNj);
    set(EnergyEvent::IqWakeup, iq_cam.readEnergyNj);
    set(EnergyEvent::IqIssue, iq_ram.readEnergyNj);
    const ArrayEstimate lsq_ram =
        estimateArray(config.lsqSize(), 80, width, width);
    const ArrayEstimate lsq_cam = estimateCam(config.lsqSize(), 40, 2);
    set(EnergyEvent::LsqWrite, lsq_ram.writeEnergyNj);
    set(EnergyEvent::LsqSearch, lsq_cam.readEnergyNj);

    // Register file: the design space's port counts enter here.
    const ArrayEstimate rf = estimateArray(
        config.rfSize(), 64, config.rfReadPorts(), config.rfWritePorts());
    set(EnergyEvent::RfRead, rf.readEnergyNj);
    set(EnergyEvent::RfWrite, rf.writeEnergyNj);

    // Functional units: fixed per-op costs.
    set(EnergyEvent::FuIntAlu, 0.010);
    set(EnergyEvent::FuIntMul, 0.050);
    set(EnergyEvent::FuFpAlu, 0.040);
    set(EnergyEvent::FuFpMul, 0.080);
    set(EnergyEvent::FuFpDiv, 0.300);

    // Result bus length grows with the window and the port count.
    set(EnergyEvent::ResultBus,
        0.004 + 0.0002 * config.iqSize() + 0.001 * width);

    // Leakage: every sized structure contributes; functional units
    // contribute in proportion to their count.
    const FunctionalUnitCounts fus = functionalUnitsForWidth(width);
    leakagePerCycleNj_ =
        il1.leakageNjPerCycle + dl1.leakageNjPerCycle +
        l2.leakageNjPerCycle + bpred.leakageNjPerCycle +
        btb.leakageNjPerCycle + rob.leakageNjPerCycle +
        iq_ram.leakageNjPerCycle + iq_cam.leakageNjPerCycle +
        lsq_ram.leakageNjPerCycle + lsq_cam.leakageNjPerCycle +
        rf.leakageNjPerCycle + rename.leakageNjPerCycle +
        0.002 * (fus.intAlu + fus.intMul) +
        0.004 * (fus.fpAlu + fus.fpMulDiv);

    // Clock tree plus conditional-clocking residue: idle copies of the
    // per-issue-slot datapath still burn ~10% of their active energy
    // every cycle, which is what makes needlessly wide machines
    // expensive (paper Fig. 3g).
    const double per_slot_active =
        iq_ram.readEnergyNj + 2.0 * rf.readEnergyNj + rf.writeEnergyNj +
        rob.writeEnergyNj + costNj(EnergyEvent::FuIntAlu);
    clockPerCycleNj_ = 0.02 + 0.01 * width + 0.10 * width *
                                                 per_slot_active;
}

double
EnergyModel::dynamicEnergyNj() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i)
        total += costsNj_[i] * static_cast<double>(counts_[i]);
    return total;
}

double
EnergyModel::staticEnergyNj(std::uint64_t cycles) const
{
    return (leakagePerCycleNj_ + clockPerCycleNj_) *
           static_cast<double>(cycles);
}

std::vector<EnergyModel::BreakdownEntry>
EnergyModel::breakdown(std::uint64_t cycles) const
{
    std::vector<BreakdownEntry> entries;
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i) {
        const auto event = static_cast<EnergyEvent>(i);
        entries.push_back({energyEventName(event), counts_[i],
                           costsNj_[i] * static_cast<double>(counts_[i]),
                           0.0});
    }
    entries.push_back({"leakage", cycles,
                       leakagePerCycleNj_ * static_cast<double>(cycles),
                       0.0});
    entries.push_back({"clock+idle", cycles,
                       clockPerCycleNj_ * static_cast<double>(cycles),
                       0.0});

    const double total = totalEnergyNj(cycles);
    for (auto &entry : entries)
        entry.share = total > 0.0 ? entry.energyNj / total : 0.0;
    std::sort(entries.begin(), entries.end(),
              [](const BreakdownEntry &a, const BreakdownEntry &b) {
                  return a.energyNj > b.energyNj;
              });
    return entries;
}

} // namespace acdse
