/**
 * @file
 * Wattch-style event-based energy accounting.
 *
 * The timing model counts micro-events (structure accesses, functional-
 * unit operations, cache traffic); this model converts counts into
 * energy using per-event costs from the Cacti-style estimator, then
 * adds per-cycle leakage for every structure plus a clock-tree term and
 * a conditional-clocking residue (idle structures still burn ~10% of
 * their active power, Wattch's "cc3" style), both of which grow with
 * the machine's width and structure sizes.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/microarch_config.hh"

namespace acdse
{

/** Every dynamic-energy event the core model reports. */
enum class EnergyEvent : std::size_t
{
    Il1Access,      //!< L1I read (per fetched line)
    Dl1Access,      //!< L1D read/write
    L2Access,       //!< unified-L2 read/write (incl. fills/writebacks)
    MemAccess,      //!< off-chip access
    BpredLookup,    //!< direction prediction
    BpredUpdate,    //!< direction training
    BtbLookup,      //!< target lookup
    BtbUpdate,      //!< target install
    RenameLookup,   //!< per-dispatch rename-table read/write
    RobWrite,       //!< ROB allocate
    RobRead,        //!< ROB commit read
    IqWrite,        //!< issue-queue insert
    IqWakeup,       //!< tag broadcast on a completing result
    IqIssue,        //!< selection + payload read on issue
    LsqWrite,       //!< LSQ insert
    LsqSearch,      //!< load disambiguation search
    RfRead,         //!< register-file operand read
    RfWrite,        //!< register-file result write
    FuIntAlu,       //!< integer ALU op
    FuIntMul,       //!< integer multiply
    FuFpAlu,        //!< FP add
    FuFpMul,        //!< FP multiply
    FuFpDiv,        //!< FP divide
    ResultBus,      //!< result broadcast per writeback
    NumEvents,      //!< sentinel
};

/** Number of distinct event kinds. */
constexpr std::size_t kNumEnergyEvents =
    static_cast<std::size_t>(EnergyEvent::NumEvents);

/** Printable name of an energy event. */
const char *energyEventName(EnergyEvent event);

/** Per-configuration energy model and event accumulator. */
class EnergyModel
{
  public:
    /** Precompute all per-event costs for one configuration. */
    explicit EnergyModel(const MicroarchConfig &config);

    /**
     * Re-derive all per-event costs for a new configuration and zero
     * the event counts -- equivalent to constructing a fresh model
     * (the lane-batched simulator recycles one model per lane).
     */
    void reconfigure(const MicroarchConfig &config);

    /** Record @p count occurrences of an event. */
    void
    add(EnergyEvent event, std::uint64_t count = 1)
    {
        counts_[static_cast<std::size_t>(event)] += count;
    }

    /** Count recorded so far for one event. */
    std::uint64_t
    count(EnergyEvent event) const
    {
        return counts_[static_cast<std::size_t>(event)];
    }

    /** Per-event energy cost in nJ (exposed for tests/ablations). */
    double
    costNj(EnergyEvent event) const
    {
        return costsNj_[static_cast<std::size_t>(event)];
    }

    /** Dynamic energy of everything recorded so far, in nJ. */
    double dynamicEnergyNj() const;

    /** Static + clock energy for a run of @p cycles, in nJ. */
    double staticEnergyNj(std::uint64_t cycles) const;

    /** Total energy for a run of @p cycles, in nJ. */
    double
    totalEnergyNj(std::uint64_t cycles) const
    {
        return dynamicEnergyNj() + staticEnergyNj(cycles);
    }

    /** Total leakage per cycle (exposed for tests), in nJ. */
    double leakagePerCycleNj() const { return leakagePerCycleNj_; }

    /** Clock + idle per-cycle overhead (exposed for tests), in nJ. */
    double clockPerCycleNj() const { return clockPerCycleNj_; }

    /** Reset all event counts. */
    void resetCounts() { counts_.fill(0); }

    /** One line of the per-structure energy breakdown. */
    struct BreakdownEntry
    {
        const char *name;       //!< event/category name
        std::uint64_t count;    //!< events recorded
        double energyNj;        //!< total energy attributed
        double share;           //!< fraction of the total
    };

    /**
     * Wattch-style energy breakdown for a run of @p cycles: one entry
     * per dynamic event kind plus "leakage" and "clock" categories,
     * sorted by energy (largest first). Shares sum to 1.
     */
    std::vector<BreakdownEntry> breakdown(std::uint64_t cycles) const;

  private:
    std::array<double, kNumEnergyEvents> costsNj_{};
    std::array<std::uint64_t, kNumEnergyEvents> counts_{};
    double leakagePerCycleNj_ = 0.0;
    double clockPerCycleNj_ = 0.0;
};

} // namespace acdse

