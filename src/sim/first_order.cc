#include "sim/first_order.hh"

#include <algorithm>
#include <cmath>

#include "sim/branch_predictor.hh"
#include "sim/cache.hh"

namespace acdse
{

FirstOrderResult
firstOrderEstimate(const MicroarchConfig &config, const Trace &trace)
{
    // --- Structural pass: miss events under this configuration --------
    CacheHierarchy hierarchy(config);
    GsharePredictor bpred(config.bpredEntries());
    Btb btb(config.btbEntries());
    HierarchyAccessEvents events;

    std::uint64_t mispredicts = 0, btb_misses = 0;
    std::uint64_t l1_misses = 0, l2_misses = 0, il1_misses = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceInstruction &inst = trace[i];
        if (isMemClass(inst.cls)) {
            const std::uint64_t l1_before = hierarchy.dl1().misses();
            const std::uint64_t l2_before = hierarchy.l2().misses();
            hierarchy.dataAccess(inst.addr,
                                 inst.cls == InstClass::Store, events);
            l1_misses += hierarchy.dl1().misses() - l1_before;
            l2_misses += hierarchy.l2().misses() - l2_before;
        } else if (inst.cls == InstClass::Branch) {
            const bool pred =
                inst.conditional ? bpred.predict(inst.pc) : true;
            bpred.update(inst.pc, inst.taken);
            if (pred != inst.taken)
                ++mispredicts;
            if (inst.taken && !btb.lookup(inst.pc)) {
                btb.update(inst.pc, inst.target);
                ++btb_misses;
            }
        }
        const std::uint64_t il1_before = hierarchy.il1().misses();
        hierarchy.instAccess(inst.pc & ~31ULL, events);
        il1_misses += hierarchy.il1().misses() - il1_before;
    }

    // --- Closed-form combination ----------------------------------------
    const TraceStats &ts = trace.stats();
    const FixedParams &fp = fixedParams();
    const double n = static_cast<double>(trace.size());

    // Steady-state issue rate: the classic square-root law relating the
    // effective window to the dependence-chain length, clipped by the
    // machine width and the operand-read bandwidth.
    const double window = std::min<double>(
        config.robSize(),
        std::min<double>(2.0 * config.iqSize(),
                         std::max(1, config.rfSize() - fp.archRegs)));
    const double ilp =
        std::sqrt(window * std::max(1.0, ts.meanDepDistance)) / 2.0;
    const double read_bw = config.rfReadPorts() / 1.6;
    const double ipc0 = std::max(
        0.25, std::min({static_cast<double>(config.width()), ilp,
                        read_bw}));

    const double base = n / ipc0;

    // Branch penalty: pipeline refill plus partial window drain.
    const double drain = window / (2.0 * ipc0);
    const double branch_penalty =
        static_cast<double>(mispredicts) *
            (fp.frontEndStages + fp.mispredictRedirect + drain) +
        static_cast<double>(btb_misses) * fp.mispredictRedirect;

    // Memory penalty: L1 misses pay the L2 trip, L2 misses pay DRAM;
    // overlap grows with the window (memory-level parallelism).
    const double mlp =
        std::clamp(std::sqrt(window) / 3.0, 1.0, 4.0);
    const double memory_penalty =
        (static_cast<double>(l1_misses - l2_misses) *
             hierarchy.l2Latency() +
         static_cast<double>(l2_misses) * fp.memLatency +
         static_cast<double>(il1_misses) *
             (hierarchy.l2Latency() + 2.0)) /
        mlp;

    FirstOrderResult result;
    result.ipcSteadyState = ipc0;
    result.branchPenalty = branch_penalty;
    result.memoryPenalty = memory_penalty;
    result.cycles = base + branch_penalty + memory_penalty;
    return result;
}

} // namespace acdse
