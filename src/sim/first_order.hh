/**
 * @file
 * First-order analytic performance model in the style of Karkhanis &
 * Smith (ISCA'04), the paper's reference [3].
 *
 * The paper argues (Section 9.3) that hand-built analytic models are an
 * alternative to learned predictors but are costly to maintain. We
 * implement one as an ablation baseline: a single structural pass over
 * the trace collects miss events for the configuration's caches and
 * predictor, and a closed-form expression combines them with an
 * ILP-limited steady-state issue rate. bench_ablation compares its
 * fidelity against the cycle-level model.
 */

#pragma once

#include "arch/microarch_config.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Output of the first-order model. */
struct FirstOrderResult
{
    double cycles;          //!< estimated execution cycles
    double ipcSteadyState;  //!< miss-free issue rate
    double branchPenalty;   //!< cycles charged to mispredictions
    double memoryPenalty;   //!< cycles charged to cache misses
};

/** Estimate the run time of @p trace on @p config analytically. */
FirstOrderResult firstOrderEstimate(const MicroarchConfig &config,
                                    const Trace &trace);

} // namespace acdse

