/**
 * @file
 * The four target metrics of the paper: cycles, energy, energy-delay
 * and energy-delay-squared (Section 3.2).
 */

#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace acdse
{

/** Which target metric a predictor models. */
enum class Metric : std::size_t
{
    Cycles = 0, //!< execution time in cycles
    Energy,     //!< total energy in nJ
    Ed,         //!< energy-delay product
    Edd,        //!< energy-delay-squared product
    NumMetrics, //!< sentinel
};

/** Number of target metrics. */
constexpr std::size_t kNumMetrics =
    static_cast<std::size_t>(Metric::NumMetrics);

/** All metrics, for range-for sweeps. */
constexpr std::array<Metric, kNumMetrics> kAllMetrics{
    Metric::Cycles, Metric::Energy, Metric::Ed, Metric::Edd};

/** Printable name of a metric. */
const char *metricName(Metric metric);

/** The measured values of all four metrics for one simulation. */
struct Metrics
{
    double cycles = 0.0;    //!< execution cycles
    double energyNj = 0.0;  //!< energy in nJ
    double ed = 0.0;        //!< energy * delay
    double edd = 0.0;       //!< energy * delay^2

    /** Value of one metric. */
    double get(Metric metric) const;

    /** Build the derived products from cycles and energy. */
    static Metrics fromCyclesEnergy(double cycles, double energyNj);

    /**
     * Rescale to a phase of @p targetInstructions as the paper does
     * when normalising per-benchmark results (Section 4.1): cycles and
     * energy scale linearly, the products accordingly.
     */
    Metrics scaledToInstructions(double actualInstructions,
                                 double targetInstructions) const;
};

} // namespace acdse

