#include "sim/sampled_sim.hh"

#include <algorithm>

#include "base/check.hh"
#include "base/logging.hh"
#include "sim/core.hh"
#include "sim/simulator.hh"

namespace acdse
{

SampledResult
simulateWithSimPoints(const MicroarchConfig &config, const Trace &trace,
                      const SimPointOptions &options)
{
    const SimPointResult analysis = simpointAnalyze(trace, options);
    ACDSE_CHECK(!analysis.points.empty(), "no simulation points");
    const std::size_t len = options.intervalLength;

    // Per-interval estimates from the representatives.
    std::vector<double> cycles_per_interval(analysis.numIntervals, 0.0);
    std::vector<double> energy_per_interval(analysis.numIntervals, 0.0);
    std::uint64_t timed = 0;

    for (const auto &point : analysis.points) {
        const std::size_t begin = point.intervalIndex * len;
        const std::size_t end = std::min(begin + len, trace.size());
        EnergyModel energy(config);
        OooCore core(config, energy);
        // Warm microarchitectural state from the preceding interval.
        if (begin >= len)
            core.warm(trace, begin - len, begin);
        const CoreStats stats = core.run(trace, begin, end);
        timed += stats.instructions;
        cycles_per_interval[point.intervalIndex] =
            static_cast<double>(stats.cycles);
        energy_per_interval[point.intervalIndex] =
            energy.totalEnergyNj(stats.cycles);
    }

    SampledResult result;
    result.metrics = Metrics::fromCyclesEnergy(
        simpointWeightedSum(analysis, cycles_per_interval),
        simpointWeightedSum(analysis, energy_per_interval));
    result.simulatedInstructions = timed;
    result.detailFraction =
        static_cast<double>(timed) / static_cast<double>(trace.size());
    return result;
}

SampledResult
simulateWithSmarts(const MicroarchConfig &config, const Trace &trace,
                   const SmartsOptions &options)
{
    ACDSE_CHECK(options.unitInstructions > 0, "empty measurement unit");
    ACDSE_CHECK(options.samplingPeriod > 0, "sampling period must be >0");
    const std::size_t unit = options.unitInstructions;
    const std::size_t num_units =
        (trace.size() + unit - 1) / unit;

    EnergyModel energy(config);
    OooCore core(config, energy);

    double measured_cycles = 0.0;
    double measured_energy = 0.0;
    std::size_t measured_units = 0;
    std::uint64_t timed = 0;

    for (std::size_t u = 0; u < num_units; ++u) {
        const std::size_t begin = u * unit;
        const std::size_t end = std::min(begin + unit, trace.size());
        const bool measure =
            (u % options.samplingPeriod) ==
            (options.offset % options.samplingPeriod);
        if (measure) {
            energy.resetCounts();
            const CoreStats stats = core.run(trace, begin, end);
            measured_cycles += static_cast<double>(stats.cycles);
            measured_energy += energy.dynamicEnergyNj() +
                               energy.staticEnergyNj(stats.cycles);
            timed += stats.instructions;
            ++measured_units;
        } else {
            // Functional warming only: caches and predictors stay hot,
            // no timing is modelled.
            core.warm(trace, begin, end);
        }
    }
    ACDSE_CHECK(measured_units > 0, "no units were measured");

    // Extrapolate the per-unit averages to the whole trace.
    const double scale = static_cast<double>(num_units) /
                         static_cast<double>(measured_units);
    SampledResult result;
    result.metrics = Metrics::fromCyclesEnergy(measured_cycles * scale,
                                               measured_energy * scale);
    result.simulatedInstructions = timed;
    result.detailFraction =
        static_cast<double>(timed) / static_cast<double>(trace.size());
    return result;
}

} // namespace acdse
