/**
 * @file
 * Sampled simulation methodologies (paper Section 9.2).
 *
 * The paper's own campaign uses SimPoint [1] to cut simulation time;
 * SMARTS [2] is the other standard technique. Both are implemented
 * here on top of the cycle-level core so their accuracy/speed
 * trade-off can be measured against full simulation
 * (bench_sampling_methods):
 *
 *  - SimPoint: simulate one representative interval per program phase
 *    (phases found by clustering basic-block vectors) and combine the
 *    results with the cluster weights.
 *  - SMARTS: systematic sampling -- simulate every k-th measurement
 *    unit in detail, using the skipped units only for functional
 *    warming of caches and predictors.
 */

#pragma once

#include "arch/microarch_config.hh"
#include "sim/metrics.hh"
#include "trace/simpoint.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Result of a sampled simulation. */
struct SampledResult
{
    Metrics metrics;                    //!< whole-trace estimate
    std::uint64_t simulatedInstructions; //!< instructions timed in detail
    double detailFraction;              //!< timed / total instructions
};

/**
 * SimPoint-style estimate: time only the representative intervals and
 * scale by the cluster weights. Microarchitectural state is warmed by
 * running (untimed) from the preceding interval where available.
 *
 * @param config  the design point.
 * @param trace   the full trace.
 * @param options interval length / cluster budget for the analysis.
 */
SampledResult simulateWithSimPoints(const MicroarchConfig &config,
                                    const Trace &trace,
                                    const SimPointOptions &options = {});

/** Parameters for SMARTS-style systematic sampling. */
struct SmartsOptions
{
    std::size_t unitInstructions = 500; //!< detailed measurement unit
    std::size_t samplingPeriod = 8;     //!< measure every k-th unit
    std::size_t offset = 0;             //!< first measured unit index
};

/**
 * SMARTS-style estimate: every k-th unit is measured in detail; the
 * units in between are run through the same pipeline for functional
 * warming but their cycles are replaced by the measured-unit average.
 */
SampledResult simulateWithSmarts(const MicroarchConfig &config,
                                 const Trace &trace,
                                 const SmartsOptions &options = {});

} // namespace acdse

