#include "sim/simulator.hh"

#include <algorithm>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cycles: return "cycles";
      case Metric::Energy: return "energy";
      case Metric::Ed: return "ED";
      case Metric::Edd: return "EDD";
      default: panic("bad metric");
    }
}

double
Metrics::get(Metric metric) const
{
    switch (metric) {
      case Metric::Cycles: return cycles;
      case Metric::Energy: return energyNj;
      case Metric::Ed: return ed;
      case Metric::Edd: return edd;
      default: panic("bad metric");
    }
}

Metrics
Metrics::fromCyclesEnergy(double cycles, double energyNj)
{
    Metrics m;
    m.cycles = cycles;
    m.energyNj = energyNj;
    m.ed = energyNj * cycles;
    m.edd = energyNj * cycles * cycles;
    return m;
}

Metrics
Metrics::scaledToInstructions(double actualInstructions,
                              double targetInstructions) const
{
    ACDSE_CHECK(actualInstructions > 0.0, "cannot scale empty run");
    const double f = targetInstructions / actualInstructions;
    return fromCyclesEnergy(cycles * f, energyNj * f);
}

SimulationResult
simulate(const MicroarchConfig &config, const Trace &trace,
         const SimulationOptions &options)
{
    CoreScratch scratch;
    return simulate(config, trace, options, scratch);
}

SimulationResult
simulate(const MicroarchConfig &config, const Trace &trace,
         const SimulationOptions &options, CoreScratch &scratch)
{
    EnergyModel energy(config);
    OooCore core(config, energy);

    std::size_t begin = 0;
    if (options.warmupInstructions > 0 && trace.size() > 2) {
        // Warm microarchitectural state with an untimed run over the
        // prefix; discard its statistics and energy events.
        begin = std::min(options.warmupInstructions, trace.size() / 2);
        core.run(trace, 0, begin, scratch);
        energy.resetCounts();
    }

    SimulationResult result;
    result.stats = core.run(trace, begin, SIZE_MAX, scratch);
    result.dynamicNj = energy.dynamicEnergyNj();
    result.staticNj = energy.staticEnergyNj(result.stats.cycles);
    result.metrics = Metrics::fromCyclesEnergy(
        static_cast<double>(result.stats.cycles),
        result.dynamicNj + result.staticNj);
    // Everything downstream (training sets, the campaign cache, served
    // predictions) assumes simulation output is finite and positive;
    // catch a broken energy/timing model here, not three layers later
    // as a NaN prediction.
    ACDSE_CHECK_FINITE(result.metrics.cycles, "simulated cycles");
    ACDSE_CHECK_FINITE(result.metrics.energyNj, "simulated energy");
    ACDSE_CHECK(result.metrics.cycles > 0.0,
                "simulation produced no cycles");
    return result;
}

} // namespace acdse
