/**
 * @file
 * Top-level simulation facade: configuration + trace -> Metrics.
 *
 * This is the function the whole evaluation pipeline treats as "run a
 * simulation" -- the expensive black box the paper's predictors are
 * designed to avoid calling 18 billion times.
 */

#pragma once

#include "arch/microarch_config.hh"
#include "sim/core.hh"
#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Options controlling one simulation. */
struct SimulationOptions
{
    /**
     * Instructions used to warm caches and predictors before timing
     * starts (the paper warms for 10M instructions before each
     * SimPoint interval; we scale this to our trace lengths).
     */
    std::size_t warmupInstructions = 0;
};

/** Detailed result of one simulation. */
struct SimulationResult
{
    Metrics metrics;    //!< the four target metrics
    CoreStats stats;    //!< timing statistics
    double dynamicNj;   //!< dynamic energy share
    double staticNj;    //!< leakage + clock energy share
};

/** Run one full simulation of @p trace on @p config. */
SimulationResult simulate(const MicroarchConfig &config, const Trace &trace,
                          const SimulationOptions &options = {});

/**
 * As simulate(), but borrowing @p scratch for the core's pipeline
 * structures. Callers that simulate in a loop (campaign fill, the
 * batched replay fallback) reuse one scratch to avoid per-simulation
 * allocation; results are identical either way.
 */
SimulationResult simulate(const MicroarchConfig &config, const Trace &trace,
                          const SimulationOptions &options,
                          CoreScratch &scratch);

} // namespace acdse

