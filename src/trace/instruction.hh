/**
 * @file
 * The dynamic-instruction representation consumed by the timing model.
 *
 * Traces are the substitute for SPEC CPU 2000 / MiBench binaries (see
 * DESIGN.md Section 2): a deterministic synthetic instruction stream
 * generated from a per-program statistical profile.
 */

#pragma once

#include <cstdint>

namespace acdse
{

/** Functional class of a dynamic instruction. */
enum class InstClass : std::uint8_t
{
    IntAlu,     //!< integer ALU op (also address generation)
    IntMul,     //!< integer multiply
    FpAlu,      //!< floating-point add/sub/compare
    FpMul,      //!< floating-point multiply
    FpDiv,      //!< floating-point divide (unpipelined)
    Load,       //!< memory load
    Store,      //!< memory store
    Branch,     //!< control transfer (conditional or not)
    NumClasses, //!< sentinel
};

/** Number of instruction classes. */
constexpr std::size_t kNumInstClasses =
    static_cast<std::size_t>(InstClass::NumClasses);

/** Printable name of an instruction class. */
const char *instClassName(InstClass cls);

/** Whether the class reads/writes memory. */
inline bool
isMemClass(InstClass cls)
{
    return cls == InstClass::Load || cls == InstClass::Store;
}

/** Whether the class produces a register result. */
inline bool
producesResult(InstClass cls)
{
    return cls != InstClass::Store && cls != InstClass::Branch;
}

/**
 * One dynamic instruction.
 *
 * Register dependences are encoded positionally: srcDist[k] is the
 * distance (in dynamic instructions) back to the producer of source
 * operand k, or 0 if the operand is absent / architecturally ready.
 * This removes the need for register renaming in the generator while
 * still exposing exact data-dependence structure to the core model.
 */
struct TraceInstruction
{
    std::uint64_t pc;        //!< instruction address (bytes)
    std::uint64_t addr;      //!< effective address for loads/stores
    std::uint64_t target;    //!< branch target (valid for branches)
    std::uint32_t srcDist1;  //!< distance to first producer (0 = none)
    std::uint32_t srcDist2;  //!< distance to second producer (0 = none)
    InstClass cls;           //!< functional class
    bool taken;              //!< branch outcome (valid for branches)
    bool conditional;        //!< conditional branch?
};

} // namespace acdse

