/**
 * @file
 * Statistical profile of a benchmark program.
 *
 * A ProgramProfile is the knob set from which TraceGenerator produces a
 * deterministic dynamic-instruction trace. The profiles in suites.cc
 * are calibrated so that the generated programs exhibit the qualitative
 * behaviours the paper relies on: diverse, partially similar design
 * spaces with a few strong outliers (art, mcf).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/instruction.hh"

namespace acdse
{

/** Which benchmark suite a profile belongs to. */
enum class Suite
{
    SpecCpu2000,    //!< the paper's training/evaluation suite
    MiBench,        //!< the paper's cross-suite test set
};

/** Printable name of a suite. */
const char *suiteName(Suite suite);

/**
 * All generation knobs for one synthetic benchmark.
 *
 * Fractions need not be normalised; the generator normalises the mix.
 */
struct ProgramProfile
{
    std::string name;           //!< benchmark name (e.g. "applu")
    Suite suite;                //!< owning suite
    std::uint64_t seed;         //!< generation seed (derived from name)

    /** @name Instruction mix (relative weights, Branch excluded). */
    /** @{ */
    double wIntAlu = 4.0;       //!< integer ALU weight
    double wIntMul = 0.2;       //!< integer multiply weight
    double wFpAlu = 0.0;        //!< FP add weight
    double wFpMul = 0.0;        //!< FP multiply weight
    double wFpDiv = 0.0;        //!< FP divide weight
    double wLoad = 2.0;         //!< load weight
    double wStore = 1.0;        //!< store weight
    /** @} */

    /** Fraction of dynamic instructions that are branches. */
    double branchFraction = 0.15;

    /** @name Data-dependence structure. */
    /** @{ */
    /** Mean distance (instructions) to each operand's producer. */
    double meanDepDistance = 12.0;
    /** Probability an instruction has no register inputs at all. */
    double independentFraction = 0.15;
    /** Probability a second source operand exists. */
    double twoSourceFraction = 0.5;
    /**
     * Fraction of loads whose address depends on the previous load
     * (pointer chasing; dominates mcf-like programs).
     */
    double pointerChaseFraction = 0.0;
    /** @} */

    /** @name Data-memory behaviour. */
    /** @{ */
    double dataFootprintKb = 256.0; //!< total data working set
    double hotRegionKb = 16.0;      //!< hot subset hit with probHot
    double probHot = 0.6;           //!< P(access falls in hot region)
    /**
     * P(access continues a strided stream). probHot and probStream are
     * sequential thresholds: the effective stream share is
     * min(probStream, 1 - probHot) and the remainder is random within
     * the footprint.
     */
    double probStream = 0.25;
    int numStreams = 4;             //!< concurrent strided streams
    int strideBytes = 8;            //!< stream stride
    /** @} */

    /** @name Control-flow / code behaviour. */
    /** @{ */
    double codeFootprintKb = 24.0;  //!< static code size (drives IL1)
    /**
     * Branch predictability in [0, 1]: 1 = fully biased branches
     * (easy), 0 = coin flips (hopeless). Intermediate values mix biased
     * and pattern-following branches so a larger gshare table helps.
     */
    double branchPredictability = 0.85;
    double loopBackProb = 0.65;     //!< P(branch loops back locally)
    /** @} */

    /** Stable 64-bit seed derived from a benchmark name. */
    static std::uint64_t seedFromName(const std::string &name);
};

} // namespace acdse

