#include "trace/simpoint.hh"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "ml/kmeans.hh"

namespace acdse
{

SimPointResult
simpointAnalyze(const Trace &trace, const SimPointOptions &options)
{
    ACDSE_CHECK(options.intervalLength > 0, "interval length must be > 0");
    ACDSE_CHECK(options.projectedDims > 0, "need at least one dimension");

    const std::size_t n = trace.size();
    const std::size_t num_intervals =
        (n + options.intervalLength - 1) / options.intervalLength;

    // Build randomly-projected BBVs: every basic block hashes its
    // execution count into a small dense vector, which is what the
    // original SimPoint does to keep clustering tractable.
    std::vector<std::vector<double>> bbvs(
        num_intervals, std::vector<double>(options.projectedDims, 0.0));

    auto project = [&](std::uint64_t block_pc, std::size_t interval,
                       double count) {
        // Two independent hashes: one picks the dimension, one the sign,
        // giving a sparse random projection.
        std::uint64_t h = block_pc * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 29;
        const std::size_t dim = h % options.projectedDims;
        const double sign = (h >> 32) & 1 ? 1.0 : -1.0;
        bbvs[interval][dim] += sign * count;
    };

    std::uint64_t cur_block = trace[0].pc;
    std::uint64_t block_len = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceInstruction &inst = trace[i];
        ++block_len;
        const bool ends_block =
            inst.cls == InstClass::Branch && inst.taken;
        const bool last = i + 1 == n;
        if (ends_block || last) {
            project(cur_block, i / options.intervalLength,
                    static_cast<double>(block_len));
            if (!last) {
                cur_block = trace[i + 1].pc;
                block_len = 0;
            }
        }
    }

    // Normalise each BBV so intervals compare by shape, not raw length
    // (the final interval may be short).
    for (auto &v : bbvs) {
        double norm = 0.0;
        for (double x : v)
            norm += x * x;
        norm = std::sqrt(norm);
        if (norm > 0.0) {
            for (double &x : v)
                x /= norm;
        }
    }

    const std::size_t k = std::min(options.maxClusters, num_intervals);
    KmeansResult clusters = kmeans(bbvs, k, options.seed);

    // Pick the interval closest to each centroid as representative.
    SimPointResult result;
    result.numIntervals = num_intervals;
    result.inertia = clusters.inertia;
    std::vector<std::size_t> rep(k, num_intervals);
    std::vector<double> rep_dist(k,
                                 std::numeric_limits<double>::infinity());
    std::vector<std::size_t> size(k, 0);
    for (std::size_t i = 0; i < num_intervals; ++i) {
        const std::size_t c = clusters.assignment[i];
        ++size[c];
        double d = 0.0;
        for (std::size_t j = 0; j < bbvs[i].size(); ++j) {
            const double diff = bbvs[i][j] - clusters.centroids[c][j];
            d += diff * diff;
        }
        if (d < rep_dist[c]) {
            rep_dist[c] = d;
            rep[c] = i;
        }
    }
    for (std::size_t c = 0; c < k; ++c) {
        if (!size[c])
            continue;
        result.points.push_back(
            {rep[c], static_cast<double>(size[c]) /
                         static_cast<double>(num_intervals)});
    }
    return result;
}

double
simpointWeightedSum(const SimPointResult &result,
                    const std::vector<double> &perIntervalValues)
{
    double acc = 0.0;
    for (const auto &point : result.points) {
        ACDSE_CHECK(point.intervalIndex < perIntervalValues.size(),
                     "per-interval values too short");
        acc += point.weight * perIntervalValues[point.intervalIndex];
    }
    return acc * static_cast<double>(result.numIntervals);
}

} // namespace acdse
