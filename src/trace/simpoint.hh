/**
 * @file
 * SimPoint-style phase analysis (Sherwood et al., ASPLOS-X; the paper's
 * reference [1] and its simulation methodology, Section 3.2).
 *
 * A trace is split into fixed-length intervals; each interval is
 * summarised by its basic-block vector (BBV), BBVs are clustered with
 * k-means, and one representative interval per cluster is selected with
 * a weight proportional to its cluster's size. Simulating only the
 * representatives approximates simulating the whole trace.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace acdse
{

/** One selected simulation point. */
struct SimPoint
{
    std::size_t intervalIndex;  //!< which interval to simulate
    double weight;              //!< fraction of intervals it represents
};

/** Parameters of the SimPoint analysis. */
struct SimPointOptions
{
    std::size_t intervalLength = 2000;  //!< instructions per interval
    std::size_t maxClusters = 30;       //!< paper: up to 30 clusters
    std::size_t projectedDims = 16;     //!< random-projection dimension
    std::uint64_t seed = 7;             //!< clustering seed
};

/** Result of the analysis: chosen points plus diagnostics. */
struct SimPointResult
{
    std::vector<SimPoint> points;   //!< representative intervals
    std::size_t numIntervals = 0;   //!< total intervals in the trace
    double inertia = 0.0;           //!< k-means clustering inertia
};

/**
 * Run SimPoint analysis over a trace.
 *
 * Basic blocks are identified by the address of the instruction that
 * follows each taken control transfer (plus the trace start), exactly
 * recoverable from the instruction stream.
 */
SimPointResult simpointAnalyze(const Trace &trace,
                               const SimPointOptions &options = {});

/**
 * Combine per-interval measurements into a whole-trace estimate using
 * the SimPoint weights: sum_i weight_i * value_i, scaled by the number
 * of intervals.
 */
double simpointWeightedSum(const SimPointResult &result,
                           const std::vector<double> &perIntervalValues);

} // namespace acdse

