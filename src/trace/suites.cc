#include "trace/suites.hh"

#include <unordered_map>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

namespace
{

/** Start from an integer-program template. */
ProgramProfile
intProgram(const char *name, Suite suite)
{
    ProgramProfile p;
    p.name = name;
    p.suite = suite;
    p.seed = ProgramProfile::seedFromName(p.name);
    p.wIntAlu = 4.0;
    p.wIntMul = 0.25;
    p.wFpAlu = 0.0;
    p.wFpMul = 0.0;
    p.wFpDiv = 0.0;
    p.wLoad = 2.2;
    p.wStore = 1.0;
    p.probHot = 0.85;
    p.probStream = 0.05;
    p.strideBytes = 16;
    return p;
}

/** Start from a floating-point-program template. */
ProgramProfile
fpProgram(const char *name, Suite suite)
{
    ProgramProfile p;
    p.name = name;
    p.suite = suite;
    p.seed = ProgramProfile::seedFromName(p.name);
    p.wIntAlu = 2.0;
    p.wIntMul = 0.15;
    p.wFpAlu = 2.2;
    p.wFpMul = 1.2;
    p.wFpDiv = 0.05;
    p.wLoad = 2.4;
    p.wStore = 1.0;
    p.branchFraction = 0.06;
    p.branchPredictability = 0.94;
    p.meanDepDistance = 14.0;
    p.independentFraction = 0.2;
    p.probHot = 0.45;
    p.probStream = 0.4;
    p.strideBytes = 32;
    return p;
}

std::vector<ProgramProfile>
buildSpec()
{
    std::vector<ProgramProfile> v;

    // ---- SPEC CINT 2000 -------------------------------------------------
    {   // gzip: compression over a moderate buffer, decent locality.
        auto p = intProgram("gzip", Suite::SpecCpu2000);
        p.dataFootprintKb = 96; p.hotRegionKb = 24;
        p.branchFraction = 0.14; p.branchPredictability = 0.88;
        p.meanDepDistance = 8; p.codeFootprintKb = 40;
        v.push_back(p);
    }
    {   // vpr: place & route, mixed locality.
        auto p = intProgram("vpr", Suite::SpecCpu2000);
        p.dataFootprintKb = 160; p.hotRegionKb = 32; p.probHot = 0.5;
        p.branchFraction = 0.13; p.branchPredictability = 0.82;
        p.meanDepDistance = 9; p.codeFootprintKb = 64;
        v.push_back(p);
    }
    {   // gcc: huge code footprint, stresses the I-cache.
        auto p = intProgram("gcc", Suite::SpecCpu2000);
        p.dataFootprintKb = 448; p.hotRegionKb = 64; p.probHot = 0.45;
        p.branchFraction = 0.17; p.branchPredictability = 0.84;
        p.meanDepDistance = 7; p.codeFootprintKb = 256;
        v.push_back(p);
    }
    {   // mcf: pointer-chasing over a huge sparse structure --
        // memory-latency bound, one of the paper's two outliers.
        auto p = intProgram("mcf", Suite::SpecCpu2000);
        p.dataFootprintKb = 3072; p.hotRegionKb = 32; p.probHot = 0.25;
        p.probStream = 0.1; p.pointerChaseFraction = 0.35;
        p.wLoad = 3.2; p.branchFraction = 0.12;
        p.branchPredictability = 0.85; p.meanDepDistance = 5;
        p.codeFootprintKb = 24;
        v.push_back(p);
    }
    {   // crafty: chess, branchy with hard-to-predict branches.
        auto p = intProgram("crafty", Suite::SpecCpu2000);
        p.dataFootprintKb = 96; p.hotRegionKb = 24;
        p.branchFraction = 0.16; p.branchPredictability = 0.78;
        p.meanDepDistance = 10; p.codeFootprintKb = 128;
        v.push_back(p);
    }
    {   // parser: small working set, short dependence chains -- its
        // space varies only slightly (paper Section 4.1).
        auto p = intProgram("parser", Suite::SpecCpu2000);
        p.dataFootprintKb = 24; p.hotRegionKb = 12; p.probHot = 0.9;
        p.branchFraction = 0.16; p.branchPredictability = 0.92;
        p.meanDepDistance = 3.5; p.codeFootprintKb = 24;
        v.push_back(p);
    }
    {   // eon: C++ ray tracer, light FP mix, small data.
        auto p = intProgram("eon", Suite::SpecCpu2000);
        p.wFpAlu = 1.0; p.wFpMul = 0.6;
        p.dataFootprintKb = 48; p.hotRegionKb = 16;
        p.branchFraction = 0.12; p.branchPredictability = 0.9;
        p.meanDepDistance = 11; p.codeFootprintKb = 96;
        v.push_back(p);
    }
    {   // perlbmk: interpreter, big code, branchy.
        auto p = intProgram("perlbmk", Suite::SpecCpu2000);
        p.dataFootprintKb = 128; p.hotRegionKb = 48;
        p.branchFraction = 0.18; p.branchPredictability = 0.86;
        p.meanDepDistance = 7; p.codeFootprintKb = 192;
        v.push_back(p);
    }
    {   // gap: group theory, multiply-heavy integer code.
        auto p = intProgram("gap", Suite::SpecCpu2000);
        p.wIntMul = 0.5;
        p.dataFootprintKb = 192; p.hotRegionKb = 48;
        p.branchFraction = 0.13; p.branchPredictability = 0.88;
        p.meanDepDistance = 9; p.codeFootprintKb = 72;
        v.push_back(p);
    }
    {   // vortex: OO database, very large code footprint.
        auto p = intProgram("vortex", Suite::SpecCpu2000);
        p.dataFootprintKb = 320; p.hotRegionKb = 64;
        p.branchFraction = 0.15; p.branchPredictability = 0.9;
        p.meanDepDistance = 8; p.codeFootprintKb = 320;
        v.push_back(p);
    }
    {   // bzip2: block-sorting compression, large buffers.
        auto p = intProgram("bzip2", Suite::SpecCpu2000);
        p.dataFootprintKb = 768; p.hotRegionKb = 96; p.probHot = 0.5;
        p.branchFraction = 0.13; p.branchPredictability = 0.85;
        p.meanDepDistance = 9; p.codeFootprintKb = 32;
        v.push_back(p);
    }
    {   // twolf: place & route, branchy, moderate data.
        auto p = intProgram("twolf", Suite::SpecCpu2000);
        p.dataFootprintKb = 80; p.hotRegionKb = 24;
        p.branchFraction = 0.15; p.branchPredictability = 0.8;
        p.meanDepDistance = 8; p.codeFootprintKb = 64;
        v.push_back(p);
    }

    // ---- SPEC CFP 2000 ----------------------------------------------
    {   // wupwise: quantum chromodynamics, regular FP.
        auto p = fpProgram("wupwise", Suite::SpecCpu2000);
        p.dataFootprintKb = 384; p.hotRegionKb = 48; p.strideBytes = 32;
        p.probStream = 0.45; p.meanDepDistance = 16;
        p.codeFootprintKb = 32;
        v.push_back(p);
    }
    {   // swim: shallow-water model, pure streaming over big grids.
        auto p = fpProgram("swim", Suite::SpecCpu2000);
        p.dataFootprintKb = 2560; p.hotRegionKb = 32; p.probHot = 0.1;
        p.probStream = 0.7; p.numStreams = 8; p.strideBytes = 64;
        p.branchFraction = 0.04; p.branchPredictability = 0.97;
        p.meanDepDistance = 18; p.codeFootprintKb = 16;
        v.push_back(p);
    }
    {   // mgrid: multigrid solver, streaming with reuse.
        auto p = fpProgram("mgrid", Suite::SpecCpu2000);
        p.dataFootprintKb = 1536; p.hotRegionKb = 96; p.probHot = 0.3;
        p.probStream = 0.55; p.numStreams = 6; p.strideBytes = 48;
        p.branchFraction = 0.03; p.branchPredictability = 0.97;
        p.meanDepDistance = 20; p.codeFootprintKb = 16;
        v.push_back(p);
    }
    {   // applu: PDE solver, the paper's Fig. 1 example.
        auto p = fpProgram("applu", Suite::SpecCpu2000);
        p.dataFootprintKb = 896; p.hotRegionKb = 96; p.probHot = 0.35;
        p.probStream = 0.45; p.wFpDiv = 0.15; p.strideBytes = 32;
        p.branchFraction = 0.05; p.meanDepDistance = 15;
        p.codeFootprintKb = 48;
        v.push_back(p);
    }
    {   // mesa: 3D graphics library, mixed int/FP, big code.
        auto p = fpProgram("mesa", Suite::SpecCpu2000);
        p.wIntAlu = 3.0;
        p.dataFootprintKb = 64; p.hotRegionKb = 24;
        p.branchFraction = 0.10; p.branchPredictability = 0.9;
        p.meanDepDistance = 10; p.codeFootprintKb = 128;
        v.push_back(p);
    }
    {   // galgel: fluid dynamics, cache-resident FP.
        auto p = fpProgram("galgel", Suite::SpecCpu2000);
        p.dataFootprintKb = 192; p.hotRegionKb = 48; p.probHot = 0.55;
        p.meanDepDistance = 14; p.codeFootprintKb = 24;
        v.push_back(p);
    }
    {   // art: neural-net image recognition; long strided streams that
        // defeat every cache level -- the paper's strongest outlier.
        auto p = fpProgram("art", Suite::SpecCpu2000);
        p.dataFootprintKb = 4096; p.hotRegionKb = 16; p.probHot = 0.05;
        p.probStream = 0.75; p.numStreams = 12; p.strideBytes = 64;
        p.wLoad = 3.0; p.branchFraction = 0.04;
        p.branchPredictability = 0.97; p.meanDepDistance = 22;
        p.independentFraction = 0.3; p.codeFootprintKb = 12;
        v.push_back(p);
    }
    {   // equake: sparse-matrix earthquake sim, some indirection.
        auto p = fpProgram("equake", Suite::SpecCpu2000);
        p.dataFootprintKb = 512; p.hotRegionKb = 48;
        p.pointerChaseFraction = 0.15; p.branchFraction = 0.08;
        p.meanDepDistance = 12; p.codeFootprintKb = 24;
        v.push_back(p);
    }
    {   // facerec: face recognition, FFT-style FP.
        auto p = fpProgram("facerec", Suite::SpecCpu2000);
        p.dataFootprintKb = 256; p.hotRegionKb = 48;
        p.meanDepDistance = 14; p.codeFootprintKb = 32;
        v.push_back(p);
    }
    {   // ammp: molecular dynamics with neighbour lists.
        auto p = fpProgram("ammp", Suite::SpecCpu2000);
        p.dataFootprintKb = 640; p.hotRegionKb = 48;
        p.pointerChaseFraction = 0.1; p.branchFraction = 0.07;
        p.meanDepDistance = 12; p.codeFootprintKb = 48;
        v.push_back(p);
    }
    {   // lucas: Lucas-Lehmer primality, long FFT streams.
        auto p = fpProgram("lucas", Suite::SpecCpu2000);
        p.dataFootprintKb = 1024; p.hotRegionKb = 48; p.probHot = 0.2;
        p.probStream = 0.6; p.strideBytes = 48; p.branchFraction = 0.03;
        p.meanDepDistance = 18; p.codeFootprintKb = 16;
        v.push_back(p);
    }
    {   // fma3d: crash simulation, bigger code, mixed behaviour.
        auto p = fpProgram("fma3d", Suite::SpecCpu2000);
        p.dataFootprintKb = 384; p.hotRegionKb = 64;
        p.branchFraction = 0.07; p.meanDepDistance = 13;
        p.codeFootprintKb = 256;
        v.push_back(p);
    }
    {   // sixtrack: particle tracking, hot-loop FP with divides.
        auto p = fpProgram("sixtrack", Suite::SpecCpu2000);
        p.dataFootprintKb = 96; p.hotRegionKb = 32; p.probHot = 0.7;
        p.probStream = 0.3;
        p.wFpDiv = 0.1; p.branchFraction = 0.05;
        p.meanDepDistance = 15; p.codeFootprintKb = 96;
        v.push_back(p);
    }
    {   // apsi: meteorology, moderate everything.
        auto p = fpProgram("apsi", Suite::SpecCpu2000);
        p.dataFootprintKb = 256; p.hotRegionKb = 48;
        p.branchFraction = 0.07; p.meanDepDistance = 13;
        p.codeFootprintKb = 64;
        v.push_back(p);
    }

    ACDSE_CHECK(v.size() == 26, "expected 26 SPEC CPU 2000 programs");
    return v;
}

std::vector<ProgramProfile>
buildMiBench()
{
    std::vector<ProgramProfile> v;
    // Embedded programs: small code and data footprints, denser
    // branches; a handful deliberately unusual (patricia, tiff2rgba).
    {
        auto p = fpProgram("basicmath", Suite::MiBench);
        p.dataFootprintKb = 16; p.hotRegionKb = 8; p.probHot = 0.85;
        p.probStream = 0.15;
        p.wFpDiv = 0.2; p.branchFraction = 0.12;
        p.branchPredictability = 0.9; p.meanDepDistance = 8;
        p.codeFootprintKb = 8;
        v.push_back(p);
    }
    {
        auto p = intProgram("bitcount", Suite::MiBench);
        p.dataFootprintKb = 4; p.hotRegionKb = 2; p.probHot = 0.95;
        p.branchFraction = 0.2; p.branchPredictability = 0.85;
        p.meanDepDistance = 5; p.codeFootprintKb = 4;
        v.push_back(p);
    }
    {   // qsort: data-dependent compare branches are hard.
        auto p = intProgram("qsort", Suite::MiBench);
        p.dataFootprintKb = 64; p.hotRegionKb = 16;
        p.branchFraction = 0.18; p.branchPredictability = 0.7;
        p.meanDepDistance = 6; p.codeFootprintKb = 8;
        v.push_back(p);
    }
    {
        auto p = intProgram("susan", Suite::MiBench);
        p.wIntMul = 0.8;
        p.dataFootprintKb = 64; p.hotRegionKb = 16;
        p.branchFraction = 0.12; p.branchPredictability = 0.88;
        p.meanDepDistance = 10; p.codeFootprintKb = 16;
        v.push_back(p);
    }
    {
        auto p = intProgram("jpeg", Suite::MiBench);
        p.wIntMul = 1.0;
        p.dataFootprintKb = 96; p.hotRegionKb = 24;
        p.branchFraction = 0.11; p.branchPredictability = 0.88;
        p.meanDepDistance = 9; p.codeFootprintKb = 48;
        v.push_back(p);
    }
    {
        auto p = fpProgram("lame", Suite::MiBench);
        p.wIntAlu = 3.0;
        p.dataFootprintKb = 128; p.hotRegionKb = 32;
        p.branchFraction = 0.1; p.branchPredictability = 0.88;
        p.meanDepDistance = 11; p.codeFootprintKb = 64;
        v.push_back(p);
    }
    {   // dijkstra: adjacency-list graph walk.
        auto p = intProgram("dijkstra", Suite::MiBench);
        p.dataFootprintKb = 64; p.hotRegionKb = 12;
        p.pointerChaseFraction = 0.3; p.branchFraction = 0.16;
        p.branchPredictability = 0.82; p.meanDepDistance = 6;
        p.codeFootprintKb = 4;
        v.push_back(p);
    }
    {   // patricia: trie insertion, extreme pointer chasing -- one of
        // the MiBench programs the paper flags as unusual.
        auto p = intProgram("patricia", Suite::MiBench);
        p.dataFootprintKb = 192; p.hotRegionKb = 12; p.probHot = 0.3;
        p.pointerChaseFraction = 0.45; p.wLoad = 3.0;
        p.branchFraction = 0.2; p.branchPredictability = 0.72;
        p.meanDepDistance = 4; p.codeFootprintKb = 8;
        v.push_back(p);
    }
    {
        auto p = intProgram("stringsearch", Suite::MiBench);
        p.dataFootprintKb = 8; p.hotRegionKb = 4; p.probHot = 0.9;
        p.branchFraction = 0.22; p.branchPredictability = 0.8;
        p.meanDepDistance = 5; p.codeFootprintKb = 4;
        v.push_back(p);
    }
    {
        auto p = intProgram("blowfish", Suite::MiBench);
        p.wIntAlu = 5.0;
        p.dataFootprintKb = 8; p.hotRegionKb = 4; p.probHot = 0.95;
        p.branchFraction = 0.08; p.branchPredictability = 0.92;
        p.meanDepDistance = 7; p.codeFootprintKb = 8;
        v.push_back(p);
    }
    {
        auto p = intProgram("rijndael", Suite::MiBench);
        p.wIntAlu = 5.0;
        p.dataFootprintKb = 16; p.hotRegionKb = 8; p.probHot = 0.95;
        p.branchFraction = 0.07; p.branchPredictability = 0.93;
        p.meanDepDistance = 8; p.codeFootprintKb = 12;
        v.push_back(p);
    }
    {
        auto p = intProgram("sha", Suite::MiBench);
        p.wIntAlu = 5.0;
        p.dataFootprintKb = 8; p.hotRegionKb = 4; p.probHot = 0.95;
        p.branchFraction = 0.09; p.branchPredictability = 0.92;
        p.meanDepDistance = 6; p.codeFootprintKb = 6;
        v.push_back(p);
    }
    {   // crc32: one tiny loop.
        auto p = intProgram("crc32", Suite::MiBench);
        p.dataFootprintKb = 2; p.hotRegionKb = 1; p.probHot = 0.98;
        p.probStream = 0.02;
        p.branchFraction = 0.25; p.branchPredictability = 0.97;
        p.meanDepDistance = 4; p.codeFootprintKb = 2;
        v.push_back(p);
    }
    {
        auto p = intProgram("adpcm", Suite::MiBench);
        p.dataFootprintKb = 4; p.hotRegionKb = 2; p.probHot = 0.95;
        p.branchFraction = 0.18; p.branchPredictability = 0.88;
        p.meanDepDistance = 4; p.codeFootprintKb = 3;
        v.push_back(p);
    }
    {
        auto p = fpProgram("fft", Suite::MiBench);
        p.dataFootprintKb = 64; p.hotRegionKb = 24; p.probHot = 0.4;
        p.probStream = 0.4; p.branchFraction = 0.07;
        p.meanDepDistance = 14; p.codeFootprintKb = 8;
        v.push_back(p);
    }
    {
        auto p = intProgram("gsm", Suite::MiBench);
        p.wIntMul = 0.9;
        p.dataFootprintKb = 32; p.hotRegionKb = 8;
        p.branchFraction = 0.13; p.branchPredictability = 0.88;
        p.meanDepDistance = 7; p.codeFootprintKb = 24;
        v.push_back(p);
    }
    {
        auto p = intProgram("tiff2bw", Suite::MiBench);
        p.dataFootprintKb = 320; p.hotRegionKb = 16; p.probHot = 0.15;
        p.probStream = 0.7; p.numStreams = 3; p.strideBytes = 16;
        p.wStore = 1.8; p.branchFraction = 0.1;
        p.branchPredictability = 0.94; p.meanDepDistance = 12;
        p.codeFootprintKb = 32;
        v.push_back(p);
    }
    {   // tiff2rgba: store-dominated pixel expansion -- the other
        // MiBench program the paper flags as unusual.
        auto p = intProgram("tiff2rgba", Suite::MiBench);
        p.dataFootprintKb = 768; p.hotRegionKb = 8; p.probHot = 0.1;
        p.probStream = 0.8; p.numStreams = 2; p.strideBytes = 32;
        p.wStore = 2.5; p.wLoad = 1.5; p.branchFraction = 0.08;
        p.branchPredictability = 0.95; p.meanDepDistance = 14;
        p.independentFraction = 0.35; p.codeFootprintKb = 32;
        v.push_back(p);
    }
    {
        auto p = intProgram("typeset", Suite::MiBench);
        p.dataFootprintKb = 192; p.hotRegionKb = 48;
        p.branchFraction = 0.17; p.branchPredictability = 0.82;
        p.meanDepDistance = 7; p.codeFootprintKb = 256;
        v.push_back(p);
    }

    ACDSE_CHECK(v.size() == 19, "expected 19 MiBench programs");
    return v;
}

} // namespace

const std::vector<ProgramProfile> &
specCpu2000Profiles()
{
    static const std::vector<ProgramProfile> suite = buildSpec();
    return suite;
}

const std::vector<ProgramProfile> &
miBenchProfiles()
{
    static const std::vector<ProgramProfile> suite = buildMiBench();
    return suite;
}

const std::vector<ProgramProfile> &
allProfiles()
{
    static const std::vector<ProgramProfile> all = [] {
        std::vector<ProgramProfile> v = specCpu2000Profiles();
        const auto &mb = miBenchProfiles();
        v.insert(v.end(), mb.begin(), mb.end());
        return v;
    }();
    return all;
}

const ProgramProfile &
profileByName(const std::string &name)
{
    static const std::unordered_map<std::string, const ProgramProfile *>
        index = [] {
            std::unordered_map<std::string, const ProgramProfile *> m;
            for (const auto &p : allProfiles())
                m.emplace(p.name, &p);
            return m;
        }();
    auto it = index.find(name);
    if (it == index.end())
        fatal("unknown benchmark '", name, "'");
    return *it->second;
}

std::vector<std::string>
programNames(Suite suite)
{
    std::vector<std::string> names;
    for (const auto &p : allProfiles()) {
        if (p.suite == suite)
            names.push_back(p.name);
    }
    return names;
}

} // namespace acdse
