/**
 * @file
 * The benchmark suites used throughout the paper: SPEC CPU 2000 (26
 * programs, Section 3.2) and MiBench (19 programs, ghostscript omitted
 * as in the paper).
 *
 * Each program is realised as a calibrated ProgramProfile (see
 * DESIGN.md Section 2 for the substitution rationale). The calibration
 * goals, mirroring the paper's Section 4 analysis, are:
 *  - wide per-program variation in how the design space looks;
 *  - clusters of similar programs (integer/branchy, FP/streaming, ...);
 *  - strong outliers: art (streaming FP that thrashes the caches) and
 *    mcf (pointer-chasing, memory-latency-bound);
 *  - a near-invariant program (parser) whose space varies only mildly;
 *  - MiBench biased toward embedded behaviour (small footprints, high
 *    branch density), with patricia and tiff2rgba deliberately unusual.
 */

#pragma once

#include <string>
#include <vector>

#include "trace/program_profile.hh"

namespace acdse
{

/** The 26 SPEC CPU 2000 program profiles. */
const std::vector<ProgramProfile> &specCpu2000Profiles();

/** The 19 MiBench program profiles (ghostscript omitted, as in paper). */
const std::vector<ProgramProfile> &miBenchProfiles();

/** Both suites concatenated (SPEC first). */
const std::vector<ProgramProfile> &allProfiles();

/** Look up a profile by benchmark name; panics if unknown. */
const ProgramProfile &profileByName(const std::string &name);

/** Names of all programs in a suite, in declaration order. */
std::vector<std::string> programNames(Suite suite);

} // namespace acdse

