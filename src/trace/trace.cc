#include "trace/trace.hh"

#include <unordered_set>

#include "base/check.hh"
#include "base/logging.hh"

namespace acdse
{

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu: return "int-alu";
      case InstClass::IntMul: return "int-mul";
      case InstClass::FpAlu: return "fp-alu";
      case InstClass::FpMul: return "fp-mul";
      case InstClass::FpDiv: return "fp-div";
      case InstClass::Load: return "load";
      case InstClass::Store: return "store";
      case InstClass::Branch: return "branch";
      default: panic("bad instruction class");
    }
}

Trace::Trace(std::string name, std::vector<TraceInstruction> instructions)
    : name_(std::move(name)), instructions_(std::move(instructions))
{
    ACDSE_CHECK(!instructions_.empty(), "trace must not be empty");
}

const TraceStats &
Trace::stats() const
{
    if (statsValid_)
        return stats_;

    TraceStats s;
    std::unordered_set<std::uint64_t> lines;
    std::unordered_set<std::uint64_t> pcs;
    double dep_total = 0.0;
    std::uint64_t dep_count = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken = 0;

    for (const auto &inst : instructions_) {
        s.classFraction[static_cast<std::size_t>(inst.cls)] += 1.0;
        if (inst.srcDist1) {
            dep_total += inst.srcDist1;
            ++dep_count;
        }
        if (inst.srcDist2) {
            dep_total += inst.srcDist2;
            ++dep_count;
        }
        if (isMemClass(inst.cls))
            lines.insert(inst.addr / 32);
        pcs.insert(inst.pc);
        if (inst.cls == InstClass::Branch) {
            ++branches;
            taken += inst.taken;
        }
    }

    const double n = static_cast<double>(instructions_.size());
    for (auto &f : s.classFraction)
        f /= n;
    s.meanDepDistance = dep_count ? dep_total / dep_count : 0.0;
    s.branchFraction = branches / n;
    s.takenFraction = branches ? static_cast<double>(taken) / branches : 0.0;
    s.distinctLines = lines.size();
    s.distinctPcs = pcs.size();

    stats_ = s;
    statsValid_ = true;
    return stats_;
}

} // namespace acdse
