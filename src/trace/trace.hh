/**
 * @file
 * A dynamic-instruction trace plus cheap summary statistics.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace acdse
{

/** Summary statistics of a trace (used by tests and the analytic model). */
struct TraceStats
{
    std::array<double, kNumInstClasses> classFraction{}; //!< mix
    double meanDepDistance = 0.0;   //!< mean producer distance (present ops)
    double branchFraction = 0.0;    //!< fraction of branches
    double takenFraction = 0.0;     //!< fraction of branches taken
    std::uint64_t distinctLines = 0; //!< distinct 32B data lines touched
    std::uint64_t distinctPcs = 0;   //!< distinct instruction addresses
};

/** An immutable dynamic-instruction trace for one program. */
class Trace
{
  public:
    /** Construct from a generated instruction stream. */
    Trace(std::string name, std::vector<TraceInstruction> instructions);

    /** Benchmark name this trace belongs to. */
    const std::string &name() const { return name_; }

    /** Number of dynamic instructions. */
    std::size_t size() const { return instructions_.size(); }

    /** Access one instruction. */
    const TraceInstruction &operator[](std::size_t i) const
    {
        return instructions_[i];
    }

    /** The full instruction stream. */
    const std::vector<TraceInstruction> &instructions() const
    {
        return instructions_;
    }

    /** Compute (and cache) summary statistics. */
    const TraceStats &stats() const;

  private:
    std::string name_;
    std::vector<TraceInstruction> instructions_;
    mutable TraceStats stats_;
    mutable bool statsValid_ = false;
};

} // namespace acdse

