#include "trace/trace_generator.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace acdse
{

namespace
{

/** How a static branch decides its outcome on each execution. */
enum class BranchKind : std::uint8_t
{
    Unconditional,  //!< always taken
    Loop,           //!< backward branch with a trip count (exits once)
    Biased,         //!< strongly biased coin
    Pattern,        //!< deterministic periodic pattern
    Random,         //!< near-fair coin (unpredictable)
};

/** One static basic block of the synthetic CFG. */
struct StaticBlock
{
    std::uint64_t startPc;      //!< address of the first instruction
    int size;                   //!< instructions including the branch
    BranchKind kind;            //!< behaviour of the terminating branch
    double takenProb;           //!< for Biased/Random kinds
    double tripMean;            //!< mean trip count for Loop kind
    std::uint32_t patternMask;  //!< for Pattern kind
    int patternLen;             //!< pattern period (<= 16)
    std::uint32_t takenBlock;   //!< successor when taken
    std::uint32_t fallBlock;    //!< successor when not taken
};

constexpr std::uint64_t kCodeBase = 0x0040'0000;
constexpr std::uint64_t kDataBase = 0x1000'0000;
constexpr int kInstBytes = 4;

} // namespace

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::SpecCpu2000: return "SPEC CPU 2000";
      case Suite::MiBench: return "MiBench";
      default: panic("bad suite");
    }
}

std::uint64_t
ProgramProfile::seedFromName(const std::string &name)
{
    // FNV-1a, then a SplitMix64 finaliser for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

TraceGenerator::TraceGenerator(ProgramProfile profile)
    : profile_(std::move(profile))
{
    ACDSE_CHECK(profile_.branchFraction > 0.0 &&
                     profile_.branchFraction < 0.5,
                 "branch fraction must be in (0, 0.5)");
    ACDSE_CHECK(profile_.dataFootprintKb >= 1.0, "footprint too small");
}

Trace
TraceGenerator::generate(std::size_t length) const
{
    ACDSE_CHECK(length > 0, "cannot generate an empty trace");
    const ProgramProfile &p = profile_;
    Rng rng(p.seed ? p.seed : ProgramProfile::seedFromName(p.name));

    // --- Build the static CFG ------------------------------------------
    // One branch terminates each block, so the mean block size fixes the
    // dynamic branch fraction; the block count then fixes the static
    // code footprint.
    const double mean_block = std::max(2.0, 1.0 / p.branchFraction);
    const auto static_insts = static_cast<std::uint64_t>(
        std::max(64.0, p.codeFootprintKb * 1024.0 / kInstBytes));
    const auto num_blocks = static_cast<std::uint32_t>(std::max<double>(
        4.0, static_cast<double>(static_insts) / mean_block));

    std::vector<StaticBlock> blocks(num_blocks);
    // Total-visit budget per block: once exhausted, its branch falls
    // through. This bounds the dynamic iteration product of nested
    // loops (real loops have bounds) and guarantees forward progress.
    std::vector<std::uint32_t> visit_budget(num_blocks);
    std::uint64_t pc = kCodeBase;
    for (std::uint32_t i = 0; i < num_blocks; ++i) {
        StaticBlock &b = blocks[i];
        b.startPc = pc;
        b.size = static_cast<int>(std::clamp<std::uint64_t>(
            rng.nextGeometric(mean_block), 2, 32));
        pc += static_cast<std::uint64_t>(b.size) * kInstBytes;
        visit_budget[i] = 16 + static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rng.nextGeometric(60.0), 240));

        // Jump locality scales with the code size so that large-code
        // programs keep an instruction working set that straddles the
        // L1I capacities of the design space.
        const std::int64_t span = std::max<std::int64_t>(
            32, static_cast<std::int64_t>(num_blocks) / 12);

        // Branch behaviour mix. Backward branches are explicit loops
        // with finite trip counts (taken until the trip expires), which
        // both matches real loop branches and guarantees the walk can
        // never be trapped in a cycle of always-taken branches. The
        // remaining conditionals are easy (biased) with probability
        // branchPredictability, else periodic patterns or near-fair
        // coins (irreducible mispredictions). Unconditional branches
        // always jump forward.
        if (rng.nextBool(0.12)) {
            b.kind = BranchKind::Unconditional;
            b.takenProb = 1.0;
            const std::uint32_t fwd = static_cast<std::uint32_t>(
                rng.nextRange(1, std::max<std::int64_t>(16, span / 2)));
            b.takenBlock = (i + fwd) % num_blocks;
        } else if (rng.nextBool(p.loopBackProb)) {
            b.kind = BranchKind::Loop;
            // Hard-to-predict programs have shorter, more erratic
            // loops (each loop exit is one mispredict).
            b.tripMean = rng.nextDouble(
                3.0, 8.0 + 56.0 * p.branchPredictability);
            const std::uint32_t back =
                static_cast<std::uint32_t>(rng.nextRange(1, 8));
            b.takenBlock = (i >= back) ? i - back : 0;
        } else {
            if (rng.nextBool(p.branchPredictability)) {
                b.kind = BranchKind::Biased;
                b.takenProb = rng.nextBool(0.5)
                                  ? rng.nextDouble(0.92, 0.995)
                                  : rng.nextDouble(0.005, 0.08);
            } else if (rng.nextBool(0.5)) {
                b.kind = BranchKind::Pattern;
                b.patternLen = static_cast<int>(rng.nextRange(2, 10));
                // Force both outcomes to occur within the period so
                // pattern cycles always terminate.
                b.patternMask =
                    (static_cast<std::uint32_t>(rng.next()) | 1u) & ~2u;
                b.takenProb = 0.5;
            } else {
                b.kind = BranchKind::Random;
                b.takenProb = rng.nextDouble(0.35, 0.65);
            }
            // Local jump within the hot region: execution advances
            // through the code as a slowly-moving working set,
            // concentrating dynamic executions on few static branches
            // at a time (as real programs do).
            const std::int64_t delta = rng.nextRange(-span, span);
            b.takenBlock = static_cast<std::uint32_t>(
                (static_cast<std::int64_t>(i) + delta +
                 num_blocks) % num_blocks);
        }
        b.fallBlock = (i + 1) % num_blocks;
    }

    // --- Data-memory state ----------------------------------------------
    const auto footprint = static_cast<std::uint64_t>(
        p.dataFootprintKb * 1024.0);
    const auto hot_bytes = static_cast<std::uint64_t>(std::min(
        p.hotRegionKb * 1024.0, p.dataFootprintKb * 1024.0));
    const int num_streams = std::max(1, p.numStreams);
    std::vector<std::uint64_t> streams(num_streams);
    for (auto &s : streams)
        s = rng.nextBounded(footprint) & ~7ULL;

    auto next_addr = [&](bool irregular) -> std::uint64_t {
        if (irregular)
            return kDataBase + (rng.nextBounded(footprint) & ~7ULL);
        const double roll = rng.nextDouble();
        if (roll < p.probHot)
            return kDataBase + (rng.nextBounded(hot_bytes) & ~7ULL);
        if (roll < p.probHot + p.probStream) {
            auto &s = streams[rng.nextBounded(num_streams)];
            s = (s + static_cast<std::uint64_t>(p.strideBytes)) % footprint;
            return kDataBase + (s & ~7ULL);
        }
        return kDataBase + (rng.nextBounded(footprint) & ~7ULL);
    };

    // --- Instruction mix (non-branch classes) ---------------------------
    const std::vector<double> mix{p.wIntAlu, p.wIntMul, p.wFpAlu,
                                  p.wFpMul, p.wFpDiv, p.wLoad, p.wStore};
    constexpr std::array<InstClass, 7> mix_classes{
        InstClass::IntAlu, InstClass::IntMul, InstClass::FpAlu,
        InstClass::FpMul, InstClass::FpDiv, InstClass::Load,
        InstClass::Store};

    auto dep_dist = [&](std::size_t emitted) -> std::uint32_t {
        if (emitted == 0)
            return 0;
        const std::uint64_t d = rng.nextGeometric(p.meanDepDistance);
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(d, emitted));
    };

    // --- Walk the CFG ----------------------------------------------------
    std::vector<TraceInstruction> insts;
    insts.reserve(length);
    std::vector<std::uint32_t> visit_counts(num_blocks, 0);
    std::vector<std::uint32_t> loop_remaining(num_blocks, 0);
    std::uint32_t cur = 0;
    std::size_t last_load = 0;      // index+1 of most recent load
    while (insts.size() < length) {
        const StaticBlock &b = blocks[cur];
        // Body instructions (all but the final branch).
        for (int k = 0; k + 1 < b.size && insts.size() < length; ++k) {
            TraceInstruction inst{};
            inst.pc = b.startPc + static_cast<std::uint64_t>(k) *
                                      kInstBytes;
            inst.cls = mix_classes[rng.nextDiscrete(mix)];
            const std::size_t emitted = insts.size();
            if (!rng.nextBool(p.independentFraction)) {
                inst.srcDist1 = dep_dist(emitted);
                if (rng.nextBool(p.twoSourceFraction))
                    inst.srcDist2 = dep_dist(emitted);
            }
            if (isMemClass(inst.cls)) {
                bool irregular = false;
                if (inst.cls == InstClass::Load && last_load &&
                    rng.nextBool(p.pointerChaseFraction)) {
                    // Pointer chase: address produced by the previous
                    // load, landing somewhere irregular.
                    const std::size_t dist = emitted - (last_load - 1);
                    if (dist <= 64) {
                        inst.srcDist1 = static_cast<std::uint32_t>(dist);
                        irregular = true;
                    }
                }
                inst.addr = next_addr(irregular);
                if (inst.cls == InstClass::Load)
                    last_load = emitted + 1;
            }
            insts.push_back(inst);
        }
        if (insts.size() >= length)
            break;

        // Terminating branch.
        const std::uint32_t visit = visit_counts[cur]++;
        const bool budget_spent = visit >= visit_budget[cur];
        TraceInstruction br{};
        br.pc = b.startPc +
                static_cast<std::uint64_t>(b.size - 1) * kInstBytes;
        br.cls = InstClass::Branch;
        br.conditional = b.kind != BranchKind::Unconditional;
        switch (budget_spent && b.kind != BranchKind::Unconditional
                    ? BranchKind::Biased
                    : b.kind) {
          case BranchKind::Unconditional:
            br.taken = true;
            break;
          case BranchKind::Loop:
            // Stay in the loop until the trip count expires, then exit
            // once and draw a fresh trip count.
            if (loop_remaining[cur] == 0)
                loop_remaining[cur] = static_cast<std::uint32_t>(
                    rng.nextGeometric(b.tripMean));
            br.taken = --loop_remaining[cur] > 0;
            break;
          case BranchKind::Biased:
          case BranchKind::Random:
            br.taken = budget_spent ? false : rng.nextBool(b.takenProb);
            break;
          case BranchKind::Pattern:
            br.taken = (b.patternMask >>
                        (visit % static_cast<std::uint32_t>(
                             b.patternLen))) & 1u;
            break;
        }
        if (br.conditional && rng.nextBool(0.3))
            br.srcDist1 = dep_dist(insts.size());
        const std::uint32_t next = br.taken ? b.takenBlock : b.fallBlock;
        br.target = blocks[next].startPc;
        insts.push_back(br);
        cur = next;
    }

    return Trace(p.name, std::move(insts));
}

} // namespace acdse
