/**
 * @file
 * Deterministic synthetic-trace generation from a ProgramProfile.
 *
 * The generator builds a static control-flow graph (basic blocks sized
 * so that one block-terminating branch per block yields the profile's
 * branch fraction, spread over the profile's code footprint) and then
 * walks it, emitting instructions whose classes, register dependences
 * and memory addresses follow the profile's distributions. The walk is
 * seeded from the profile, so the same (profile, length) pair always
 * produces bit-identical traces.
 */

#pragma once

#include <cstddef>

#include "trace/program_profile.hh"
#include "trace/trace.hh"

namespace acdse
{

/** Generates deterministic traces for one program profile. */
class TraceGenerator
{
  public:
    /** Construct for a given profile. */
    explicit TraceGenerator(ProgramProfile profile);

    /** Generate a trace of @p length dynamic instructions. */
    Trace generate(std::size_t length) const;

    /** The profile this generator realises. */
    const ProgramProfile &profile() const { return profile_; }

  private:
    ProgramProfile profile_;
};

} // namespace acdse

