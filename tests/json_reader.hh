/**
 * @file
 * A minimal recursive-descent JSON reader for tests only: enough to
 * round-trip what base/json.hh's JsonWriter and obs/stats_export.cc
 * emit (objects, arrays, strings, numbers, bools, null) and assert on
 * the result. Production code never parses JSON (see base/json.hh);
 * keep it that way -- this header must stay under tests/.
 *
 * Errors throw std::runtime_error with a byte offset, which is plenty
 * for a failing test.
 */

#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace acdse::testjson
{

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && object.contains(key);
    }

    /** Member access; throws on missing key or non-object. */
    const Value &at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("json: not an object");
        const auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("json: missing key '" + key + "'");
        return it->second;
    }

    double asNumber() const
    {
        if (kind != Kind::Number)
            throw std::runtime_error("json: not a number");
        return number;
    }

    const std::string &asString() const
    {
        if (kind != Kind::String)
            throw std::runtime_error("json: not a string");
        return text;
    }
};

namespace detail
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parseDocument()
    {
        Value value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing content");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Value parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          default:
            return parseLiteralOrNumber();
        }
    }

    Value parseObject()
    {
        expect('{');
        Value out;
        out.kind = Value::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skipSpace();
            Value key = parseString();
            skipSpace();
            expect(':');
            out.object.emplace(key.text, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return out;
        }
    }

    Value parseArray()
    {
        expect('[');
        Value out;
        out.kind = Value::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.array.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return out;
        }
    }

    Value parseString()
    {
        expect('"');
        Value out;
        out.kind = Value::Kind::String;
        for (;;) {
            const char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c != '\\') {
                out.text.push_back(c);
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.text.push_back(esc);
                break;
              case 'n':
                out.text.push_back('\n');
                break;
              case 't':
                out.text.push_back('\t');
                break;
              case 'r':
                out.text.push_back('\r');
                break;
              case 'b':
                out.text.push_back('\b');
                break;
              case 'f':
                out.text.push_back('\f');
                break;
              case 'u': {
                // The writer only emits \u00XX control escapes; decode
                // the low byte and reject anything wider.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const std::string hex(text_.substr(pos_, 4));
                pos_ += 4;
                const unsigned code = static_cast<unsigned>(
                    std::stoul(hex, nullptr, 16));
                if (code > 0xff)
                    fail("non-latin \\u escape unsupported");
                out.text.push_back(static_cast<char>(code));
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value parseLiteralOrNumber()
    {
        if (consume("true")) {
            Value out;
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return out;
        }
        if (consume("false")) {
            Value out;
            out.kind = Value::Kind::Bool;
            return out;
        }
        if (consume("null"))
            return Value{};
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("unexpected character");
        Value out;
        out.kind = Value::Kind::Number;
        try {
            out.number =
                std::stod(std::string(text_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return out;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse a complete JSON document; throws std::runtime_error. */
inline Value
parse(std::string_view text)
{
    return detail::Parser(text).parseDocument();
}

} // namespace acdse::testjson
