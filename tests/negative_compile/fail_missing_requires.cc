// Negative-compile case: calling a function annotated
// ACDSE_REQUIRES(mutex) without holding the mutex MUST be rejected by
// -Wthread-safety -Werror.

#include "base/sync.hh"

namespace
{

class Account
{
  public:
    long balanceLocked() const ACDSE_REQUIRES(mutex_)
    {
        return balance_;
    }

    long readRacy() const
    {
        return balanceLocked(); // caller does not hold mutex_
    }

  private:
    mutable acdse::Mutex mutex_;
    long balance_ ACDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

long
negativeCompileMissingRequires()
{
    const Account account;
    return account.readRacy();
}
