// Negative-compile case: writing guarded state while holding only a
// shared (reader) lock MUST be rejected -- readers may run
// concurrently, so a write under a shared hold is still a race.

#include "base/sync.hh"

namespace
{

class Stats
{
  public:
    void bumpUnderReaderLock()
    {
        acdse::ReaderLock lock(mutex_); // shared hold only
        ++events_;                      // write needs exclusive
    }

  private:
    acdse::SharedMutex mutex_;
    long events_ ACDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

void
negativeCompileSharedWrite()
{
    Stats stats;
    stats.bumpUnderReaderLock();
}
