// Negative-compile case: writing ACDSE_GUARDED_BY state without
// holding its mutex MUST be rejected by -Wthread-safety -Werror. The
// harness asserts this file fails to compile with a thread-safety
// diagnostic; if it ever compiles, the gate is dead.

#include "base/sync.hh"

namespace
{

class Account
{
  public:
    void depositRacy(long amount)
    {
        balance_ += amount; // no lock held: analysis must reject
    }

  private:
    acdse::Mutex mutex_;
    long balance_ ACDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

void
negativeCompileUnguardedWrite()
{
    Account account;
    account.depositRacy(1);
}
