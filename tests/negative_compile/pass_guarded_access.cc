// Negative-compile control case: fully disciplined locking through the
// base/sync.hh wrappers. Must compile cleanly under
// -Wthread-safety -Wthread-safety-beta -Werror -- if this one fails,
// the harness (not the annotations under test) is broken.

#include "base/sync.hh"

namespace
{

class Account
{
  public:
    void deposit(long amount)
    {
        acdse::MutexLock lock(mutex_);
        balance_ += amount;
    }

    long balanceLocked() const ACDSE_REQUIRES(mutex_)
    {
        return balance_;
    }

    long read()
    {
        acdse::MutexLock lock(mutex_);
        return balanceLocked();
    }

  private:
    mutable acdse::Mutex mutex_;
    long balance_ ACDSE_GUARDED_BY(mutex_) = 0;
};

class Stats
{
  public:
    void bump()
    {
        acdse::WriterLock lock(mutex_);
        ++events_;
    }

    long events() const
    {
        acdse::ReaderLock lock(mutex_);
        return events_;
    }

  private:
    mutable acdse::SharedMutex mutex_;
    long events_ ACDSE_GUARDED_BY(mutex_) = 0;
};

class Queue
{
  public:
    void push()
    {
        acdse::MutexLock lock(mutex_);
        ++pending_;
        cv_.notifyOne();
    }

    void pop()
    {
        acdse::MutexLock lock(mutex_);
        // Explicit predicate loop: the analysis cannot see into a
        // predicate lambda (see base/sync.hh).
        while (pending_ == 0)
            cv_.wait(mutex_);
        --pending_;
    }

  private:
    acdse::Mutex mutex_;
    acdse::CondVar cv_;
    long pending_ ACDSE_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
negativeCompileControlCase()
{
    Account account;
    account.deposit(1);
    Stats stats;
    stats.bump();
    Queue queue;
    queue.push();
    queue.pop();
    return static_cast<int>(account.read() + stats.events());
}
