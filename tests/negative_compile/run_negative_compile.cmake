# ctest driver for the negative-compile suite (see the sibling *.cc
# snippets): proves the -Wthread-safety gate actually fires.
#
#   cmake -DCXX=<clang++> -DSNIPPET=<file.cc> -DINCLUDE_DIR=<repo>/src
#         -DEXPECT=pass|fail -P run_negative_compile.cmake
#
# EXPECT=fail snippets must be rejected *with a thread-safety
# diagnostic* -- a snippet that fails for some unrelated reason (a
# typo, a missing include) would otherwise keep the test green while
# proving nothing about the gate.

foreach(required CXX SNIPPET INCLUDE_DIR EXPECT)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "run_negative_compile.cmake: ${required} not set")
    endif()
endforeach()

execute_process(
    COMMAND ${CXX} -std=c++20 -fsyntax-only
            -Wthread-safety -Wthread-safety-beta -Werror
            -I${INCLUDE_DIR} ${SNIPPET}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE compile_out
    ERROR_VARIABLE compile_err)

if(EXPECT STREQUAL "pass")
    if(NOT exit_code EQUAL 0)
        message(FATAL_ERROR
                "expected ${SNIPPET} to compile cleanly, got exit "
                "${exit_code}:\n${compile_err}")
    endif()
elseif(EXPECT STREQUAL "fail")
    if(exit_code EQUAL 0)
        message(FATAL_ERROR
                "expected ${SNIPPET} to be rejected by -Wthread-safety, "
                "but it compiled cleanly: the gate is not firing")
    endif()
    if(NOT compile_err MATCHES "Wthread-safety")
        message(FATAL_ERROR
                "${SNIPPET} failed to compile, but not with a "
                "thread-safety diagnostic; the case proves nothing:\n"
                "${compile_err}")
    endif()
else()
    message(FATAL_ERROR "EXPECT must be pass or fail, got '${EXPECT}'")
endif()
