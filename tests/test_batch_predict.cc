/**
 * @file
 * Bit-exactness of the batched inference kernels: every batched predict
 * API must return, for each point, the *same double* as the scalar path
 * -- at batch size 0, 1, around the lane width, and large; with the
 * log-target transform on and off; through the full ensemble; for every
 * served metric; and under concurrent batched prediction on a shared
 * predictor (the suite runs under TSan in CI).
 *
 * All comparisons are EXPECT_EQ on doubles (no tolerance) on purpose:
 * vectorising across design points keeps each point's accumulation
 * order unchanged, so batching is a scheduling decision, never a
 * numerical one -- the same contract the thread pool obeys.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/design_space.hh"
#include "base/rng.hh"
#include "base/simd.hh"
#include "base/thread_pool.hh"
#include "core/architecture_centric_predictor.hh"
#include "ml/linear_regression.hh"
#include "ml/mlp.hh"
#include "ml/scaler.hh"
#include "serve/prediction_service.hh"

namespace acdse
{
namespace
{

/** Batch sizes that straddle every remainder case of the lane width. */
std::vector<std::size_t>
batchSizes()
{
    constexpr std::size_t lanes = simd::kLanes;
    std::vector<std::size_t> sizes{0, 1, lanes, lanes + 1,
                                   3 * lanes + 5, 200};
    if (lanes > 1)
        sizes.push_back(lanes - 1);
    return sizes;
}

/** A smooth positive analytic "program" over the design space. */
double
syntheticMetric(const MicroarchConfig &config, double wide, double mem)
{
    return 1000.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024)) +
           20000.0 / std::sqrt(static_cast<double>(config.robSize()));
}

/** Row-major feature matrix for a set of configurations. */
std::vector<double>
featureRows(const std::vector<MicroarchConfig> &configs)
{
    std::vector<double> rows(configs.size() * kNumParams);
    for (std::size_t i = 0; i < configs.size(); ++i)
        configs[i].featuresInto(&rows[i * kNumParams]);
    return rows;
}

/** One trained Mlp over the design space (small but non-trivial). */
Mlp
trainedMlp()
{
    const auto configs = DesignSpace::sampleValidConfigs(96, 7);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (const auto &config : configs) {
        xs.push_back(config.asFeatureVector());
        ys.push_back(syntheticMetric(config, 1.3, 0.8));
    }
    MlpOptions options;
    options.epochs = 120;
    Mlp mlp(options);
    mlp.train(xs, ys);
    return mlp;
}

TEST(BatchDeterminism, ScalerBatchMatchesScalar)
{
    Rng rng(11);
    std::vector<std::vector<double>> samples;
    for (std::size_t i = 0; i < 40; ++i) {
        std::vector<double> x(13);
        for (double &v : x)
            v = rng.nextDouble() * 100.0 - 50.0;
        samples.push_back(std::move(x));
    }
    StandardScaler scaler;
    scaler.fit(samples);

    constexpr std::size_t lanes = simd::kLanes;
    const std::size_t d = scaler.dims();
    std::vector<double> rows(lanes * d);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < d; ++i)
            rows[l * d + i] = samples[l][i];
    }
    std::vector<double> block(d * lanes);
    scaler.transformBatch(rows.data(), lanes, block.data());

    std::vector<double> scalar;
    for (std::size_t l = 0; l < lanes; ++l) {
        scaler.transformInto(samples[l], scalar);
        for (std::size_t i = 0; i < d; ++i)
            EXPECT_EQ(block[i * lanes + l], scalar[i])
                << "lane " << l << " feature " << i;
    }
}

TEST(BatchDeterminism, LinearRegressionSoaMatchesScalar)
{
    Rng rng(23);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < 30; ++i) {
        std::vector<double> x(5);
        for (double &v : x)
            v = rng.nextDouble() * 4.0 - 2.0;
        ys.push_back(2.0 + 3.0 * x[0] - x[3] +
                     0.1 * rng.nextDouble());
        xs.push_back(std::move(x));
    }
    LinearRegression regression;
    regression.fit(xs, ys);

    const std::size_t lanes = 7; // predictSoa takes any width
    std::vector<double> soa(5 * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t j = 0; j < 5; ++j)
            soa[j * lanes + l] = xs[l][j];
    }
    std::vector<double> out(lanes);
    regression.predictSoa(soa.data(), lanes, out.data());
    for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(out[l], regression.predict(xs[l])) << "lane " << l;
}

TEST(BatchDeterminism, MlpBatchMatchesScalarAcrossSizes)
{
    const Mlp mlp = trainedMlp();
    const auto queries = DesignSpace::sampleValidConfigs(200, 99);
    const auto rows = featureRows(queries);

    MlpBatchScratch scratch;
    for (std::size_t count : batchSizes()) {
        ASSERT_LE(count, queries.size());
        std::vector<double> out(count, -1.0);
        mlp.predictBatch(rows.data(), count, out.data(), scratch);
        for (std::size_t c = 0; c < count; ++c) {
            EXPECT_EQ(out[c], mlp.predict(queries[c].asFeatureVector()))
                << "batch " << count << " point " << c;
        }
    }
}

TEST(BatchDeterminism, ProgramSpecificBatchMatchesScalar)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 3);
    std::vector<double> values;
    for (const auto &config : train)
        values.push_back(syntheticMetric(config, 0.9, 1.4));
    const auto queries = DesignSpace::sampleValidConfigs(200, 17);
    const auto rows = featureRows(queries);

    for (bool logTarget : {true, false}) {
        ProgramSpecificOptions options;
        options.logTarget = logTarget;
        options.mlp.epochs = 120;
        ProgramSpecificPredictor predictor(options);
        predictor.train(train, values);

        MlpBatchScratch scratch;
        std::vector<double> scaled;
        for (std::size_t count : batchSizes()) {
            std::vector<double> out(count, -1.0);
            predictor.predictBatchFromFeatures(rows.data(), count,
                                               out.data(), scratch);
            for (std::size_t c = 0; c < count; ++c) {
                EXPECT_EQ(out[c],
                          predictor.predictFromFeatures(
                              queries[c].asFeatureVector(), scaled))
                    << "logTarget " << logTarget << " batch " << count
                    << " point " << c;
            }
        }
    }
}

/** One fitted architecture-centric ensemble over synthetic programs. */
ArchitectureCentricPredictor
fittedEnsemble(std::size_t num_models, double shift)
{
    const auto train = DesignSpace::sampleValidConfigs(96, 1);
    const auto responses = DesignSpace::sampleValidConfigs(24, 2);

    std::vector<ProgramTrainingSet> sets(num_models);
    for (std::size_t j = 0; j < num_models; ++j) {
        const double wide = 0.5 + 0.25 * (static_cast<double>(j) + shift);
        const double mem = 2.0 - 0.15 * static_cast<double>(j);
        // snprintf, not `"p" + std::to_string(j)`: the latter trips
        // a GCC 12 -O3 -Wrestrict false positive (GCC PR105651).
        char name[16];
        std::snprintf(name, sizeof(name), "p%zu", j);
        sets[j].name = name;
        sets[j].configs = train;
        for (const auto &config : train)
            sets[j].values.push_back(syntheticMetric(config, wide, mem));
    }
    ArchCentricOptions options;
    options.programModel.mlp.epochs = 120;
    ArchitectureCentricPredictor predictor(options);
    predictor.trainOffline(sets);

    std::vector<double> response_values;
    for (const auto &config : responses)
        response_values.push_back(
            syntheticMetric(config, 1.0 + shift, 1.0));
    predictor.fitResponses(responses, response_values);
    return predictor;
}

TEST(BatchDeterminism, ArchCentricBatchMatchesScalar)
{
    const ArchitectureCentricPredictor predictor = fittedEnsemble(4, 0.0);
    const auto queries = DesignSpace::sampleValidConfigs(200, 29);
    const auto rows = featureRows(queries);

    BatchPredictScratch batch_scratch;
    PredictScratch scalar_scratch;
    for (std::size_t count : batchSizes()) {
        std::vector<double> out(count, -1.0);
        predictor.predictBatchFromFeatures(rows.data(), count, out.data(),
                                           batch_scratch);
        for (std::size_t c = 0; c < count; ++c) {
            EXPECT_EQ(out[c],
                      predictor.predictFromFeatures(
                          queries[c].asFeatureVector(), scalar_scratch))
                << "batch " << count << " point " << c;
        }
    }
}

TEST(BatchDeterminism, ServiceMatchesScalarForEveryMetric)
{
    // All four served metrics go through the batched chunk path; each
    // row value must equal the per-point scalar ensemble prediction,
    // inline (single-thread) and chunked across the pool alike.
    ModelArtifact artifact;
    artifact.setTag("batch determinism");
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
        artifact.add(static_cast<Metric>(m),
                     fittedEnsemble(3, 0.3 * static_cast<double>(m)));
    }
    const auto queries = DesignSpace::sampleValidConfigs(333, 57);

    std::vector<std::vector<PredictionRow>> runs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ServeOptions options;
        options.threads = threads;
        options.inlineBelow = threads > 1 ? 0 : queries.size();
        options.chunk = 64; // 333 points: full chunks plus a remainder
        PredictionService service(artifact, options);
        runs.push_back(service.predict(queries));
    }

    PredictScratch scratch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto features = queries[i].asFeatureVector();
        for (const auto &entry : artifact.entries()) {
            const double expected =
                entry.predictor.predictFromFeatures(features, scratch);
            for (const auto &rows : runs) {
                EXPECT_EQ(rows[i].get(entry.metric), expected)
                    << "point " << i << " metric "
                    << metricName(entry.metric);
            }
        }
    }
}

TEST(BatchDeterminism, ConcurrentBatchedPredictIsExact)
{
    // Many threads run the batched kernels on one shared predictor,
    // each with its own scratch, writing disjoint output slices -- the
    // serving concurrency model. Results must equal the serial batched
    // run (and, transitively, the scalar path). TSan covers the
    // data-race side of this contract in CI.
    const ArchitectureCentricPredictor predictor = fittedEnsemble(4, 0.7);
    const auto queries = DesignSpace::sampleValidConfigs(512, 71);
    const auto rows = featureRows(queries);
    const std::size_t n = queries.size();

    BatchPredictScratch serial_scratch;
    std::vector<double> serial(n);
    predictor.predictBatchFromFeatures(rows.data(), n, serial.data(),
                                       serial_scratch);

    constexpr std::size_t kSlice = 48; // not a multiple of the lane width
    std::vector<double> concurrent(n, -1.0);
    ThreadPool pool(6);
    pool.parallelFor(0, (n + kSlice - 1) / kSlice, [&](std::size_t s) {
        const std::size_t begin = s * kSlice;
        const std::size_t count = std::min(kSlice, n - begin);
        BatchPredictScratch scratch;
        predictor.predictBatchFromFeatures(
            rows.data() + begin * kNumParams, count,
            concurrent.data() + begin, scratch);
    });

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(concurrent[i], serial[i]) << "point " << i;
}

} // namespace
} // namespace acdse
