/**
 * @file
 * Bit-identity contract of the lane-batched simulator replay
 * (sim/batch.hh): for every batch size, warmup setting and sampling
 * methodology, the batched path must reproduce the scalar path's
 * metrics EXACTLY -- EXPECT_EQ on the doubles, not EXPECT_NEAR. The
 * lanes never interact, so any divergence is a transcription bug, not
 * rounding.
 */

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "arch/design_space.hh"
#include "base/thread_pool.hh"
#include "sim/batch.hh"
#include "sim/cacti.hh"
#include "sim/sampled_sim.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

Trace
makeTrace(const std::string &name, std::size_t length)
{
    return TraceGenerator(profileByName(name)).generate(length);
}

void
expectIdentical(const SimulationResult &batched,
                const SimulationResult &scalar)
{
    // All four campaign metrics, exactly.
    EXPECT_EQ(batched.metrics.cycles, scalar.metrics.cycles);
    EXPECT_EQ(batched.metrics.energyNj, scalar.metrics.energyNj);
    EXPECT_EQ(batched.metrics.ed, scalar.metrics.ed);
    EXPECT_EQ(batched.metrics.edd, scalar.metrics.edd);
    EXPECT_EQ(batched.dynamicNj, scalar.dynamicNj);
    EXPECT_EQ(batched.staticNj, scalar.staticNj);
    // Every timing statistic the core reports.
    EXPECT_EQ(batched.stats.cycles, scalar.stats.cycles);
    EXPECT_EQ(batched.stats.instructions, scalar.stats.instructions);
    EXPECT_EQ(batched.stats.branches, scalar.stats.branches);
    EXPECT_EQ(batched.stats.mispredicts, scalar.stats.mispredicts);
    EXPECT_EQ(batched.stats.btbMisses, scalar.stats.btbMisses);
    EXPECT_EQ(batched.stats.il1Misses, scalar.stats.il1Misses);
    EXPECT_EQ(batched.stats.dl1Misses, scalar.stats.dl1Misses);
    EXPECT_EQ(batched.stats.l2Misses, scalar.stats.l2Misses);
    EXPECT_EQ(batched.stats.dispatchStallRob,
              scalar.stats.dispatchStallRob);
    EXPECT_EQ(batched.stats.dispatchStallIq,
              scalar.stats.dispatchStallIq);
    EXPECT_EQ(batched.stats.dispatchStallLsq,
              scalar.stats.dispatchStallLsq);
    EXPECT_EQ(batched.stats.dispatchStallRegs,
              scalar.stats.dispatchStallRegs);
    EXPECT_EQ(batched.stats.fetchStallBranches,
              scalar.stats.fetchStallBranches);
}

// Batch sizes around the lane count: a lone config, a partial group,
// a full group, and a full group plus a straggler.
class BatchSimSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BatchSimSizes, BitIdenticalToScalar)
{
    const std::size_t batch = GetParam();
    const Trace trace = makeTrace("gcc", 8000);
    const auto configs =
        DesignSpace::sampleValidConfigs(batch, 1234 + batch);

    for (const std::size_t warmup : {std::size_t{0}, std::size_t{2000}}) {
        SimulationOptions options;
        options.warmupInstructions = warmup;
        const auto batched = simulateBatch(
            std::span<const MicroarchConfig>(configs), trace, options);
        ASSERT_EQ(batched.size(), configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i) {
            SCOPED_TRACE(::testing::Message()
                         << "config " << i << " warmup " << warmup);
            expectIdentical(batched[i],
                            simulate(configs[i], trace, options));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AroundLaneCount, BatchSimSizes,
                         ::testing::Values(1, 7, 8, 9));

TEST(BatchSim, ScratchReuseAcrossTracesAndBatches)
{
    // One scratch serves different traces and different configs in
    // sequence; reconfigure/epoch-reset must leave no residue from
    // earlier batches (this is exactly how campaign workers use it).
    SimScratch scratch;
    SimulationOptions options;
    options.warmupInstructions = 1000;

    for (const char *program : {"gcc", "mcf", "equake"}) {
        const Trace trace = makeTrace(program, 6000);
        const DecodedTrace decoded(trace);
        const auto configs = DesignSpace::sampleValidConfigs(
            kSimLanes, 17 + static_cast<unsigned>(program[0]));
        std::vector<SimulationResult> batched(configs.size());
        simulateBatch(std::span<const MicroarchConfig>(configs),
                      decoded, options,
                      std::span<SimulationResult>(batched), scratch);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            SCOPED_TRACE(::testing::Message()
                         << program << " config " << i);
            expectIdentical(batched[i],
                            simulate(configs[i], trace, options));
        }
    }
}

TEST(BatchSim, SimPointBatchBitIdenticalToScalar)
{
    const Trace trace = makeTrace("gzip", 24000);
    const auto configs = DesignSpace::sampleValidConfigs(9, 4242);
    SimPointOptions options;
    options.intervalLength = 2000;
    options.maxClusters = 6;

    const auto batched = simulateWithSimPointsBatch(
        std::span<const MicroarchConfig>(configs), trace, options);
    ASSERT_EQ(batched.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "config " << i);
        const SampledResult scalar =
            simulateWithSimPoints(configs[i], trace, options);
        EXPECT_EQ(batched[i].metrics.cycles, scalar.metrics.cycles);
        EXPECT_EQ(batched[i].metrics.energyNj, scalar.metrics.energyNj);
        EXPECT_EQ(batched[i].metrics.ed, scalar.metrics.ed);
        EXPECT_EQ(batched[i].metrics.edd, scalar.metrics.edd);
        EXPECT_EQ(batched[i].simulatedInstructions,
                  scalar.simulatedInstructions);
        EXPECT_EQ(batched[i].detailFraction, scalar.detailFraction);
    }
}

TEST(BatchSim, SmartsBatchBitIdenticalToScalar)
{
    const Trace trace = makeTrace("ammp", 16000);
    const auto configs = DesignSpace::sampleValidConfigs(9, 99);
    SmartsOptions options;
    options.unitInstructions = 500;
    options.samplingPeriod = 8;
    options.offset = 3;

    const auto batched = simulateWithSmartsBatch(
        std::span<const MicroarchConfig>(configs), trace, options);
    ASSERT_EQ(batched.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "config " << i);
        const SampledResult scalar =
            simulateWithSmarts(configs[i], trace, options);
        EXPECT_EQ(batched[i].metrics.cycles, scalar.metrics.cycles);
        EXPECT_EQ(batched[i].metrics.energyNj, scalar.metrics.energyNj);
        EXPECT_EQ(batched[i].metrics.ed, scalar.metrics.ed);
        EXPECT_EQ(batched[i].metrics.edd, scalar.metrics.edd);
        EXPECT_EQ(batched[i].simulatedInstructions,
                  scalar.simulatedInstructions);
        EXPECT_EQ(batched[i].detailFraction, scalar.detailFraction);
    }
}

TEST(BatchSim, CactiMemoisationServesRepeatedGeometry)
{
    const CactiMemoStats before = cactiMemoStats();
    // Same geometry twice: the second round must be all hits.
    (void)estimateCache(32768, 2, 32, 1);
    (void)estimateCache(32768, 2, 32, 1);
    const CactiMemoStats after = cactiMemoStats();
    EXPECT_GE(after.hits, before.hits + 1);
    // And memoisation must not change values.
    const ArrayEstimate a = estimateCache(16384, 4, 32, 1);
    const ArrayEstimate b = estimateCache(16384, 4, 32, 1);
    EXPECT_EQ(a.readEnergyNj, b.readEnergyNj);
    EXPECT_EQ(a.writeEnergyNj, b.writeEnergyNj);
    EXPECT_EQ(a.leakageNjPerCycle, b.leakageNjPerCycle);
    EXPECT_EQ(a.latencyCycles, b.latencyCycles);
}

// TSan-facing: concurrent batches share one immutable DecodedTrace
// and the process-wide cacti memo table; each worker owns its scratch.
// Run under ACDSE_SANITIZE=thread by the CI thread-safety job (suite
// name is matched by the BatchSim regex in ci.yml).
TEST(BatchSimConcurrency, ParallelBatchesShareDecodedTrace)
{
    const Trace trace = makeTrace("vpr", 6000);
    const DecodedTrace decoded(trace);
    const auto configs = DesignSpace::sampleValidConfigs(24, 7);
    SimulationOptions options;
    options.warmupInstructions = 1000;

    ThreadPool pool(4);
    std::vector<SimulationResult> batched(configs.size());
    pool.parallelFor(0, (configs.size() + kSimLanes - 1) / kSimLanes,
                     [&](std::size_t g) {
                         SimScratch scratch;
                         const std::size_t first = g * kSimLanes;
                         const std::size_t n = std::min(
                             kSimLanes, configs.size() - first);
                         simulateBatch(
                             std::span<const MicroarchConfig>(
                                 configs.data() + first, n),
                             decoded, options,
                             std::span<SimulationResult>(
                                 batched.data() + first, n),
                             scratch);
                     });
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "config " << i);
        expectIdentical(batched[i],
                        simulate(configs[i], trace, options));
    }
}

} // namespace
} // namespace acdse
