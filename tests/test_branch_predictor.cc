/**
 * @file
 * Unit tests for the gshare direction predictor and BTB.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/branch_predictor.hh"

namespace acdse
{
namespace
{

TEST(Gshare, LearnsAlwaysTakenBranch)
{
    GsharePredictor bp(1024);
    const std::uint64_t pc = 0x400100;
    for (int i = 0; i < 50; ++i)
        bp.update(pc, true);
    // After training, prediction must be taken (whatever the history,
    // the counters it trained are saturated).
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        correct += bp.predict(pc);
        bp.update(pc, true);
    }
    EXPECT_GE(correct, 18);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor bp(4096);
    const std::uint64_t pc = 0x400200;
    // Warm up on a strict alternation; the global history
    // disambiguates the two contexts.
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, taken);
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(pc) == taken;
        bp.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GE(correct, 95);
}

TEST(Gshare, CountsMispredicts)
{
    GsharePredictor bp(1024);
    const std::uint64_t pc = 0x400300;
    for (int i = 0; i < 10; ++i)
        bp.update(pc, true);
    const std::uint64_t before = bp.mispredicts();
    bp.update(pc, false); // trained taken -> this one is wrong
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST(Gshare, RandomBranchNearHalfAccuracy)
{
    GsharePredictor bp(4096);
    Rng rng(9);
    const std::uint64_t pc = 0x400400;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.nextBool(0.5);
        correct += bp.predict(pc) == taken;
        bp.update(pc, taken);
    }
    EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.08);
}

TEST(Gshare, BiggerTableNoWorseUnderAliasingPressure)
{
    // Thousands of independently-biased branches: a small table aliases
    // destructively, a large one does not.
    auto run = [](int entries) {
        GsharePredictor bp(entries);
        Rng rng(31);
        std::vector<std::uint64_t> pcs(4000);
        std::vector<bool> bias(4000);
        for (int i = 0; i < 4000; ++i) {
            pcs[i] = 0x400000 + 4ULL * static_cast<std::uint64_t>(i);
            bias[i] = rng.nextBool(0.5);
        }
        std::uint64_t wrong = 0;
        for (int round = 0; round < 12; ++round) {
            for (int i = 0; i < 4000; ++i) {
                const bool taken = bias[i];
                wrong += bp.predict(pcs[i]) != taken;
                bp.update(pcs[i], taken);
            }
        }
        return wrong;
    };
    const std::uint64_t small = run(1024);
    const std::uint64_t large = run(32768);
    EXPECT_LT(large, small);
}

TEST(Btb, MissThenHit)
{
    Btb btb(1024);
    EXPECT_FALSE(btb.lookup(0x400500));
    btb.update(0x400500, 0x400800);
    EXPECT_TRUE(btb.lookup(0x400500));
}

TEST(Btb, TagDistinguishesAliases)
{
    Btb btb(16); // tiny: many PCs share a slot
    btb.update(0x400000, 0x1);
    EXPECT_TRUE(btb.lookup(0x400000));
    // Same index (pc>>2 mod 16), different tag.
    EXPECT_FALSE(btb.lookup(0x400000 + 16 * 4));
    btb.update(0x400000 + 16 * 4, 0x2);
    EXPECT_TRUE(btb.lookup(0x400000 + 16 * 4));
    EXPECT_FALSE(btb.lookup(0x400000)); // evicted
}

TEST(Btb, CountsLookupsAndMisses)
{
    Btb btb(64);
    btb.lookup(0x1000);
    btb.lookup(0x1000);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.misses(), 2u);
    btb.update(0x1000, 0x2000);
    btb.lookup(0x1000);
    EXPECT_EQ(btb.misses(), 2u);
}

TEST(GshareDeathTest, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH(GsharePredictor(1000), "power of two");
    EXPECT_DEATH(Btb(100), "power of two");
}

} // namespace
} // namespace acdse
