/**
 * @file
 * Unit and property tests for the set-associative caches and the
 * two-level hierarchy.
 */

#include <gtest/gtest.h>

#include "arch/design_space.hh"
#include "base/rng.hh"
#include "sim/cache.hh"

namespace acdse
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    Cache cache(1024, 2, 32);
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x11f, false).hit); // same 32B line
    EXPECT_FALSE(cache.access(0x120, false).hit); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // Direct-mapped 2-set cache: lines mapping to set 0 are multiples
    // of 64 with even line index.
    Cache cache(64, 1, 32); // 2 sets, 1 way
    EXPECT_FALSE(cache.access(0x000, false).hit);
    EXPECT_FALSE(cache.access(0x040, false).hit); // same set, evicts
    EXPECT_FALSE(cache.access(0x000, false).hit); // miss again
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache cache(128, 2, 32); // 2 sets, 2 ways
    EXPECT_FALSE(cache.access(0x000, false).hit);
    EXPECT_FALSE(cache.access(0x040, false).hit); // same set, way 2
    EXPECT_TRUE(cache.access(0x000, false).hit);
    EXPECT_TRUE(cache.access(0x040, false).hit);
}

TEST(Cache, TrueLruOrder)
{
    Cache cache(128, 2, 32); // 2 sets, 2 ways
    cache.access(0xA00, false); // set 0
    cache.access(0xB00, false); // set 0 (A older)
    cache.access(0xA00, false); // A now MRU
    cache.access(0xC00, false); // evicts B (LRU)
    EXPECT_TRUE(cache.access(0xA00, false).hit);
    EXPECT_FALSE(cache.access(0xB00, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(64, 1, 32);
    cache.access(0x000, true); // dirty line in set 0
    const CacheAccessResult r = cache.access(0x040, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writebackDirty);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache cache(64, 1, 32);
    cache.access(0x000, false);
    EXPECT_FALSE(cache.access(0x040, false).writebackDirty);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache cache(128, 2, 32);
    cache.access(0x000, false);
    EXPECT_TRUE(cache.probe(0x000));
    EXPECT_FALSE(cache.probe(0x040));
    const std::uint64_t accesses = cache.accesses();
    cache.probe(0x080);
    EXPECT_EQ(cache.accesses(), accesses);
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache(128, 2, 32);
    cache.access(0x000, true);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_FALSE(cache.probe(0x000));
}

/**
 * Property: a larger cache never misses more on the same access
 * stream (true LRU caches of nested capacity are inclusive in hits for
 * a fixed associativity when sets divide evenly -- we check the
 * empirical property on random streams).
 */
class CacheMonotonicity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheMonotonicity, BiggerCacheFewerMisses)
{
    // Set-associative LRU caches of different set counts are not stack
    // algorithms, so strict inclusion does not hold; we require the
    // trend (each doubling helps or is within noise, and the extremes
    // differ decisively).
    Rng rng(GetParam());
    std::vector<std::uint64_t> addrs;
    // Hot region + occasional far accesses, like the workload model.
    for (int i = 0; i < 20000; ++i) {
        addrs.push_back(rng.nextBool(0.8) ? rng.nextBounded(16 * 1024)
                                          : rng.nextBounded(512 * 1024));
    }
    auto misses = [&](int kb) {
        Cache cache(kb * 1024, 4, 32);
        for (std::uint64_t a : addrs)
            cache.access(a, false);
        return cache.misses();
    };
    std::uint64_t prev = ~0ULL / 2;
    for (int kb : {8, 16, 32, 64, 128}) {
        const std::uint64_t m = misses(kb);
        EXPECT_LE(m, prev + prev / 10) << kb << "KB";
        prev = m;
    }
    EXPECT_LT(2 * misses(128), misses(8));
}

INSTANTIATE_TEST_SUITE_P(Streams, CacheMonotonicity,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

TEST(CacheHierarchy, LatencyBands)
{
    const CacheHierarchy h(DesignSpace::baseline());
    EXPECT_GE(h.dl1Latency(), 2);
    EXPECT_LE(h.dl1Latency(), 4);
    EXPECT_GE(h.l2Latency(), 6);
    EXPECT_LE(h.l2Latency(), 14);
    EXPECT_EQ(h.memLatency(), 200);
}

TEST(CacheHierarchy, LatencyOrdering)
{
    CacheHierarchy h(DesignSpace::baseline());
    HierarchyAccessEvents ev;
    const int miss_all = h.dataAccess(0x5000, false, ev);
    const int hit_l1 = h.dataAccess(0x5000, false, ev);
    EXPECT_GT(miss_all, h.dl1Latency() + h.l2Latency());
    EXPECT_EQ(hit_l1, h.dl1Latency());
}

TEST(CacheHierarchy, EventsCountLevels)
{
    CacheHierarchy h(DesignSpace::baseline());
    HierarchyAccessEvents ev;
    h.dataAccess(0x9000, false, ev); // cold: L1 + L2 + mem
    EXPECT_EQ(ev.dl1, 1);
    EXPECT_EQ(ev.l2, 1);
    EXPECT_EQ(ev.mem, 1);
    h.dataAccess(0x9000, false, ev); // L1 hit
    EXPECT_EQ(ev.dl1, 2);
    EXPECT_EQ(ev.l2, 1);
}

TEST(CacheHierarchy, InstFetchFillsL2)
{
    CacheHierarchy h(DesignSpace::baseline());
    HierarchyAccessEvents ev;
    const int cold = h.instAccess(0x400000, ev);
    EXPECT_GT(cold, 1);
    EXPECT_EQ(h.instAccess(0x400000, ev), 1); // warm hit
}

TEST(CacheDeathTest, RejectsNonPowerOfTwoSets)
{
    EXPECT_DEATH(Cache(96, 1, 32), "2\\^n");
}

} // namespace
} // namespace acdse
