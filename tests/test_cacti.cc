/**
 * @file
 * Property tests for the Cacti-style array/cache estimator: the design
 * space only needs the *shape* of these models (monotonic growth with
 * size and ports, sensible latency bands), which is what we pin down.
 */

#include <gtest/gtest.h>

#include "sim/cacti.hh"

namespace acdse
{
namespace
{

TEST(Cacti, EnergyGrowsWithRows)
{
    const ArrayEstimate small = estimateArray(32, 64, 2, 1);
    const ArrayEstimate large = estimateArray(160, 64, 2, 1);
    EXPECT_LT(small.readEnergyNj, large.readEnergyNj);
    EXPECT_LT(small.leakageNjPerCycle, large.leakageNjPerCycle);
}

TEST(Cacti, EnergyGrowsWithPorts)
{
    const ArrayEstimate few = estimateArray(96, 64, 2, 1);
    const ArrayEstimate many = estimateArray(96, 64, 16, 8);
    EXPECT_LT(few.readEnergyNj, many.readEnergyNj);
    EXPECT_LT(few.leakageNjPerCycle, many.leakageNjPerCycle);
}

TEST(Cacti, WritesCostAtLeastReads)
{
    const ArrayEstimate e = estimateArray(64, 32, 4, 2);
    EXPECT_GE(e.writeEnergyNj, e.readEnergyNj);
}

TEST(Cacti, CamSearchScalesWithEntries)
{
    const ArrayEstimate small = estimateCam(8, 16, 4);
    const ArrayEstimate large = estimateCam(80, 16, 4);
    EXPECT_LT(small.readEnergyNj, large.readEnergyNj);
}

/** L1 latencies must span the paper-era 2..4 cycle band. */
class L1Latency : public ::testing::TestWithParam<int>
{
};

TEST_P(L1Latency, InBand)
{
    const int kb = GetParam();
    const ArrayEstimate e = estimateCache(kb * 1024, 4, 32, 1);
    EXPECT_GE(e.latencyCycles, 2) << kb << "KB";
    EXPECT_LE(e.latencyCycles, 4) << kb << "KB";
}

INSTANTIATE_TEST_SUITE_P(Sizes, L1Latency,
                         ::testing::Values(8, 16, 32, 64, 128));

/** L2 latencies must span 6..14 cycles and grow with capacity. */
TEST(Cacti, L2LatencyGrowsWithSize)
{
    int prev = 0;
    for (int kb : {256, 512, 1024, 2048, 4096}) {
        const ArrayEstimate e = estimateCache(kb * 1024, 8, 64, 2);
        EXPECT_GE(e.latencyCycles, 6) << kb;
        EXPECT_LE(e.latencyCycles, 14) << kb;
        EXPECT_GE(e.latencyCycles, prev) << kb;
        prev = e.latencyCycles;
    }
}

TEST(Cacti, CacheEnergyGrowsWithSize)
{
    double prev = 0.0;
    for (int kb : {8, 16, 32, 64, 128}) {
        const ArrayEstimate e = estimateCache(kb * 1024, 4, 32, 1);
        EXPECT_GT(e.readEnergyNj, prev) << kb;
        prev = e.readEnergyNj;
    }
}

TEST(Cacti, LeakageProportionalToCapacity)
{
    const ArrayEstimate a = estimateCache(256 * 1024, 8, 64, 2);
    const ArrayEstimate b = estimateCache(1024 * 1024, 8, 64, 2);
    EXPECT_NEAR(b.leakageNjPerCycle / a.leakageNjPerCycle, 4.0, 0.01);
}

TEST(Cacti, EnergiesAreNanojouleScale)
{
    // Keep the absolute calibration in a physically-plausible band so
    // full-trace energies land in the uJ..mJ range the paper reports.
    const ArrayEstimate rf = estimateArray(96, 64, 8, 4);
    EXPECT_GT(rf.readEnergyNj, 0.001);
    EXPECT_LT(rf.readEnergyNj, 2.0);
    const ArrayEstimate l2 = estimateCache(2048 * 1024, 8, 64, 2);
    EXPECT_GT(l2.readEnergyNj, 0.01);
    EXPECT_LT(l2.readEnergyNj, 10.0);
}

TEST(CactiDeathTest, RejectsEmptyArray)
{
    EXPECT_DEATH(estimateArray(0, 64, 1, 1), "non-empty");
}

} // namespace
} // namespace acdse
