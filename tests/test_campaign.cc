/**
 * @file
 * Unit tests for the simulation campaign and its disk cache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/campaign.hh"

namespace acdse
{
namespace
{

CampaignOptions
tinyOptions(const std::string &tag)
{
    CampaignOptions options;
    options.numConfigs = 8;
    options.traceLength = 1500;
    options.warmupInstructions = 300;
    options.quiet = true;
    options.cacheDir =
        (std::filesystem::temp_directory_path() / tag).string();
    std::filesystem::create_directories(options.cacheDir);
    return options;
}

TEST(Campaign, ComputesAllCells)
{
    Campaign campaign({"crc32", "sha"}, tinyOptions("acdse_t1"));
    campaign.ensureComputed();
    for (std::size_t p = 0; p < 2; ++p) {
        for (std::size_t c = 0; c < campaign.configs().size(); ++c) {
            const Metrics &m = campaign.result(p, c);
            EXPECT_GT(m.cycles, 0.0);
            EXPECT_GT(m.energyNj, 0.0);
            EXPECT_DOUBLE_EQ(m.ed, m.cycles * m.energyNj);
        }
    }
}

TEST(Campaign, CacheRoundTripsExactly)
{
    const CampaignOptions options = tinyOptions("acdse_t2");
    std::vector<std::vector<double>> first;
    {
        Campaign campaign({"adpcm"}, options);
        campaign.ensureComputed();
        first.push_back(campaign.metricRow(0, Metric::Cycles));
        first.push_back(campaign.metricRow(0, Metric::Energy));
    }
    {
        // Second campaign must load from disk (results identical to
        // the last bit thanks to %.17g serialisation).
        Campaign campaign({"adpcm"}, options);
        campaign.ensureComputed();
        EXPECT_EQ(campaign.metricRow(0, Metric::Cycles), first[0]);
        EXPECT_EQ(campaign.metricRow(0, Metric::Energy), first[1]);
    }
}

TEST(Campaign, CacheIsPartiallyReusable)
{
    const CampaignOptions options = tinyOptions("acdse_t3");
    {
        Campaign campaign({"adpcm"}, options);
        campaign.ensureComputed();
    }
    // A campaign over a superset of programs reuses the adpcm rows and
    // only simulates the new one.
    Campaign campaign({"adpcm", "crc32"}, options);
    campaign.ensureComputed();
    EXPECT_GT(campaign.result(1, 0).cycles, 0.0);
}

TEST(Campaign, SubsetSaveDoesNotClobberSharedCache)
{
    // Two campaigns over different programs share one cache file; the
    // second save must keep the first campaign's rows (merge-on-save).
    const CampaignOptions options = tinyOptions("acdse_t10");
    {
        Campaign campaign({"crc32"}, options);
        campaign.ensureComputed();
    }
    {
        Campaign campaign({"sha"}, options);
        campaign.ensureComputed();
    }
    // A third campaign over both must find everything cached (no
    // recomputation: results match fresh campaigns bit-for-bit).
    Campaign both({"crc32", "sha"}, options);
    both.ensureComputed();
    Campaign fresh_crc({"crc32"}, tinyOptions("acdse_t10b"));
    fresh_crc.ensureComputed();
    EXPECT_EQ(both.metricRow(0, Metric::Cycles),
              fresh_crc.metricRow(0, Metric::Cycles));
}

TEST(Campaign, DeterministicResults)
{
    Campaign a({"stringsearch"}, tinyOptions("acdse_t4a"));
    Campaign b({"stringsearch"}, tinyOptions("acdse_t4b"));
    a.ensureComputed();
    b.ensureComputed();
    EXPECT_EQ(a.metricRow(0, Metric::Cycles),
              b.metricRow(0, Metric::Cycles));
}

TEST(Campaign, ProgramIndexLookup)
{
    Campaign campaign({"crc32", "sha"}, tinyOptions("acdse_t5"));
    EXPECT_EQ(campaign.programIndex("crc32"), 0u);
    EXPECT_EQ(campaign.programIndex("sha"), 1u);
}

TEST(Campaign, SubsetSelectors)
{
    Campaign campaign({"crc32"}, tinyOptions("acdse_t6"));
    campaign.ensureComputed();
    const std::vector<std::size_t> idx{3, 1};
    const auto values = campaign.metricAt(0, Metric::Cycles, idx);
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0], campaign.result(0, 3).cycles);
    EXPECT_DOUBLE_EQ(values[1], campaign.result(0, 1).cycles);
    const auto configs = campaign.configsAt(idx);
    EXPECT_EQ(configs[0], campaign.configs()[3]);
}

TEST(Campaign, SameSeedSameConfigs)
{
    Campaign a({"crc32"}, tinyOptions("acdse_t7"));
    Campaign b({"sha"}, tinyOptions("acdse_t7"));
    EXPECT_EQ(a.configs(), b.configs());
}

TEST(CampaignDeathTest, ResultBeforeCompute)
{
    Campaign campaign({"crc32"}, tinyOptions("acdse_t8"));
    EXPECT_DEATH(campaign.result(0, 0), "ensureComputed");
}

TEST(CampaignDeathTest, UnknownProgram)
{
    EXPECT_DEATH(Campaign({"not-a-benchmark"}, tinyOptions("acdse_t9")),
                 "unknown benchmark");
}

} // namespace
} // namespace acdse
