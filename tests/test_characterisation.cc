/**
 * @file
 * Unit tests for the design-space characterisation helpers
 * (Figs. 2-5 machinery).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/characterisation.hh"

namespace acdse
{
namespace
{

Campaign &
sharedCampaign()
{
    static Campaign campaign = [] {
        CampaignOptions options;
        options.numConfigs = 40;
        options.traceLength = 2500;
        options.warmupInstructions = 500;
        options.quiet = true;
        options.cacheDir = (std::filesystem::temp_directory_path() /
                            "acdse_char_tests")
                               .string();
        std::filesystem::create_directories(options.cacheDir);
        Campaign c({"crc32", "sha", "fft", "qsort"}, options);
        c.ensureComputed();
        return c;
    }();
    return campaign;
}

TEST(Characterisation, FrequenciesSumToOnePerParameter)
{
    const auto freqs =
        extremeValueFrequencies(sharedCampaign(), Metric::Cycles, 0.05);
    EXPECT_EQ(freqs.size(), kNumParams);
    for (const auto &f : freqs) {
        double best = 0.0, worst = 0.0;
        for (std::size_t i = 0; i < f.values.size(); ++i) {
            best += f.bestFreq[i];
            worst += f.worstFreq[i];
            EXPECT_GE(f.bestFreq[i], 0.0);
            EXPECT_GE(f.worstFreq[i], 0.0);
        }
        EXPECT_NEAR(best, 1.0, 1e-9) << paramName(f.param);
        EXPECT_NEAR(worst, 1.0, 1e-9) << paramName(f.param);
    }
}

TEST(Characterisation, EnergyExtremesFavourNarrowMachines)
{
    // Low-energy configurations should be dominated by narrow widths
    // and high-energy ones by wide widths (paper Fig. 3a/3g).
    const auto freqs =
        extremeValueFrequencies(sharedCampaign(), Metric::Energy, 0.1);
    const auto &width = freqs[static_cast<std::size_t>(Param::Width)];
    // values are {2,4,6,8}: compare narrow (2) frequency best vs worst.
    EXPECT_GT(width.bestFreq[0], width.worstFreq[0]);
    EXPECT_LT(width.bestFreq[3], width.worstFreq[3]);
}

TEST(Characterisation, SummariesAreOrdered)
{
    auto summaries =
        perProgramSummaries(sharedCampaign(), Metric::Cycles);
    ASSERT_EQ(summaries.size(), 4u);
    for (const auto &s : summaries) {
        EXPECT_LE(s.range.min, s.range.q25);
        EXPECT_LE(s.range.q25, s.range.median);
        EXPECT_LE(s.range.median, s.range.q75);
        EXPECT_LE(s.range.q75, s.range.max);
        EXPECT_GT(s.range.min, 0.0);
        // Baseline lands within (or at least near) the space.
        EXPECT_GT(s.baseline, 0.25 * s.range.min);
        EXPECT_LT(s.baseline, 4.0 * s.range.max);
    }
}

TEST(Characterisation, SummariesScaleToPhase)
{
    const auto small =
        perProgramSummaries(sharedCampaign(), Metric::Cycles, 1e6);
    const auto large =
        perProgramSummaries(sharedCampaign(), Metric::Cycles, 10e6);
    EXPECT_NEAR(large[0].range.median / small[0].range.median, 10.0,
                1e-6);
}

TEST(Characterisation, DistanceMatrixIsMetricLike)
{
    auto dist = programDistanceMatrix(sharedCampaign(), Metric::Energy);
    ASSERT_EQ(dist.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(dist[i][i], 0.0);
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_DOUBLE_EQ(dist[i][j], dist[j][i]);
            EXPECT_GE(dist[i][j], 0.0);
        }
    }
    // Distinct programs should be separated.
    EXPECT_GT(dist[0][1], 0.0);
}

TEST(Characterisation, DendrogramCoversAllPrograms)
{
    const Dendrogram tree =
        programSimilarityDendrogram(sharedCampaign(), Metric::Cycles);
    EXPECT_EQ(tree.leaves, 4u);
    EXPECT_EQ(tree.merges.size(), 3u);
}

TEST(Characterisation, ProgramSubsetRestrictsAnalysis)
{
    // Restricting to two programs must pool only their extremes and
    // produce a 2x2 distance matrix.
    const std::vector<std::size_t> subset{0, 2};
    const auto freqs = extremeValueFrequencies(
        sharedCampaign(), Metric::Cycles, 0.05, subset);
    double total = 0.0;
    for (double x : freqs.front().bestFreq)
        total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);

    const auto dist =
        programDistanceMatrix(sharedCampaign(), Metric::Cycles, subset);
    EXPECT_EQ(dist.size(), 2u);
    const Dendrogram tree = programSimilarityDendrogram(
        sharedCampaign(), Metric::Cycles, subset);
    EXPECT_EQ(tree.leaves, 2u);
}

TEST(Characterisation, BaselineMetricsPositive)
{
    const auto baselines = baselineMetrics(sharedCampaign());
    ASSERT_EQ(baselines.size(), 4u);
    for (const auto &m : baselines) {
        EXPECT_GT(m.cycles, 0.0);
        EXPECT_GT(m.energyNj, 0.0);
    }
}

} // namespace
} // namespace acdse
