/**
 * @file
 * End-to-end tests for the production CLI binaries, driven as real
 * subprocesses: train_then_serve trains and persists an artifact,
 * acdse-serve serves it, and both emit acdse-stats-v1 stats through
 * --stats-out. Also covers the bad-flag and corrupt-artifact error
 * paths (exit codes 2 and 1 respectively).
 *
 * Binary paths arrive as compile definitions (ACDSE_TOOL_*) from
 * tests/CMakeLists.txt, so the tests always run the binaries of the
 * same build tree. Runs are pinned to ACDSE_THREADS=1 and a tiny
 * campaign so one end-to-end pass stays in CI budget; single-threaded
 * runs also make the "self times sum to <= wall time" stage-tree
 * invariant exact.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "json_reader.hh"
#include "obs/metrics.hh"

namespace acdse
{
namespace
{

namespace fs = std::filesystem;

/** Number of training programs the e2e run uses (see trainCmd). */
constexpr std::size_t kTrainPrograms = 2;

/** Metrics train_then_serve trains (one ensemble per kAllMetrics). */
constexpr std::size_t kMetricsTrained = 4;

struct RunResult
{
    int exitCode = -1;
    double wallSeconds = 0.0;
    std::string output; //!< merged stdout+stderr
};

/** Run @p command under `sh -c`, capturing exit code and output. */
RunResult
run(const fs::path &dir, const std::string &command)
{
    const fs::path log = dir / "run.log";
    const std::string wrapped =
        "cd '" + dir.string() + "' && { " + command + " ; } > '" +
        log.string() + "' 2>&1";
    const auto start = std::chrono::steady_clock::now();
    const int status = std::system(wrapped.c_str());
    RunResult result;
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    result.exitCode =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    std::ifstream in(log);
    std::ostringstream text;
    text << in.rdbuf();
    result.output = text.str();
    return result;
}

fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

testjson::Value
parseFile(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return testjson::parse(text.str());
}

/**
 * The small train_then_serve invocation shared by the tests: two
 * training programs plus a target, a short synthetic trace, one
 * thread. ~seconds, not minutes.
 */
std::string
trainCmd(const std::string &extra)
{
    return std::string("ACDSE_THREADS=1 ACDSE_CONFIGS=56 "
                       "ACDSE_TRACE_LEN=2000 ACDSE_WARMUP=400 "
                       "ACDSE_CACHE_DIR=. ") +
           ACDSE_TOOL_TRAIN_THEN_SERVE +
           " --train-programs gzip,crafty --target vpr"
           " --train-sims 24 --responses 16 " +
           extra;
}

TEST(CliTrainThenServe, EndToEndWithStats)
{
    const fs::path dir = freshDir("acdse_cli_tts");
    const RunResult result = run(
        dir, trainCmd("--out model.acdse --stats-out stats.json"));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    EXPECT_TRUE(fs::exists(dir / "model.acdse"));
    ASSERT_TRUE(fs::exists(dir / "stats.json")) << result.output;

    const testjson::Value doc = parseFile(dir / "stats.json");
    EXPECT_EQ(doc.at("schema").asString(), "acdse-stats-v1");
    const testjson::Value &stages = doc.at("stages");

    // One train/program/<i> stage per training program, each spanned
    // once per trained metric.
    std::size_t trainProgramStages = 0;
    for (const auto &[path, stage] : stages.object) {
        if (path.starts_with("train/program/")) {
            ++trainProgramStages;
            if (obs::kEnabled) {
                EXPECT_EQ(stage.at("count").asNumber(),
                          static_cast<double>(kMetricsTrained))
                    << path;
            }
        }
    }
    EXPECT_EQ(trainProgramStages, kTrainPrograms);

    if (!obs::kEnabled)
        return; // OFF builds emit valid, all-zero stats; done.

    // The campaign, training, fit and serve stages all saw real time.
    EXPECT_GT(stages.at("campaign/fill").at("total_ms").asNumber(),
              0.0);
    EXPECT_GT(stages.at("train/offline").at("total_ms").asNumber(),
              0.0);
    EXPECT_EQ(stages.at("train/offline").at("count").asNumber(),
              static_cast<double>(kMetricsTrained));
    EXPECT_GT(stages.at("fit/responses").at("total_ms").asNumber(),
              0.0);
    EXPECT_GE(stages.at("serve/batch").at("count").asNumber(), 1.0);

    // Self times are exclusive, so on a single-threaded run their sum
    // across all stages cannot exceed the process wall time.
    double selfSumMs = 0.0;
    for (const auto &[path, stage] : stages.object) {
        const double self = stage.at("self_ms").asNumber();
        EXPECT_GE(self, 0.0) << path;
        EXPECT_LE(self, stage.at("total_ms").asNumber() + 1e-9) << path;
        selfSumMs += self;
    }
    EXPECT_LE(selfSumMs, result.wallSeconds * 1000.0);
}

TEST(CliTrainThenServe, RejectsUnknownFlag)
{
    const fs::path dir = freshDir("acdse_cli_tts_badflag");
    const RunResult result =
        run(dir, std::string(ACDSE_TOOL_TRAIN_THEN_SERVE) +
                     " --no-such-flag");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliTrainThenServe, RejectsBadValues)
{
    const fs::path dir = freshDir("acdse_cli_tts_badval");
    // fatal() paths exit 1: zero T/R and a flag missing its value.
    EXPECT_EQ(run(dir, trainCmd("--train-sims 0")).exitCode, 1);
    EXPECT_EQ(run(dir, trainCmd("--out")).exitCode, 1);
}

TEST(CliServe, ServesQueriesAndWritesStats)
{
    const fs::path dir = freshDir("acdse_cli_serve");
    const RunResult trained =
        run(dir, trainCmd("--out model.acdse"));
    ASSERT_EQ(trained.exitCode, 0) << trained.output;

    // A header row, a comment and two valid Table-1 query rows.
    {
        std::ofstream queries(dir / "queries.csv");
        queries << "width,rob,iq,lsq,rf,rfrd,rfwr,bpred,btb,br,il1,"
                   "dl1,l2\n";
        queries << "# comment line\n";
        queries << "4,96,32,24,80,8,4,16,4,16,32,32,2048\n";
        queries << "8,160,64,48,128,16,8,32,2,24,64,64,4096\n";
    }
    const RunResult served = run(
        dir, std::string("ACDSE_THREADS=1 ") + ACDSE_TOOL_SERVE +
                 " --model model.acdse --input queries.csv --stats"
                 " --stats-out serve_stats.json > out.csv");
    ASSERT_EQ(served.exitCode, 0) << served.output;

    // Output CSV: one header plus one row per query.
    std::ifstream out(dir / "out.csv");
    std::string line;
    std::size_t rows = 0;
    while (std::getline(out, line)) {
        if (!line.empty())
            ++rows;
    }
    EXPECT_EQ(rows, 3u);

    const testjson::Value doc = parseFile(dir / "serve_stats.json");
    EXPECT_EQ(doc.at("schema").asString(), "acdse-stats-v1");
    if (obs::kEnabled) {
        EXPECT_GE(
            doc.at("stages").at("serve/batch").at("count").asNumber(),
            1.0);
        EXPECT_EQ(doc.at("counters").at("serve/points").asNumber(),
                  2.0);
        EXPECT_EQ(
            doc.at("histograms").at("serve/batch-points").at("count")
                .asNumber(),
            1.0);
    }
}

TEST(CliServe, RejectsUnknownFlagAndMissingModel)
{
    const fs::path dir = freshDir("acdse_cli_serve_badflag");
    EXPECT_EQ(run(dir, std::string(ACDSE_TOOL_SERVE) + " --bogus")
                  .exitCode,
              2);
    // --model is required.
    EXPECT_EQ(run(dir, std::string(ACDSE_TOOL_SERVE)).exitCode, 2);
    // --stats-every without --stats-out is a user error.
    EXPECT_EQ(run(dir, std::string(ACDSE_TOOL_SERVE) +
                           " --model x.acdse --stats-every 2")
                  .exitCode,
              1);
}

TEST(CliExplore, ExploresArtifactAndWritesCsv)
{
    const fs::path dir = freshDir("acdse_cli_explore");
    const RunResult trained = run(dir, trainCmd("--out model.acdse"));
    ASSERT_EQ(trained.exitCode, 0) << trained.output;

    // A small sampled exploration; results must not depend on the
    // thread count, so run it at 1 and 2 threads and compare bytes.
    const std::string explore_cmd =
        std::string(ACDSE_TOOL_EXPLORE) +
        " --model model.acdse --samples 3000 --topk 4 --seed 9";
    const RunResult explored =
        run(dir, explore_cmd + " --threads 1 --stats-out stats.json");
    ASSERT_EQ(explored.exitCode, 0) << explored.output;
    const RunResult explored2 =
        run(dir, explore_cmd + " --threads 2 --frontier-out f2.csv"
                               " --topk-out t2.csv");
    ASSERT_EQ(explored2.exitCode, 0) << explored2.output;

    auto slurp = [&](const char *name) {
        std::ifstream in(dir / name);
        EXPECT_TRUE(in.good()) << name;
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    };
    const std::string frontier = slurp("frontier.csv");
    EXPECT_TRUE(frontier.starts_with(
        "width,rob,iq,lsq,rf,rfrd,rfwr,bpred,btb,br,il1,dl1,l2,"
        "cycles,energy"))
        << frontier.substr(0, 120);
    EXPECT_EQ(frontier, slurp("f2.csv"));
    const std::string topk = slurp("topk.csv");
    EXPECT_TRUE(topk.starts_with("metric,rank,width"))
        << topk.substr(0, 120);
    EXPECT_EQ(topk, slurp("t2.csv"));
    // Default --metrics cycles,energy at --topk 4: header + 8 rows.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(topk.begin(), topk.end(), '\n')),
              9u);

    const testjson::Value doc = parseFile(dir / "stats.json");
    EXPECT_EQ(doc.at("schema").asString(), "acdse-stats-v1");
    if (obs::kEnabled) {
        EXPECT_EQ(doc.at("counters")
                      .at("explore/points-predicted")
                      .asNumber(),
                  3000.0);
        EXPECT_GE(doc.at("stages").at("explore/tile").at("count")
                      .asNumber(),
                  1.0);
        EXPECT_GE(doc.at("stages").at("explore/reduce").at("count")
                      .asNumber(),
                  1.0);
    }
}

TEST(CliExplore, RefinedEnumerationOfReducedGrid)
{
    const fs::path dir = freshDir("acdse_cli_explore_enum");
    const RunResult trained = run(dir, trainCmd("--out model.acdse"));
    ASSERT_EQ(trained.exitCode, 0) << trained.output;

    // Stride 4 + pins keeps the grid tiny; --refine rewrites top-k.
    const RunResult explored = run(
        dir, std::string(ACDSE_TOOL_EXPLORE) +
                 " --model model.acdse --mode enumerate --stride 4"
                 " --fix width=4 --fix l2=1024 --metrics cycles"
                 " --pareto cycles,cycles --topk 3 --refine"
                 " --threads 1");
    ASSERT_EQ(explored.exitCode, 0) << explored.output;
    EXPECT_TRUE(fs::exists(dir / "frontier.csv"));
    EXPECT_TRUE(fs::exists(dir / "topk.csv"));
    EXPECT_NE(explored.output.find("(refined)"), std::string::npos)
        << explored.output;
}

TEST(CliExplore, RejectsBadFlagsAndValues)
{
    const fs::path dir = freshDir("acdse_cli_explore_badflag");
    // usage() paths exit 2: unknown flag, missing --model.
    EXPECT_EQ(run(dir, std::string(ACDSE_TOOL_EXPLORE) + " --bogus")
                  .exitCode,
              2);
    EXPECT_EQ(run(dir, std::string(ACDSE_TOOL_EXPLORE)).exitCode, 2);
    // fatal() paths exit 1: bad mode, bad metric, illegal --fix value,
    // Pareto objective not among the scored metrics.
    const std::string base =
        std::string(ACDSE_TOOL_EXPLORE) + " --model x.acdse";
    EXPECT_EQ(run(dir, base + " --mode sideways").exitCode, 1);
    EXPECT_EQ(run(dir, base + " --metrics watts").exitCode, 1);
    EXPECT_EQ(run(dir, base + " --fix width=5").exitCode, 1);
    EXPECT_EQ(run(dir, base + " --metrics ed,edd").exitCode, 1);
}

TEST(CliExplore, RejectsCorruptArtifact)
{
    const fs::path dir = freshDir("acdse_cli_explore_corrupt");
    {
        std::ofstream bad(dir / "corrupt.acdse");
        bad << "this is not an artifact";
    }
    const RunResult result =
        run(dir, std::string(ACDSE_TOOL_EXPLORE) +
                     " --model corrupt.acdse --samples 10");
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("fatal"), std::string::npos);
}

TEST(CliServe, RejectsCorruptArtifact)
{
    const fs::path dir = freshDir("acdse_cli_serve_corrupt");
    {
        std::ofstream bad(dir / "corrupt.acdse");
        bad << "this is not an artifact";
    }
    const RunResult result =
        run(dir, std::string(ACDSE_TOOL_SERVE) +
                     " --model corrupt.acdse --input /dev/null");
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("fatal"), std::string::npos);
}

/**
 * The pinned tiny acdse-jobs invocation (9 jobs: 3 shards, 4 training
 * jobs, 2 fits). Deeper fault-injection coverage -- kill matrices,
 * journal corruption sweeps, bit-identity against a reference run --
 * lives in test_jobs_crash.cc; this suite covers the CLI surface:
 * exit codes, artifacts and the status schema.
 */
std::string
jobsCmd(const std::string &subcommand)
{
    return std::string("ACDSE_THREADS=1 ACDSE_CONFIGS=24 "
                       "ACDSE_TRACE_LEN=1200 ACDSE_WARMUP=200 ") +
           ACDSE_TOOL_JOBS + " " + subcommand;
}

constexpr const char *kJobsRunArgs =
    "run --dir . --workers 2 --programs gzip,mcf --target vpr"
    " --train 12 --responses 8 --shard-cells 30";

TEST(CliJobServer, RunProducesArtifactsAndStats)
{
    const fs::path dir = freshDir("acdse_cli_jobs_run");
    const RunResult result =
        run(dir, jobsCmd(std::string(kJobsRunArgs) +
                         " --stats-out stats.json"));
    ASSERT_EQ(result.exitCode, 0) << result.output;

    std::size_t plans = 0, journals = 0, shards = 0, predictors = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        plans += name.ends_with(".plan.csv");
        journals += name.ends_with(".journal");
        shards += name.find(".shard") != std::string::npos;
        predictors += name.find(".predictor_m") != std::string::npos;
    }
    EXPECT_EQ(plans, 1u);
    EXPECT_EQ(journals, 1u);
    EXPECT_EQ(shards, 3u);
    EXPECT_EQ(predictors, 2u);

    // The parent and each worker wrote acdse-stats-v1 files; the
    // workers' ones carry the jobs/dispatch counter.
    ASSERT_TRUE(fs::exists(dir / "stats.json"));
    const testjson::Value parent = parseFile(dir / "stats.json");
    EXPECT_EQ(parent.at("schema").asString(), "acdse-stats-v1");
    double dispatched = 0;
    for (std::size_t w = 0; w < 2; ++w) {
        const fs::path workerStats =
            dir / ("stats.json.worker" + std::to_string(w));
        ASSERT_TRUE(fs::exists(workerStats));
        const testjson::Value doc = parseFile(workerStats);
        EXPECT_EQ(doc.at("schema").asString(), "acdse-stats-v1");
        // A worker that lost every claim race registers no
        // jobs/dispatch counter at all; only the sum is deterministic.
        if (obs::kEnabled && doc.at("counters").has("jobs/dispatch"))
            dispatched += doc.at("counters").at("jobs/dispatch").asNumber();
    }
    if (obs::kEnabled) {
        EXPECT_EQ(dispatched, 9.0);
    }
}

TEST(CliJobServer, StatusSchemaAndResumeAfterKill)
{
    const fs::path dir = freshDir("acdse_cli_jobs_resume");
    RunResult result = run(
        dir, "ACDSE_JOBS_KILL_AFTER=0:2 " +
                 jobsCmd(std::string(kJobsRunArgs) + " --workers 1"));
    ASSERT_EQ(result.exitCode, 3) << result.output;
    EXPECT_NE(result.output.find("resume"), std::string::npos)
        << "interrupted runs should print the resume hint";

    result = run(dir, jobsCmd("status --dir ."));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    const testjson::Value doc = testjson::parse(result.output);
    EXPECT_EQ(doc.at("schema").asString(), "acdse-jobs-status-v1");
    EXPECT_EQ(doc.at("jobs").at("total").asNumber(), 9.0);
    EXPECT_EQ(doc.at("jobs").at("done").asNumber(), 2.0);
    EXPECT_FALSE(doc.at("drained").boolean);
    EXPECT_FALSE(doc.at("stuck").boolean);
    for (const char *kind :
         {"simulate-shard", "train-program", "fit-responses"}) {
        EXPECT_TRUE(doc.at("kinds").has(kind)) << kind;
    }
    EXPECT_EQ(doc.at("states").array.size(), 9u);

    result = run(dir, jobsCmd("resume --dir . --workers 2"));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    result = run(dir, jobsCmd("status --dir ."));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    EXPECT_TRUE(testjson::parse(result.output).at("drained").boolean);
}

TEST(CliJobServer, RejectsBadFlags)
{
    const fs::path dir = freshDir("acdse_cli_jobs_badflag");
    const std::string tool = ACDSE_TOOL_JOBS;
    EXPECT_EQ(run(dir, tool).exitCode, 2);
    EXPECT_EQ(run(dir, tool + " frobnicate").exitCode, 2);
    EXPECT_EQ(run(dir, tool + " run --bogus").exitCode, 2);
    EXPECT_EQ(run(dir, tool + " run --workers").exitCode, 2);
    // fatal() paths exit 1: unparsable count, zero workers, unknown
    // benchmark program.
    EXPECT_EQ(run(dir, tool + " run --workers nope").exitCode, 1);
    EXPECT_EQ(run(dir, tool + " run --workers 0").exitCode, 1);
    EXPECT_EQ(
        run(dir, jobsCmd("run --dir . --programs not-a-benchmark"))
            .exitCode,
        1);
    // resume/status with no plan in the directory: typed error.
    const RunResult result = run(dir, jobsCmd("status --dir ."));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("no job plan"), std::string::npos);
}

TEST(CliJobServer, RejectsCorruptJournal)
{
    const fs::path dir = freshDir("acdse_cli_jobs_corrupt");
    RunResult result = run(
        dir, "ACDSE_JOBS_KILL_AFTER=0:1 " +
                 jobsCmd(std::string(kJobsRunArgs) + " --workers 1"));
    ASSERT_EQ(result.exitCode, 3) << result.output;

    fs::path journal;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().ends_with(".journal"))
            journal = entry.path();
    }
    ASSERT_FALSE(journal.empty());
    std::string bytes;
    {
        std::ifstream in(journal, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        bytes = text.str();
    }
    bytes[bytes.size() / 2] = static_cast<char>(
        static_cast<unsigned char>(bytes[bytes.size() / 2]) ^ 0x01u);
    {
        std::ofstream out(journal, std::ios::binary | std::ios::trunc);
        out << bytes;
    }

    result = run(dir, jobsCmd("status --dir ."));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("error"), std::string::npos);
    result = run(dir, jobsCmd("resume --dir ."));
    EXPECT_EQ(result.exitCode, 1);
}

} // namespace
} // namespace acdse
