/**
 * @file
 * Unit and property tests for the out-of-order core timing model.
 */

#include <gtest/gtest.h>

#include "arch/design_space.hh"
#include "base/rng.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

Trace
makeTrace(const std::string &name, std::size_t length = 6000)
{
    return TraceGenerator(profileByName(name)).generate(length);
}

/** A fully independent, cache-resident integer trace (IPC stresser). */
Trace
idealTrace(std::size_t length)
{
    std::vector<TraceInstruction> insts(length);
    for (std::size_t i = 0; i < length; ++i) {
        insts[i].pc = 0x400000 + 4 * (i % 64);
        insts[i].cls = InstClass::IntAlu;
    }
    return Trace("ideal", std::move(insts));
}

TEST(OooCore, CommitsEveryInstruction)
{
    const Trace t = makeTrace("gzip");
    EnergyModel energy(DesignSpace::baseline());
    OooCore core(DesignSpace::baseline(), energy);
    const CoreStats stats = core.run(t);
    EXPECT_EQ(stats.instructions, t.size());
    EXPECT_GT(stats.cycles, 0u);
}

TEST(OooCore, IpcNeverExceedsWidth)
{
    for (int width : {2, 4, 8}) {
        MicroarchConfig config = DesignSpace::baseline();
        config.set(Param::Width, width);
        EnergyModel energy(config);
        OooCore core(config, energy);
        const CoreStats stats = core.run(idealTrace(8000));
        EXPECT_LE(stats.ipc(), static_cast<double>(width) + 1e-9);
    }
}

TEST(OooCore, IndependentAluCodeApproachesWidth)
{
    // Ideal trace, 4-wide: the only limits are read ports (none: no
    // sources) and the ALU pool; IPC should be close to the width.
    MicroarchConfig config = DesignSpace::baseline();
    EnergyModel energy(config);
    OooCore core(config, energy);
    const CoreStats stats = core.run(idealTrace(12000));
    EXPECT_GT(stats.ipc(), 3.0);
}

TEST(OooCore, WiderIsFasterOnIlpRichCode)
{
    MicroarchConfig narrow = DesignSpace::baseline();
    narrow.set(Param::Width, 2);
    MicroarchConfig wide = DesignSpace::baseline();
    wide.set(Param::Width, 8);
    const Trace t = idealTrace(12000);
    EnergyModel e1(narrow), e2(wide);
    const CoreStats n = OooCore(narrow, e1).run(t);
    const CoreStats w = OooCore(wide, e2).run(t);
    EXPECT_LT(w.cycles, n.cycles);
}

TEST(OooCore, SerialChainBoundByLatency)
{
    // A strict dependence chain of 1-cycle ALU ops: one per cycle at
    // best, whatever the machine width.
    std::vector<TraceInstruction> insts(4000);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i].pc = 0x400000 + 4 * (i % 64);
        insts[i].cls = InstClass::IntAlu;
        insts[i].srcDist1 = i ? 1 : 0;
    }
    Trace t("chain", std::move(insts));
    MicroarchConfig config = DesignSpace::baseline();
    config.set(Param::Width, 8);
    EnergyModel energy(config);
    const CoreStats stats = OooCore(config, energy).run(t);
    EXPECT_GE(stats.cycles, t.size());
}

TEST(OooCore, DeterministicAcrossRuns)
{
    const Trace t = makeTrace("twolf");
    MicroarchConfig config = DesignSpace::baseline();
    EnergyModel e1(config), e2(config);
    const CoreStats a = OooCore(config, e1).run(t);
    const CoreStats b = OooCore(config, e2).run(t);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_NEAR(e1.dynamicEnergyNj(), e2.dynamicEnergyNj(), 1e-9);
}

TEST(OooCore, BiggerDcacheClearlyReducesMisses)
{
    // vpr's hot region (32KB) thrashes an 8KB L1D but fits in 128KB.
    const Trace t = makeTrace("vpr", 10000);
    auto misses = [&](int kb) {
        MicroarchConfig config = DesignSpace::baseline();
        config.set(Param::Dl1Size, kb);
        EnergyModel energy(config);
        return OooCore(config, energy).run(t).dl1Misses;
    };
    EXPECT_LT(misses(128) * 3 / 2, misses(8));
}

TEST(OooCore, HardBranchesCostCycles)
{
    // Same structure, but one trace's branches are coin flips.
    auto build = [](bool random) {
        std::vector<TraceInstruction> insts;
        Rng rng(55);
        for (int i = 0; i < 3000; ++i) {
            TraceInstruction inst{};
            inst.pc = 0x400000 + 4 * (i % 512);
            if (i % 8 == 7) {
                inst.cls = InstClass::Branch;
                inst.conditional = true;
                inst.taken = random ? rng.nextBool(0.5) : true;
                inst.target = 0x400000 + 4 * ((i + 1) % 512);
            } else {
                inst.cls = InstClass::IntAlu;
            }
            insts.push_back(inst);
        }
        return Trace(random ? "rand" : "easy", std::move(insts));
    };
    MicroarchConfig config = DesignSpace::baseline();
    EnergyModel e1(config), e2(config);
    const CoreStats easy = OooCore(config, e1).run(build(false));
    const CoreStats hard = OooCore(config, e2).run(build(true));
    EXPECT_GT(hard.mispredicts, easy.mispredicts + 100);
    EXPECT_GT(hard.cycles, easy.cycles);
}

TEST(OooCore, MemoryBoundCodeIsSlow)
{
    const Trace fast = makeTrace("crc32", 8000);
    const Trace slow = makeTrace("mcf", 8000);
    MicroarchConfig config = DesignSpace::baseline();
    EnergyModel e1(config), e2(config);
    const CoreStats f = OooCore(config, e1).run(fast);
    const CoreStats s = OooCore(config, e2).run(slow);
    EXPECT_GT(f.ipc(), 2.0 * s.ipc());
}

TEST(OooCore, IntervalRunsPartition)
{
    const Trace t = makeTrace("gap", 6000);
    MicroarchConfig config = DesignSpace::baseline();
    EnergyModel energy(config);
    OooCore core(config, energy);
    const CoreStats first = core.run(t, 0, 3000);
    const CoreStats second = core.run(t, 3000, 6000);
    EXPECT_EQ(first.instructions + second.instructions, 6000u);
}

TEST(OooCore, WarmupReducesTimedMisses)
{
    const Trace t = makeTrace("galgel", 12000);
    SimulationOptions cold;
    SimulationOptions warm;
    warm.warmupInstructions = 6000;
    const SimulationResult c = simulate(DesignSpace::baseline(), t, cold);
    const SimulationResult w = simulate(DesignSpace::baseline(), t, warm);
    // The warmed run times fewer instructions but its per-instruction
    // miss rate must be no higher.
    const double cold_rate =
        static_cast<double>(c.stats.dl1Misses) / c.stats.instructions;
    const double warm_rate =
        static_cast<double>(w.stats.dl1Misses) / w.stats.instructions;
    EXPECT_LE(warm_rate, cold_rate * 1.05);
}

TEST(OooCore, TinyRegisterFileStallsDispatch)
{
    MicroarchConfig big = DesignSpace::baseline();
    big.set(Param::RfSize, 160);
    MicroarchConfig tiny = DesignSpace::baseline();
    tiny.set(Param::RfSize, 40);
    const Trace t = makeTrace("swim", 8000);
    EnergyModel e1(big), e2(tiny);
    const CoreStats b = OooCore(big, e1).run(t);
    const CoreStats s = OooCore(tiny, e2).run(t);
    EXPECT_GT(s.dispatchStallRegs, b.dispatchStallRegs);
    EXPECT_GT(s.cycles, b.cycles);
}

/** Simulation must complete for any valid configuration. */
class AnyConfigRuns : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AnyConfigRuns, CompletesAndIsSane)
{
    Rng rng(GetParam());
    const MicroarchConfig config = DesignSpace::sampleValid(rng);
    const Trace t = makeTrace("eon", 4000);
    const SimulationResult r = simulate(config, t);
    EXPECT_EQ(r.stats.instructions, 4000u);
    EXPECT_GT(r.metrics.cycles, 0.0);
    EXPECT_GT(r.metrics.energyNj, 0.0);
    EXPECT_GT(r.metrics.ed, 0.0);
    EXPECT_LE(r.stats.ipc(), static_cast<double>(config.width()));
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, AnyConfigRuns,
                         ::testing::Range<std::uint64_t>(100, 112));

} // namespace
} // namespace acdse
