/**
 * @file
 * Unit tests for CSV reading/writing (the campaign cache format).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "base/csv.hh"

namespace acdse
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Csv, SplitsLine)
{
    const auto cells = splitCsvLine("a,b,,d");
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0], "a");
    EXPECT_EQ(cells[2], "");
    EXPECT_EQ(cells[3], "d");
}

TEST(Csv, TrailingComma)
{
    const auto cells = splitCsvLine("a,b,");
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[2], "");
}

TEST(Csv, RoundTrip)
{
    const std::string path = tempPath("acdse_csv_roundtrip.csv");
    CsvFile out;
    out.header = {"program", "value"};
    out.rows = {{"gzip", "1.5"}, {"mcf", "2.25"}};
    writeCsv(path, out);

    CsvFile in;
    ASSERT_TRUE(readCsv(path, in));
    EXPECT_EQ(in.header, out.header);
    ASSERT_EQ(in.rows.size(), 2u);
    EXPECT_EQ(in.rows[1][0], "mcf");
    EXPECT_EQ(in.rows[1][1], "2.25");
    std::remove(path.c_str());
}

TEST(Csv, MissingFileFails)
{
    CsvFile in;
    EXPECT_FALSE(readCsv("/nonexistent/path/nothing.csv", in));
}

TEST(Csv, RejectsRaggedRows)
{
    const std::string path = tempPath("acdse_csv_ragged.csv");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("a,b\n1,2\n3\n", f);
        std::fclose(f);
    }
    CsvFile in;
    EXPECT_FALSE(readCsv(path, in));
    std::remove(path.c_str());
}

TEST(Csv, SkipsBlankLines)
{
    const std::string path = tempPath("acdse_csv_blank.csv");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("a,b\n1,2\n\n3,4\n", f);
        std::fclose(f);
    }
    CsvFile in;
    ASSERT_TRUE(readCsv(path, in));
    EXPECT_EQ(in.rows.size(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace acdse
