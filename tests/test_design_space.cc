/**
 * @file
 * Unit tests for design-space enumeration, filtering and sampling
 * (paper Sections 3.1 and 3.3).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "arch/design_space.hh"
#include "base/rng.hh"

namespace acdse
{
namespace
{

TEST(DesignSpace, RawCountMatchesPaper)
{
    // 4*17*10*10*16*8*8*6*3*4*5*5*5 = 62,668,800,000 -- the paper's
    // "63 billion different configurations".
    EXPECT_EQ(DesignSpace::totalRawPoints(), 62668800000ULL);
}

TEST(DesignSpace, ValidCountIsExact)
{
    // Independent recomputation: sum over ROB of (#iq <= rob)^2 for the
    // IQ/LSQ constraints, times the 52 legal (read, write) port pairs
    // (rd=2:2, 4:4, 6:6, then 8 for rd >= 8), times the free-parameter
    // product.
    std::uint64_t triples = 0;
    for (int rob = 32; rob <= 160; rob += 8) {
        const std::uint64_t iq_ok =
            static_cast<std::uint64_t>(std::min(rob, 80) / 8);
        triples += iq_ok * iq_ok;
    }
    const std::uint64_t expected =
        triples * 52ULL * (4ULL * 16 * 6 * 3 * 4 * 5 * 5 * 5);
    EXPECT_EQ(DesignSpace::totalValidPoints(), expected);
    EXPECT_LT(DesignSpace::totalValidPoints(),
              DesignSpace::totalRawPoints());
    // Same order of magnitude as the paper's 18 billion.
    EXPECT_GT(DesignSpace::totalValidPoints(), 10'000'000'000ULL);
    EXPECT_LT(DesignSpace::totalValidPoints(), 63'000'000'000ULL);
}

TEST(DesignSpace, BaselineIsValid)
{
    EXPECT_TRUE(DesignSpace::isValid(DesignSpace::baseline()));
}

TEST(DesignSpace, BaselineEncodesAsPaperVector)
{
    // x_baseline = (4, 96, 32, 48, 96, 8, 4, 16, 4, 16, 32, 32, 2MB)
    // (we keep L2 in KB: 2048).
    const std::vector<double> expected{4,  96, 32, 48, 96, 8,  4,
                                       16, 4,  16, 32, 32, 2048};
    EXPECT_EQ(DesignSpace::baseline().asVector(), expected);
}

TEST(DesignSpace, RejectsIqLargerThanRob)
{
    MicroarchConfig config;
    config.set(Param::RobSize, 32);
    config.set(Param::IqSize, 40);
    EXPECT_FALSE(DesignSpace::isValid(config));
}

TEST(DesignSpace, RejectsLsqLargerThanRob)
{
    MicroarchConfig config;
    config.set(Param::RobSize, 32);
    config.set(Param::LsqSize, 48);
    config.set(Param::IqSize, 32);
    EXPECT_FALSE(DesignSpace::isValid(config));
}

TEST(DesignSpace, RejectsMoreWritePortsThanReadPorts)
{
    MicroarchConfig config;
    config.set(Param::RfReadPorts, 2);
    config.set(Param::RfWritePorts, 5);
    EXPECT_FALSE(DesignSpace::isValid(config));
}

TEST(DesignSpace, SmallRegisterFileStaysLegal)
{
    // The paper's worst-percentile analysis (Fig. 2i) relies on RF=40
    // configurations being part of the space.
    MicroarchConfig config;
    config.set(Param::RfSize, 40);
    config.set(Param::RobSize, 160);
    config.set(Param::IqSize, 80);
    config.set(Param::LsqSize, 80);
    EXPECT_TRUE(DesignSpace::isValid(config));
}

TEST(DesignSpace, SampledConfigsAreValidAndDistinct)
{
    const auto configs = DesignSpace::sampleValidConfigs(500, 99);
    EXPECT_EQ(configs.size(), 500u);
    std::unordered_set<std::string> keys;
    for (const auto &config : configs) {
        EXPECT_TRUE(DesignSpace::isValid(config));
        EXPECT_TRUE(keys.insert(config.key()).second)
            << "duplicate " << config.key();
    }
}

TEST(DesignSpace, SamplingIsDeterministic)
{
    const auto a = DesignSpace::sampleValidConfigs(50, 7);
    const auto b = DesignSpace::sampleValidConfigs(50, 7);
    EXPECT_EQ(a, b);
    const auto c = DesignSpace::sampleValidConfigs(50, 8);
    EXPECT_NE(a, c);
}

TEST(DesignSpace, MonteCarloAgreesWithExactCount)
{
    // Estimate the valid fraction by raw sampling and compare with the
    // exact counting.
    Rng rng(4242);
    const int n = 20000;
    int valid = 0;
    for (int i = 0; i < n; ++i) {
        std::array<int, kNumParams> values;
        for (std::size_t j = 0; j < kNumParams; ++j) {
            const ParamSpec &spec = paramSpecs()[j];
            values[j] = spec.values[rng.nextBounded(spec.count())];
        }
        valid += DesignSpace::isValid(MicroarchConfig(values));
    }
    const double exact =
        static_cast<double>(DesignSpace::totalValidPoints()) /
        static_cast<double>(DesignSpace::totalRawPoints());
    EXPECT_NEAR(static_cast<double>(valid) / n, exact, 0.02);
}

TEST(DesignSpace, SampleCoversParameterRanges)
{
    // Uniform sampling should hit every value of every parameter in a
    // large enough sample.
    const auto configs = DesignSpace::sampleValidConfigs(2000, 11);
    for (const auto &spec : paramSpecs()) {
        std::unordered_set<int> seen;
        for (const auto &config : configs)
            seen.insert(config.get(spec.id));
        EXPECT_EQ(seen.size(), spec.count()) << spec.name;
    }
}

TEST(MicroarchConfig, KeyRoundTripsValues)
{
    MicroarchConfig config;
    config.set(Param::Width, 8);
    config.set(Param::L2Size, 256);
    EXPECT_EQ(config.key(), "8/96/32/48/96/8/4/16/4/16/32/32/256");
}

TEST(MicroarchConfig, EqualityAndHash)
{
    MicroarchConfig a, b;
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    b.set(Param::Width, 2);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(MicroarchConfigDeathTest, SetRejectsIllegalValue)
{
    MicroarchConfig config;
    EXPECT_DEATH(config.set(Param::Width, 3), "illegal value");
}

TEST(MicroarchConfig, FeatureVectorUsesLog2ForPow2Params)
{
    const MicroarchConfig config; // baseline
    const auto f = config.asFeatureVector();
    // bpred 16 -> 4, btb 4 -> 2, il1/dl1 32 -> 5, l2 2048 -> 11.
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::BpredSize)], 4.0);
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::BtbSize)], 2.0);
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::Il1Size)], 5.0);
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::L2Size)], 11.0);
    // Linearly-spaced parameters stay raw.
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::RobSize)], 96.0);
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(Param::Width)], 4.0);
}

TEST(MicroarchConfig, UnitAccessorsScale)
{
    const MicroarchConfig config;
    EXPECT_EQ(config.bpredEntries(), 16 * 1024);
    EXPECT_EQ(config.btbEntries(), 4 * 1024);
    EXPECT_EQ(config.il1Bytes(), 32 * 1024);
    EXPECT_EQ(config.l2Bytes(), 2048 * 1024);
}

} // namespace
} // namespace acdse
