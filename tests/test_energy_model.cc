/**
 * @file
 * Unit tests for Wattch-style energy accounting.
 */

#include <gtest/gtest.h>

#include "arch/design_space.hh"
#include "sim/energy.hh"

namespace acdse
{
namespace
{

TEST(EnergyModel, EventAccountingIsLinear)
{
    EnergyModel energy(DesignSpace::baseline());
    EXPECT_DOUBLE_EQ(energy.dynamicEnergyNj(), 0.0);
    energy.add(EnergyEvent::RfRead, 10);
    const double ten = energy.dynamicEnergyNj();
    energy.add(EnergyEvent::RfRead, 10);
    EXPECT_NEAR(energy.dynamicEnergyNj(), 2.0 * ten, 1e-12);
    EXPECT_EQ(energy.count(EnergyEvent::RfRead), 20u);
}

TEST(EnergyModel, TotalIsDynamicPlusStatic)
{
    EnergyModel energy(DesignSpace::baseline());
    energy.add(EnergyEvent::FuIntAlu, 100);
    const double total = energy.totalEnergyNj(1000);
    EXPECT_NEAR(total,
                energy.dynamicEnergyNj() + energy.staticEnergyNj(1000),
                1e-12);
    EXPECT_GT(energy.staticEnergyNj(1000), 0.0);
}

TEST(EnergyModel, ResetClearsCounts)
{
    EnergyModel energy(DesignSpace::baseline());
    energy.add(EnergyEvent::L2Access, 5);
    energy.resetCounts();
    EXPECT_DOUBLE_EQ(energy.dynamicEnergyNj(), 0.0);
    EXPECT_EQ(energy.count(EnergyEvent::L2Access), 0u);
}

TEST(EnergyModel, BiggerL2LeaksMore)
{
    MicroarchConfig small = DesignSpace::baseline();
    small.set(Param::L2Size, 256);
    MicroarchConfig large = DesignSpace::baseline();
    large.set(Param::L2Size, 4096);
    EXPECT_LT(EnergyModel(small).leakagePerCycleNj(),
              EnergyModel(large).leakagePerCycleNj());
}

TEST(EnergyModel, WiderMachineBurnsMorePerCycle)
{
    MicroarchConfig narrow = DesignSpace::baseline();
    narrow.set(Param::Width, 2);
    MicroarchConfig wide = DesignSpace::baseline();
    wide.set(Param::Width, 8);
    EXPECT_LT(EnergyModel(narrow).clockPerCycleNj(),
              EnergyModel(wide).clockPerCycleNj());
}

TEST(EnergyModel, MorePortsCostMorePerAccess)
{
    MicroarchConfig few = DesignSpace::baseline();
    few.set(Param::RfReadPorts, 2);
    few.set(Param::RfWritePorts, 1);
    MicroarchConfig many = DesignSpace::baseline();
    many.set(Param::RfReadPorts, 16);
    many.set(Param::RfWritePorts, 8);
    EXPECT_LT(EnergyModel(few).costNj(EnergyEvent::RfRead),
              EnergyModel(many).costNj(EnergyEvent::RfRead));
}

TEST(EnergyModel, FpDivIsTheMostExpensiveFu)
{
    const EnergyModel energy(DesignSpace::baseline());
    EXPECT_GT(energy.costNj(EnergyEvent::FuFpDiv),
              energy.costNj(EnergyEvent::FuFpMul));
    EXPECT_GT(energy.costNj(EnergyEvent::FuFpMul),
              energy.costNj(EnergyEvent::FuIntAlu));
}

TEST(EnergyModel, MemAccessDwarfsL1Access)
{
    const EnergyModel energy(DesignSpace::baseline());
    EXPECT_GT(energy.costNj(EnergyEvent::MemAccess),
              10.0 * energy.costNj(EnergyEvent::Dl1Access));
}

TEST(EnergyModel, BreakdownSharesSumToOne)
{
    EnergyModel energy(DesignSpace::baseline());
    energy.add(EnergyEvent::RfRead, 1000);
    energy.add(EnergyEvent::Dl1Access, 500);
    const auto entries = energy.breakdown(10000);
    double total_share = 0.0;
    double total_energy = 0.0;
    for (const auto &e : entries) {
        total_share += e.share;
        total_energy += e.energyNj;
    }
    EXPECT_NEAR(total_share, 1.0, 1e-9);
    EXPECT_NEAR(total_energy, energy.totalEnergyNj(10000), 1e-9);
    // Sorted largest-first.
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_GE(entries[i - 1].energyNj, entries[i].energyNj);
}

TEST(EnergyModel, BreakdownContainsStaticCategories)
{
    EnergyModel energy(DesignSpace::baseline());
    const auto entries = energy.breakdown(100);
    bool leak = false, clock = false;
    for (const auto &e : entries) {
        leak |= std::string(e.name) == "leakage";
        clock |= std::string(e.name) == "clock+idle";
    }
    EXPECT_TRUE(leak);
    EXPECT_TRUE(clock);
}

/** Every event has a positive cost and a printable name. */
class AllEnergyEvents : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AllEnergyEvents, PositiveCostAndName)
{
    const EnergyModel energy(DesignSpace::baseline());
    const auto event = static_cast<EnergyEvent>(GetParam());
    EXPECT_GT(energy.costNj(event), 0.0);
    EXPECT_NE(energyEventName(event), nullptr);
    EXPECT_GT(std::string(energyEventName(event)).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Events, AllEnergyEvents,
                         ::testing::Range<std::size_t>(
                             0, kNumEnergyEvents));

} // namespace
} // namespace acdse
