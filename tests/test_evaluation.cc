/**
 * @file
 * Unit tests for the evaluation harness (cross validation machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "core/evaluation.hh"

namespace acdse
{
namespace
{

Campaign &
sharedCampaign()
{
    static Campaign campaign = [] {
        CampaignOptions options;
        options.numConfigs = 48;
        options.traceLength = 2500;
        options.warmupInstructions = 500;
        options.quiet = true;
        options.cacheDir = (std::filesystem::temp_directory_path() /
                            "acdse_eval_tests")
                               .string();
        std::filesystem::create_directories(options.cacheDir);
        Campaign c({"crc32", "sha", "adpcm", "stringsearch", "bitcount",
                    "blowfish"},
                   options);
        c.ensureComputed();
        return c;
    }();
    return campaign;
}

TEST(SampleIndices, DistinctAndInRange)
{
    const auto idx = sampleIndices(100, 30, 5);
    EXPECT_EQ(idx.size(), 30u);
    std::set<std::size_t> seen(idx.begin(), idx.end());
    EXPECT_EQ(seen.size(), 30u);
    for (std::size_t i : idx)
        EXPECT_LT(i, 100u);
}

TEST(SampleIndices, Deterministic)
{
    EXPECT_EQ(sampleIndices(50, 10, 7), sampleIndices(50, 10, 7));
    EXPECT_NE(sampleIndices(50, 10, 7), sampleIndices(50, 10, 8));
}

TEST(SampleIndices, FullDraw)
{
    const auto idx = sampleIndices(5, 5, 1);
    std::set<std::size_t> seen(idx.begin(), idx.end());
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Evaluator, LeaveOneOutExcludesTestProgram)
{
    Evaluator ev(sharedCampaign());
    const auto training = ev.leaveOneOut(2);
    EXPECT_EQ(training.size(), 5u);
    for (std::size_t p : training)
        EXPECT_NE(p, 2u);
}

TEST(Evaluator, LeaveOneOutWithPool)
{
    Evaluator ev(sharedCampaign());
    const auto training = ev.leaveOneOut(1, 4);
    EXPECT_EQ(training.size(), 3u);
    for (std::size_t p : training)
        EXPECT_LT(p, 4u);
}

TEST(Evaluator, ProgramSpecificProducesFiniteQuality)
{
    Evaluator ev(sharedCampaign());
    const PredictionQuality q =
        ev.evaluateProgramSpecific(0, Metric::Cycles, 24, 99);
    EXPECT_TRUE(std::isfinite(q.rmaePercent));
    EXPECT_GE(q.correlation, -1.0);
    EXPECT_LE(q.correlation, 1.0);
    EXPECT_GT(q.rmaePercent, 0.0);
}

TEST(Evaluator, ArchCentricRunsLeaveOneOut)
{
    Evaluator ev(sharedCampaign());
    const PredictionQuality q = ev.evaluateArchCentric(
        0, Metric::Energy, ev.leaveOneOut(0), 24, 12, 99);
    EXPECT_TRUE(std::isfinite(q.rmaePercent));
    EXPECT_GT(q.correlation, 0.0); // energy spaces correlate strongly
    EXPECT_GT(q.trainingErrorPercent, 0.0);
}

TEST(Evaluator, ModelCacheReturnsSameInstance)
{
    Evaluator ev(sharedCampaign());
    const auto a = ev.programModel(1, Metric::Cycles, 16, 7);
    const auto b = ev.programModel(1, Metric::Cycles, 16, 7);
    EXPECT_EQ(a.get(), b.get());
    const auto c = ev.programModel(1, Metric::Cycles, 16, 8);
    EXPECT_NE(a.get(), c.get());
    const auto d = ev.programModel(1, Metric::Energy, 16, 7);
    EXPECT_NE(a.get(), d.get());
}

TEST(Evaluator, OfflinePredictorReady)
{
    Evaluator ev(sharedCampaign());
    auto predictor =
        ev.makeOfflinePredictor(ev.leaveOneOut(3), Metric::Ed, 16, 5);
    EXPECT_TRUE(predictor.offlineTrained());
    EXPECT_FALSE(predictor.ready()); // responses not yet fitted
    EXPECT_EQ(predictor.trainingPrograms().size(), 5u);
}

TEST(EvaluatorDeathTest, TestProgramInTrainingSet)
{
    Evaluator ev(sharedCampaign());
    EXPECT_DEATH(
        ev.evaluateArchCentric(0, Metric::Cycles, {0, 1}, 8, 4, 1),
        "must not be in the training set");
}

TEST(ScorePredictions, PerfectPredictorScoresPerfectly)
{
    Campaign &campaign = sharedCampaign();
    std::vector<std::size_t> idx;
    for (std::size_t c = 0; c < campaign.configs().size(); ++c)
        idx.push_back(c);
    const PredictionQuality q = scorePredictions(
        campaign, 0, Metric::Cycles, idx,
        [&](const MicroarchConfig &config) {
            // Look the answer up -- a perfect oracle.
            for (std::size_t c = 0; c < campaign.configs().size(); ++c) {
                if (campaign.configs()[c] == config)
                    return campaign.result(0, c).cycles;
            }
            return 0.0;
        });
    EXPECT_NEAR(q.rmaePercent, 0.0, 1e-9);
    EXPECT_NEAR(q.correlation, 1.0, 1e-9);
}

} // namespace
} // namespace acdse
