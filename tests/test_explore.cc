/**
 * @file
 * Tests for the streaming exploration engine (src/explore).
 *
 * The exactness suites audit the machinery on reduced grids where the
 * ground truth is computable: tiled enumeration must visit exactly the
 * validity-count points of the sub-space, each valid, none twice, with
 * feature rows bit-identical to MicroarchConfig::asFeatureVector; the
 * streamed Pareto frontier and top-k must equal a brute-force
 * reduction of the same points (exact EXPECT_EQ on doubles -- the
 * batch kernels are bit-identical to the scalar predict, so there is
 * no tolerance to hide behind). The ExploreDeterminism suite pins the
 * thread-count contract and runs under TSan in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <tuple>
#include <vector>

#include "arch/design_space.hh"
#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "explore/explorer.hh"
#include "explore/refine.hh"
#include "explore/reducers.hh"
#include "explore/subspace.hh"

namespace acdse
{
namespace
{

using explore::ExploreOptions;
using explore::ExploreResult;
using explore::MetricEnsemble;
using explore::Mode;
using explore::ParetoFront;
using explore::PointValues;
using explore::SubSpace;
using explore::TileGenerator;
using explore::TopK;

/** A small reduced grid whose brute-force enumeration stays tiny. */
SubSpace
smallGrid()
{
    SubSpace space = SubSpace::full();
    space.setValues(Param::Width, {2, 8});
    space.setValues(Param::RobSize, {32, 96, 160});
    space.setValues(Param::IqSize, {8, 80});
    space.setValues(Param::LsqSize, {8, 80});
    space.setValues(Param::RfSize, {40, 160});
    space.setValues(Param::RfReadPorts, {2, 16});
    space.setValues(Param::RfWritePorts, {1, 8});
    space.fix(Param::BpredSize, 16);
    space.fix(Param::BtbSize, 4);
    space.fix(Param::MaxBranches, 16);
    space.setValues(Param::Il1Size, {8, 128});
    space.fix(Param::Dl1Size, 32);
    space.setValues(Param::L2Size, {256, 4096});
    return space;
}

/** Brute-force enumeration of a sub-space's valid configurations. */
std::vector<MicroarchConfig>
bruteForce(const SubSpace &space)
{
    std::vector<MicroarchConfig> configs;
    std::array<std::size_t, kNumParams> idx{};
    for (;;) {
        std::array<int, kNumParams> values;
        for (std::size_t i = 0; i < kNumParams; ++i)
            values[i] = space.values(static_cast<Param>(i))[idx[i]];
        const MicroarchConfig config(values);
        if (DesignSpace::isValid(config))
            configs.push_back(config);
        std::size_t i = kNumParams;
        while (i-- > 0) {
            if (++idx[i] < space.values(static_cast<Param>(i)).size())
                break;
            idx[i] = 0;
            if (i == 0)
                return configs;
        }
    }
}

/** One small fitted ensemble on an analytic objective (built once). */
ArchitectureCentricPredictor
makePredictor(double wide, double mem, std::uint64_t seed)
{
    const auto train = DesignSpace::sampleValidConfigs(64, seed);
    const auto responses = DesignSpace::sampleValidConfigs(24, seed + 1);
    // The base keeps values positive even at wide=-0.6 (log-target
    // training rejects non-positive metrics).
    auto objective = [&](const MicroarchConfig &config, double skew) {
        return 8000.0 + skew * wide * 4000.0 / config.width() +
               mem * 50000.0 /
                   static_cast<double>(config.robSize()) +
               0.01 * static_cast<double>(config.l2Bytes() / 1024);
    };
    std::vector<ProgramTrainingSet> sets(2);
    for (std::size_t j = 0; j < sets.size(); ++j) {
        const double skew = 0.8 + 0.4 * static_cast<double>(j);
        char name[32];
        std::snprintf(name, sizeof(name), "p%zu", j);
        sets[j].name = name;
        sets[j].configs = train;
        for (const auto &config : train)
            sets[j].values.push_back(objective(config, skew));
    }
    ArchCentricOptions options;
    options.programModel.mlp.epochs = 120;
    ArchitectureCentricPredictor predictor(options);
    predictor.trainOffline(sets);
    std::vector<double> values;
    for (const auto &config : responses)
        values.push_back(objective(config, 1.0));
    predictor.fitResponses(responses, values);
    return predictor;
}

const ArchitectureCentricPredictor &
cyclesModel()
{
    static const ArchitectureCentricPredictor model =
        makePredictor(1.4, 0.9, 11);
    return model;
}

const ArchitectureCentricPredictor &
energyModel()
{
    // Conflicting with cyclesModel: wide machines get *worse*.
    static const ArchitectureCentricPredictor model =
        makePredictor(-0.6, 0.4, 23);
    return model;
}

std::vector<MetricEnsemble>
twoEnsembles()
{
    return {{Metric::Cycles, &cyclesModel()},
            {Metric::Energy, &energyModel()}};
}

TEST(SubSpace, FullMatchesDesignSpace)
{
    const SubSpace space = SubSpace::full();
    EXPECT_EQ(space.rawPoints(), DesignSpace::totalRawPoints());
    EXPECT_EQ(space.validPoints(), DesignSpace::totalValidPoints());
    EXPECT_EQ(SubSpace::strided(1).validPoints(),
              DesignSpace::totalValidPoints());
}

TEST(SubSpace, ValidCountMatchesBruteForce)
{
    for (std::size_t stride : {3u, 4u, 6u}) {
        SubSpace space = SubSpace::strided(stride);
        const auto configs = bruteForce(space);
        EXPECT_EQ(space.validPoints(), configs.size()) << "stride "
                                                       << stride;
    }
    const SubSpace grid = smallGrid();
    EXPECT_EQ(grid.validPoints(), bruteForce(grid).size());
}

TEST(SubSpace, FixPinsOneParameter)
{
    SubSpace space = SubSpace::full();
    space.fix(Param::Width, 4);
    ASSERT_EQ(space.values(Param::Width).size(), 1u);
    EXPECT_EQ(space.values(Param::Width)[0], 4);
    EXPECT_EQ(space.rawPoints(), DesignSpace::totalRawPoints() / 4);
}

TEST(Explore, EnumerationVisitsExactlyTheValidPoints)
{
    const SubSpace grid = smallGrid();
    const TileGenerator generator(grid, Mode::Enumerate, 97, 0, 0);
    EXPECT_EQ(generator.rawPoints(), grid.rawPoints());

    std::set<PointValues> seen;
    std::uint64_t generated = 0, valid = 0;
    std::vector<PointValues> values;
    std::vector<double> features;
    for (std::size_t tile = 0; tile < generator.tiles(); ++tile) {
        const auto stats = generator.generate(tile, values, features);
        generated += stats.generated;
        valid += stats.valid;
        ASSERT_EQ(values.size(), stats.valid);
        ASSERT_EQ(features.size(), values.size() * kNumParams);
        for (std::size_t i = 0; i < values.size(); ++i) {
            const MicroarchConfig config(values[i]);
            EXPECT_TRUE(DesignSpace::isValid(config));
            // No duplicates across the whole tiled stream.
            EXPECT_TRUE(seen.insert(values[i]).second);
            // Feature rows bit-identical to the canonical packing.
            const auto expected = config.asFeatureVector();
            for (std::size_t f = 0; f < kNumParams; ++f)
                EXPECT_EQ(features[i * kNumParams + f], expected[f]);
        }
    }
    EXPECT_EQ(generated, grid.rawPoints());
    EXPECT_EQ(valid, grid.validPoints());
    EXPECT_EQ(seen.size(), grid.validPoints());
}

TEST(Explore, SampleTilesAreScheduleIndependent)
{
    const TileGenerator generator(SubSpace::full(), Mode::Sample, 64,
                                  200, 42);
    ASSERT_EQ(generator.tiles(), 4u); // 64+64+64+8
    std::vector<PointValues> values_a, values_b;
    std::vector<double> features_a, features_b;
    // Generating a tile twice (any order, any thread) is identical.
    const auto stats_a = generator.generate(2, values_a, features_a);
    generator.generate(3, values_b, features_b);
    EXPECT_EQ(values_b.size(), 8u);
    const auto stats_b = generator.generate(2, values_b, features_b);
    EXPECT_EQ(stats_a.generated, stats_b.generated);
    EXPECT_EQ(values_a, values_b);
    EXPECT_EQ(features_a, features_b);
    for (const auto &point : values_a)
        EXPECT_TRUE(DesignSpace::isValid(MicroarchConfig(point)));
}

TEST(Explore, MatchesBruteForceOnReducedGrid)
{
    // The engine's frontier and top-k over an enumerated grid must
    // equal a brute-force reduction of scalar predictions: the batch
    // kernels are bit-identical to predict(), so exact EXPECT_EQ.
    const SubSpace grid = smallGrid();
    const auto ensembles = twoEnsembles();
    ExploreOptions options;
    options.mode = Mode::Enumerate;
    options.space = grid;
    options.tileSize = 53; // deliberately not a lane multiple
    options.topK = 7;
    const ExploreResult result = explore::explore(ensembles, options);

    const auto configs = bruteForce(grid);
    ASSERT_EQ(result.stats.predicted, configs.size());
    EXPECT_EQ(result.stats.generated, grid.rawPoints());
    EXPECT_EQ(result.stats.filtered,
              grid.rawPoints() - configs.size());

    struct Scored
    {
        MicroarchConfig config;
        double cycles;
        double energy;
    };
    std::vector<Scored> scored;
    for (const auto &config : configs) {
        scored.push_back({config, cyclesModel().predict(config),
                          energyModel().predict(config)});
    }

    // Brute-force Pareto: p survives iff nothing dominates it; exact
    // (x, y) ties keep the lexicographically smallest raw values.
    std::vector<Scored> frontier;
    for (const auto &p : scored) {
        bool keep = true;
        for (const auto &q : scored) {
            const bool dominates =
                q.cycles <= p.cycles && q.energy <= p.energy &&
                (q.cycles < p.cycles || q.energy < p.energy);
            const bool better_tie = q.cycles == p.cycles &&
                                    q.energy == p.energy &&
                                    q.config.raw() < p.config.raw();
            if (dominates || better_tie) {
                keep = false;
                break;
            }
        }
        if (keep)
            frontier.push_back(p);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const Scored &a, const Scored &b) {
                  return a.cycles < b.cycles;
              });
    ASSERT_EQ(result.frontier.size(), frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        EXPECT_EQ(result.frontier[i].config, frontier[i].config);
        EXPECT_EQ(result.frontier[i].x, frontier[i].cycles);
        EXPECT_EQ(result.frontier[i].y, frontier[i].energy);
    }

    // Brute-force top-k per metric, same total order as the reducer.
    for (std::size_t k = 0; k < result.metrics.size(); ++k) {
        std::vector<Scored> best = scored;
        const bool is_cycles = result.metrics[k] == Metric::Cycles;
        std::sort(best.begin(), best.end(),
                  [&](const Scored &a, const Scored &b) {
                      const double va = is_cycles ? a.cycles : a.energy;
                      const double vb = is_cycles ? b.cycles : b.energy;
                      if (va != vb)
                          return va < vb;
                      return a.config.raw() < b.config.raw();
                  });
        ASSERT_EQ(result.topk[k].size(), options.topK);
        for (std::size_t i = 0; i < options.topK; ++i) {
            EXPECT_EQ(result.topk[k][i].config, best[i].config);
            EXPECT_EQ(result.topk[k][i].predicted,
                      is_cycles ? best[i].cycles : best[i].energy);
        }
    }
    EXPECT_EQ(&result.topkFor(Metric::Energy), &result.topk[1]);
}

TEST(Explore, RefineImprovesOrKeepsTopkSeeds)
{
    const auto ensembles = twoEnsembles();
    ExploreOptions options;
    options.samples = 4096;
    options.topK = 4;
    const ExploreResult result = explore::explore(ensembles, options);
    const auto &seeds = result.topkFor(Metric::Cycles);
    ASSERT_FALSE(seeds.empty());

    const auto refined = explore::refine(
        explore::predictorScorer(cyclesModel()), seeds);
    ASSERT_FALSE(refined.empty());
    // Climbing can only improve on the best seed, and the seed scores
    // the engine reported are exactly what the scorer recomputes.
    EXPECT_LE(refined.front().predicted, seeds.front().predicted);
    EXPECT_EQ(seeds.front().predicted,
              cyclesModel().predict(seeds.front().config));
    for (std::size_t i = 1; i < refined.size(); ++i) {
        EXPECT_LE(refined[i - 1].predicted, refined[i].predicted);
        EXPECT_NE(refined[i - 1].config, refined[i].config);
    }
}

TEST(ExploreReducers, ParetoFrontIsOrderIndependent)
{
    const PointValues a{1}, b{2}, c{3}, d{4};
    const std::vector<std::tuple<PointValues, double, double>> points{
        {a, 1.0, 9.0}, {b, 2.0, 5.0}, {c, 3.0, 7.0}, // c dominated
        {d, 4.0, 1.0},
    };
    std::vector<std::size_t> order{0, 1, 2, 3};
    std::vector<std::vector<explore::FrontierEntry>> results;
    do {
        ParetoFront front;
        for (std::size_t i : order) {
            const auto &[v, x, y] = points[i];
            front.add(v, x, y);
        }
        results.push_back(front.entries());
    } while (std::next_permutation(order.begin(), order.end()));
    for (const auto &entries : results) {
        ASSERT_EQ(entries.size(), 3u);
        EXPECT_EQ(entries[0].values, a);
        EXPECT_EQ(entries[1].values, b);
        EXPECT_EQ(entries[2].values, d);
    }
}

TEST(ExploreReducers, ParetoFrontTiesKeepSmallestValues)
{
    PointValues hi{}, lo{};
    hi[0] = 9;
    lo[0] = 1;
    ParetoFront front;
    front.add(hi, 2.0, 2.0);
    front.add(lo, 2.0, 2.0); // exact tie: lexicographically smaller wins
    auto entries = front.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].values, lo);

    ParetoFront reversed;
    reversed.add(lo, 2.0, 2.0);
    reversed.add(hi, 2.0, 2.0);
    entries = reversed.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].values, lo);

    // Same x, strictly better y replaces; worse y is rejected.
    ParetoFront same_x;
    same_x.add(hi, 2.0, 2.0);
    same_x.add(lo, 2.0, 1.0);
    same_x.add(hi, 2.0, 3.0);
    entries = same_x.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].values, lo);
    EXPECT_EQ(entries[0].y, 1.0);
}

TEST(ExploreReducers, MergeEqualsUnionOfStreams)
{
    Rng rng(7);
    std::vector<std::tuple<PointValues, double, double>> points;
    for (int i = 0; i < 200; ++i) {
        PointValues v{};
        v[0] = i;
        points.emplace_back(
            v, static_cast<double>(rng.nextBounded(50)),
            static_cast<double>(rng.nextBounded(50)));
    }
    ParetoFront whole, left, right;
    TopK topk_whole(9), topk_left(9), topk_right(9);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &[v, x, y] = points[i];
        whole.add(v, x, y);
        topk_whole.add(v, x);
        (i % 2 ? left : right).add(v, x, y);
        (i % 2 ? topk_left : topk_right).add(v, x);
    }
    left.merge(right);
    topk_left.merge(topk_right);
    const auto a = whole.entries(), b = left.entries();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].values, b[i].values);
        EXPECT_EQ(a[i].x, b[i].x);
        EXPECT_EQ(a[i].y, b[i].y);
    }
    const auto ta = topk_whole.sorted(), tb = topk_left.sorted();
    ASSERT_EQ(ta.size(), 9u);
    ASSERT_EQ(tb.size(), 9u);
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].values, tb[i].values);
        EXPECT_EQ(ta[i].value, tb[i].value);
    }
}

TEST(ExploreReducers, TopKBoundsAndEdgeCases)
{
    TopK empty(0);
    empty.add(PointValues{}, 1.0);
    EXPECT_TRUE(empty.sorted().empty());

    TopK top(3);
    for (int i = 10; i > 0; --i) {
        PointValues v{};
        v[0] = i;
        top.add(v, static_cast<double>(i));
    }
    const auto sorted = top.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].value, 1.0);
    EXPECT_EQ(sorted[2].value, 3.0);
    EXPECT_EQ(top.k(), 3u);
}

/**
 * The thread-count contract (runs under TSan in CI): explore() is
 * bit-identical at 1, 2 and N threads, for both generator modes.
 */
class ExploreDeterminism : public ::testing::Test
{
  protected:
    static ExploreResult runWith(std::size_t threads,
                                 ExploreOptions options,
                                 const std::vector<MetricEnsemble> &e)
    {
        ThreadPool pool(threads);
        options.pool = &pool;
        return explore::explore(e, options);
    }

    static void expectIdentical(const ExploreResult &a,
                                const ExploreResult &b)
    {
        ASSERT_EQ(a.frontier.size(), b.frontier.size());
        for (std::size_t i = 0; i < a.frontier.size(); ++i) {
            EXPECT_EQ(a.frontier[i].config, b.frontier[i].config);
            EXPECT_EQ(a.frontier[i].x, b.frontier[i].x);
            EXPECT_EQ(a.frontier[i].y, b.frontier[i].y);
        }
        ASSERT_EQ(a.topk.size(), b.topk.size());
        for (std::size_t k = 0; k < a.topk.size(); ++k) {
            ASSERT_EQ(a.topk[k].size(), b.topk[k].size());
            for (std::size_t i = 0; i < a.topk[k].size(); ++i) {
                EXPECT_EQ(a.topk[k][i].config, b.topk[k][i].config);
                EXPECT_EQ(a.topk[k][i].predicted,
                          b.topk[k][i].predicted);
            }
        }
        EXPECT_EQ(a.stats.generated, b.stats.generated);
        EXPECT_EQ(a.stats.filtered, b.stats.filtered);
        EXPECT_EQ(a.stats.predicted, b.stats.predicted);
        EXPECT_EQ(a.stats.tiles, b.stats.tiles);
    }
};

TEST_F(ExploreDeterminism, SampleModeBitIdenticalAcrossThreadCounts)
{
    const auto ensembles = twoEnsembles();
    ExploreOptions options;
    options.samples = 6000;
    options.tileSize = 256;
    options.topK = 8;
    const auto t1 = runWith(1, options, ensembles);
    const auto t2 = runWith(2, options, ensembles);
    const auto t4 = runWith(4, options, ensembles);
    expectIdentical(t1, t2);
    expectIdentical(t1, t4);
    EXPECT_EQ(t1.stats.predicted, 6000u);
    EXPECT_GE(t1.frontier.size(), 2u);
}

TEST_F(ExploreDeterminism, EnumerateModeBitIdenticalAcrossThreadCounts)
{
    const auto ensembles = twoEnsembles();
    ExploreOptions options;
    options.mode = Mode::Enumerate;
    options.space = smallGrid();
    options.tileSize = 64;
    const auto t1 = runWith(1, options, ensembles);
    const auto t3 = runWith(3, options, ensembles);
    expectIdentical(t1, t3);
}

TEST_F(ExploreDeterminism, SeedChangesSampleStream)
{
    const auto ensembles = twoEnsembles();
    ExploreOptions options;
    options.samples = 2000;
    const auto a = explore::explore(ensembles, options);
    const auto b = explore::explore(ensembles, options);
    expectIdentical(a, b); // same seed: reproducible
    options.seed ^= 0xabcdef;
    const auto c = explore::explore(ensembles, options);
    ASSERT_FALSE(c.topk.empty());
    ASSERT_FALSE(c.topk[0].empty());
    // A different seed draws a different stream (the top scores of
    // 2000 fresh uniform draws almost surely differ bit-wise).
    EXPECT_NE(a.topk[0].back().predicted, c.topk[0].back().predicted);
}

TEST_F(ExploreDeterminism, RefineIsDeterministic)
{
    const auto scorer = explore::predictorScorer(cyclesModel());
    std::vector<explore::ScoredConfig> seeds;
    for (const auto &config : DesignSpace::sampleValidConfigs(6, 3))
        seeds.push_back({config, 0.0});
    const auto a = explore::refine(scorer, seeds);
    const auto b = explore::refine(scorer, seeds);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].config, b[i].config);
        EXPECT_EQ(a[i].predicted, b[i].predicted);
    }
}

} // namespace
} // namespace acdse
