/** @file Accuracy and edge-case tests for fastTanh (base/fast_math). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "base/fast_math.hh"
#include "base/simd.hh"

using namespace acdse;

TEST(FastMath, MatchesLibmTanhToFiveNano)
{
    // Dense scan over the table range, the exp tail and the saturated
    // region. 5e-9 absolute error is the documented contract; the
    // networks' own fit error is ~1e-2 relative, so this is invisible
    // to every model-quality metric in the repo.
    double max_err = 0.0;
    for (int i = -250000; i <= 250000; ++i) {
        const double x = static_cast<double>(i) * 1e-4; // [-25, 25]
        max_err = std::max(max_err,
                           std::fabs(fastTanh(x) - std::tanh(x)));
    }
    EXPECT_LT(max_err, 5e-9);
}

TEST(FastMath, IsOddAndBounded)
{
    for (int i = 0; i <= 5000; ++i) {
        const double x = static_cast<double>(i) * 5e-3; // [0, 25]
        EXPECT_EQ(fastTanh(-x), -fastTanh(x));
        EXPECT_LE(std::fabs(fastTanh(x)), 1.0);
    }
}

TEST(FastMath, EdgeCases)
{
    EXPECT_EQ(fastTanh(0.0), 0.0);
    EXPECT_EQ(fastTanh(100.0), 1.0);
    EXPECT_EQ(fastTanh(-100.0), -1.0);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(fastTanh(inf), 1.0);
    EXPECT_EQ(fastTanh(-inf), -1.0);
    EXPECT_TRUE(std::isnan(
        fastTanh(std::numeric_limits<double>::quiet_NaN())));
}

#ifdef ACDSE_SIMD_VECTOR
TEST(FastMath, ChunkMatchesScalarBitExactly)
{
    // The packed fastTanhChunk must return, in each lane, the exact
    // bits of scalar fastTanh on that lane -- including the off-table
    // fallback (|x| >= 4), saturation, infinities and NaN, and chunks
    // mixing on- and off-table lanes (which take the fallback whole).
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> pts;
    for (int i = -600; i <= 600; ++i)
        pts.push_back(static_cast<double>(i) * 0.01); // [-6, 6]
    pts.insert(pts.end(),
               {0.0, -0.0, 3.999999, 4.0, -4.0, 25.0, -25.0, inf, -inf,
                nan, 1e-300, -1e-300});
    constexpr std::size_t n = simd::kChunkLanes;
    for (std::size_t s = 0; s + n <= pts.size(); ++s) {
        alignas(16) double in[n];
        alignas(16) double out[n];
        for (std::size_t l = 0; l < n; ++l)
            in[l] = pts[s + l];
        simd::chunkStore(out, fastTanhChunk(simd::chunkLoad(in)));
        for (std::size_t l = 0; l < n; ++l) {
            const double want = fastTanh(in[l]);
            if (std::isnan(want))
                EXPECT_TRUE(std::isnan(out[l])) << "lane " << in[l];
            else
                EXPECT_EQ(out[l], want) << "lane " << in[l];
        }
    }
}
#endif // ACDSE_SIMD_VECTOR

TEST(FastMath, ContinuousAcrossTableBoundaries)
{
    // The interpolant matches values and derivatives at every node, so
    // crossing a segment boundary (and the 4.0 hand-off to the exp
    // tail) must not jump.
    for (int k = 1; k <= 256; ++k) {
        const double node = static_cast<double>(k) * (4.0 / 256.0);
        const double below = std::nextafter(node, 0.0);
        EXPECT_NEAR(fastTanh(below), fastTanh(node), 1e-8);
    }
}
