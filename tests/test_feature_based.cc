/**
 * @file
 * Unit tests for the feature-based (zero-response) trans-program
 * predictor and the program feature vectors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "core/feature_based_predictor.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

std::vector<double>
features(const std::string &name)
{
    return programFeatureVector(
        TraceGenerator(profileByName(name)).generate(8000));
}

TEST(ProgramFeatures, DeterministicAndFinite)
{
    const auto a = features("gzip");
    const auto b = features("gzip");
    EXPECT_EQ(a, b);
    for (double v : a)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ProgramFeatures, SimilarProgramsCloserThanDissimilar)
{
    // Two crypto kernels (blowfish, rijndael: ALU-heavy, tiny
    // footprints) must be closer to each other than to a streaming FP
    // program (swim).
    const auto blowfish = features("blowfish");
    const auto rijndael = features("rijndael");
    const auto swim = features("swim");
    EXPECT_LT(stats::euclideanDistance(blowfish, rijndael),
              stats::euclideanDistance(blowfish, swim));
}

TEST(ProgramFeatures, MixSumsToOne)
{
    const auto f = features("applu");
    double mix = 0.0;
    for (std::size_t c = 0; c < kNumInstClasses; ++c)
        mix += f[c];
    EXPECT_NEAR(mix, 1.0, 1e-9);
}

/** Synthetic spaces so tests need no simulator. */
double
syntheticSpace(const MicroarchConfig &config, double scale)
{
    return scale * (1000.0 + 50000.0 / config.width() +
                    3000.0 / std::sqrt(static_cast<double>(
                                 config.robSize())));
}

TEST(FeatureBasedPredictor, InterpolatesBetweenNeighbours)
{
    const auto configs = DesignSpace::sampleValidConfigs(128, 21);
    // Three "programs" whose features are 1-D points and whose spaces
    // scale with that point.
    std::vector<FeatureTrainingSet> sets(3);
    const double coords[3] = {0.0, 1.0, 10.0};
    for (int j = 0; j < 3; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = configs;
        sets[j].features = {coords[j]};
        for (const auto &c : configs)
            sets[j].values.push_back(
                syntheticSpace(c, 1.0 + coords[j]));
    }
    FeatureBasedPredictor model;
    model.trainOffline(sets);

    // Target near program 1: weights should concentrate there.
    model.setTargetFeatures({1.05});
    EXPECT_GT(model.weights()[1], model.weights()[0]);
    EXPECT_GT(model.weights()[1], model.weights()[2]);

    // Prediction tracks program 1's space.
    const MicroarchConfig probe = DesignSpace::baseline();
    EXPECT_NEAR(model.predict(probe), syntheticSpace(probe, 2.0),
                0.25 * syntheticSpace(probe, 2.0));
}

TEST(FeatureBasedPredictor, WeightsSumToOne)
{
    const auto configs = DesignSpace::sampleValidConfigs(64, 22);
    std::vector<FeatureTrainingSet> sets(4);
    for (int j = 0; j < 4; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = configs;
        sets[j].features = {static_cast<double>(j), 1.0};
        for (const auto &c : configs)
            sets[j].values.push_back(syntheticSpace(c, 1.0 + j));
    }
    FeatureBasedPredictor model;
    model.trainOffline(sets);
    model.setTargetFeatures({1.7, 1.0});
    double total = 0.0;
    for (double w : model.weights())
        total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FeatureBasedPredictor, BandwidthControlsSharpness)
{
    const auto configs = DesignSpace::sampleValidConfigs(64, 23);
    std::vector<FeatureTrainingSet> sets(2);
    for (int j = 0; j < 2; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = configs;
        sets[j].features = {static_cast<double>(j)};
        for (const auto &c : configs)
            sets[j].values.push_back(syntheticSpace(c, 1.0 + j));
    }
    FeatureBasedOptions sharp, broad;
    sharp.bandwidth = 0.2;
    broad.bandwidth = 5.0;
    FeatureBasedPredictor a(sharp), b(broad);
    a.trainOffline(sets);
    b.trainOffline(sets);
    a.setTargetFeatures({0.2});
    b.setTargetFeatures({0.2});
    // The sharp kernel concentrates more mass on the nearer program.
    EXPECT_GT(a.weights()[0], b.weights()[0]);
}

TEST(FeatureBasedPredictorDeathTest, TargetBeforeTrain)
{
    FeatureBasedPredictor model;
    EXPECT_DEATH(model.setTargetFeatures({1.0}), "before trainOffline");
}

} // namespace
} // namespace acdse
